//! The rule engine: named, waivable checks of the workspace invariants.
//!
//! Every rule reports `file:line` findings. A finding can be waived with an
//! inline comment on the same line or the line above:
//!
//! ```text
//! // scope-analyze: allow(<rule>) — <reason>
//! ```
//!
//! Waivers are counted and capped (see [`MAX_WAIVERS`]); an unused waiver,
//! a reason-less waiver or a waiver naming an unknown rule is itself a
//! finding, so the waiver file never rots.

use crate::json;
use crate::lexer::{Token, TokenKind};
use crate::source::{FileClass, SourceFile, Waiver, Workspace};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// Names of every rule, in reporting order.
pub const RULE_NAMES: &[&str] = &[
    "no-unordered-iteration",
    "no-wallclock-in-logic",
    "no-raw-threads",
    "fs-confinement",
    "panic-surface",
    "oracle-discipline",
    "shim-surface",
    "bench-schema",
    "ci-floor-consistency",
    "waiver-budget",
];

/// Total inline waivers the workspace may carry.
pub const MAX_WAIVERS: usize = 10;

/// Repo-relative path of the committed panic-surface ratchet.
pub const RATCHET_FILE: &str = "panic-ratchet.txt";

/// One diagnostic.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule that produced the finding.
    pub rule: &'static str,
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line (0 when the finding is about a whole file).
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

/// Result of an analysis run.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings that survived waiver filtering, sorted by (file, line).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Waivers that suppressed at least one finding.
    pub waivers_used: usize,
    /// All waivers declared in the workspace.
    pub waivers_total: usize,
    /// Non-test panic-surface counts per crate (after waivers).
    pub panic_counts: BTreeMap<String, usize>,
}

/// Run every rule on the workspace rooted at `root`.
pub fn analyze(root: &Path) -> std::io::Result<Report> {
    let all: BTreeSet<&str> = RULE_NAMES.iter().copied().collect();
    analyze_rules(root, &all)
}

/// Run only the `active` rules (fixture tests exercise one rule at a
/// time; the CLI runs all of them).
pub fn analyze_rules(root: &Path, active: &BTreeSet<&str>) -> std::io::Result<Report> {
    let ws = Workspace::load(root)?;
    let mut waivers = WaiverSet::collect(&ws);
    let mut findings: Vec<Finding> = Vec::new();
    let mut panic_counts = BTreeMap::new();

    if active.contains("no-unordered-iteration") {
        no_unordered_iteration(&ws, &mut findings);
    }
    if active.contains("no-wallclock-in-logic") {
        no_wallclock_in_logic(&ws, &mut findings);
    }
    if active.contains("no-raw-threads") {
        no_raw_threads(&ws, &mut findings);
    }
    if active.contains("fs-confinement") {
        fs_confinement(&ws, &mut findings);
    }
    if active.contains("panic-surface") {
        panic_counts = panic_surface(&ws, &mut waivers, &mut findings);
    }
    if active.contains("oracle-discipline") {
        oracle_discipline(&ws, &mut findings);
    }
    if active.contains("shim-surface") {
        shim_surface(&ws, &mut findings);
    }
    if active.contains("bench-schema") {
        bench_schema(&ws, &mut findings);
    }
    if active.contains("ci-floor-consistency") {
        ci_floor_consistency(&ws, &mut findings);
    }

    // Waiver filtering: a finding covered by a waiver for its rule on its
    // line (or the line above) is suppressed.
    findings.retain(|f| !waivers.covers(f.rule, &f.file, f.line));

    if active.contains("waiver-budget") {
        waiver_budget(&waivers, active, &mut findings);
    }

    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(Report {
        findings,
        files_scanned: ws.files.len(),
        waivers_used: waivers.used_count(),
        waivers_total: waivers.waivers.len(),
        panic_counts,
    })
}

// ---------------------------------------------------------------------------
// Waivers
// ---------------------------------------------------------------------------

struct WaiverSet {
    waivers: Vec<Waiver>,
    used: Vec<bool>,
}

impl WaiverSet {
    fn collect(ws: &Workspace) -> WaiverSet {
        let waivers: Vec<Waiver> = ws
            .files
            .values()
            .flat_map(|f| f.waivers.iter().cloned())
            .collect();
        let used = vec![false; waivers.len()];
        WaiverSet { waivers, used }
    }

    /// True when a waiver for `rule` covers `file:line`; marks it used.
    fn covers(&mut self, rule: &str, file: &str, line: u32) -> bool {
        let mut hit = false;
        for (w, used) in self.waivers.iter().zip(self.used.iter_mut()) {
            if w.rule == rule && w.file == file && (w.line == line || w.line + 1 == line) {
                *used = true;
                hit = true;
            }
        }
        hit
    }

    fn used_count(&self) -> usize {
        self.used.iter().filter(|&&u| u).count()
    }
}

fn waiver_budget(waivers: &WaiverSet, active: &BTreeSet<&str>, findings: &mut Vec<Finding>) {
    if waivers.waivers.len() > MAX_WAIVERS {
        findings.push(Finding {
            rule: "waiver-budget",
            file: "(workspace)".to_string(),
            line: 0,
            message: format!(
                "{} inline waivers exceed the budget of {MAX_WAIVERS}",
                waivers.waivers.len()
            ),
        });
    }
    for (w, &used) in waivers.waivers.iter().zip(&waivers.used) {
        if !RULE_NAMES.contains(&w.rule.as_str()) {
            findings.push(Finding {
                rule: "waiver-budget",
                file: w.file.clone(),
                line: w.line,
                message: format!("waiver names unknown rule '{}'", w.rule),
            });
            continue;
        }
        if w.reason.is_empty() {
            findings.push(Finding {
                rule: "waiver-budget",
                file: w.file.clone(),
                line: w.line,
                message: format!("waiver for '{}' has no reason", w.rule),
            });
        }
        // Only judge staleness for rules that actually ran this pass.
        if !used && active.contains(w.rule.as_str()) {
            findings.push(Finding {
                rule: "waiver-budget",
                file: w.file.clone(),
                line: w.line,
                message: format!("waiver for '{}' suppresses nothing — remove it", w.rule),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Token-stream helpers
// ---------------------------------------------------------------------------

/// Indices of the non-comment tokens of a file, in order.
fn code_view(file: &SourceFile) -> Vec<usize> {
    file.tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_comment())
        .map(|(i, _)| i)
        .collect()
}

/// True when the code-view position `p` starts the `::`-joined ident path
/// `segments` (e.g. `["std", "thread"]`).
fn matches_path(file: &SourceFile, code: &[usize], p: usize, segments: &[&str]) -> bool {
    let mut q = p;
    for (k, seg) in segments.iter().enumerate() {
        let Some(&ti) = code.get(q) else { return false };
        if !file.tokens[ti].is_ident(seg) {
            return false;
        }
        q += 1;
        if k + 1 < segments.len() {
            let (Some(&c1), Some(&c2)) = (code.get(q), code.get(q + 1)) else {
                return false;
            };
            if !file.tokens[c1].is_punct(':') || !file.tokens[c2].is_punct(':') {
                return false;
            }
            q += 2;
        }
    }
    true
}

fn tok<'a>(file: &'a SourceFile, code: &[usize], p: usize) -> Option<&'a Token> {
    code.get(p).map(|&i| &file.tokens[i])
}

// ---------------------------------------------------------------------------
// Rule: no-unordered-iteration
// ---------------------------------------------------------------------------

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Iterating a `HashMap`/`HashSet` (or an alias of one) in non-test,
/// non-`reference` code of result-producing crates leaks hash order into
/// results. Per function, tracks parameters and `let` bindings whose
/// declared type (or constructor) names a hash collection, then flags
/// `for … in` loops and order-sensitive method calls on them inside that
/// function's body — scoping avoids cross-function name collisions (an
/// `owner: HashMap` in one function must not taint an `owner: BTreeMap`
/// in another).
fn no_unordered_iteration(ws: &Workspace, findings: &mut Vec<Finding>) {
    for file in ws.files.values() {
        if file.class == FileClass::Shim || file.class == FileClass::Test {
            continue;
        }
        // Reference modules preserve seed-shaped oracles; the differential
        // tests pin their behaviour, so hash iteration there is the
        // oracle's own business.
        if file.path.ends_with("/reference.rs") {
            continue;
        }
        let code = code_view(file);
        let hash_types = hash_type_names(file, &code);
        // Nested fns are scanned both as part of the outer body and on
        // their own pass; dedup keeps each site reported once.
        let mut seen: BTreeSet<(u32, String)> = BTreeSet::new();
        for p in 0..code.len() {
            if !file.tokens[code[p]].is_ident("fn") {
                continue;
            }
            let Some((body_start, body_end)) = fn_body_range(file, &code, p) else {
                continue;
            };
            let mut tracked = BTreeSet::new();
            param_hash_bindings(file, &code, p + 1, body_start, &hash_types, &mut tracked);
            let_hash_bindings(file, &code, body_start, body_end, &hash_types, &mut tracked);
            if tracked.is_empty() {
                continue;
            }
            scan_iteration_sites(
                file, &code, body_start, body_end, &tracked, &mut seen, findings,
            );
        }
    }
}

/// Code-view range `[start, end)` of the body of the `fn` whose keyword is
/// at position `p`, or `None` for a body-less declaration.
fn fn_body_range(file: &SourceFile, code: &[usize], p: usize) -> Option<(usize, usize)> {
    let mut depth = 0i32;
    let mut q = p + 1;
    loop {
        let t = tok(file, code, q)?;
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && t.is_punct(';') {
            return None; // trait method declaration
        } else if depth == 0 && t.is_punct('{') {
            break;
        }
        q += 1;
    }
    let body_start = q;
    let mut brace = 0i32;
    while let Some(t) = tok(file, code, q) {
        if t.is_punct('{') {
            brace += 1;
        } else if t.is_punct('}') {
            brace -= 1;
            if brace == 0 {
                return Some((body_start, q + 1));
            }
        }
        q += 1;
    }
    Some((body_start, code.len()))
}

fn scan_iteration_sites(
    file: &SourceFile,
    code: &[usize],
    start: usize,
    end: usize,
    tracked: &BTreeSet<String>,
    seen: &mut BTreeSet<(u32, String)>,
    findings: &mut Vec<Finding>,
) {
    for p in start..end {
        let ti = code[p];
        if file.is_test_code(ti) {
            continue;
        }
        let t = &file.tokens[ti];
        // `name.method(` with an order-sensitive method.
        if t.kind == TokenKind::Ident && tracked.contains(t.text.as_str()) {
            if let (Some(dot), Some(m), Some(paren)) = (
                tok(file, code, p + 1),
                tok(file, code, p + 2),
                tok(file, code, p + 3),
            ) {
                if dot.is_punct('.')
                    && m.kind == TokenKind::Ident
                    && ITER_METHODS.contains(&m.text.as_str())
                    && paren.is_punct('(')
                {
                    let message = format!(
                        "`{}.{}()` iterates a hash-ordered collection; use a \
                         BTreeMap/BTreeSet or sort before iterating",
                        t.text, m.text
                    );
                    if seen.insert((t.line, message.clone())) {
                        findings.push(Finding {
                            rule: "no-unordered-iteration",
                            file: file.path.clone(),
                            line: t.line,
                            message,
                        });
                    }
                    continue;
                }
            }
        }
        // `for pat in [&][mut] name {`
        if t.is_ident("for") {
            if let Some((name, line)) = for_loop_over(file, code, p, tracked) {
                let message = format!(
                    "`for … in {name}` iterates a hash-ordered collection; use a \
                     BTreeMap/BTreeSet or sort before iterating"
                );
                if seen.insert((line, message.clone())) {
                    findings.push(Finding {
                        rule: "no-unordered-iteration",
                        file: file.path.clone(),
                        line,
                        message,
                    });
                }
            }
        }
    }
}

/// `HashMap`/`HashSet` plus any local `type X = …Hash…;` aliases.
fn hash_type_names(file: &SourceFile, code: &[usize]) -> BTreeSet<String> {
    let mut names: BTreeSet<String> = ["HashMap", "HashSet"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    for p in 0..code.len() {
        if !file.tokens[code[p]].is_ident("type") {
            continue;
        }
        let Some(alias) = tok(file, code, p + 1) else {
            continue;
        };
        if alias.kind != TokenKind::Ident {
            continue;
        }
        // Scan the alias definition up to `;` for a known hash type.
        let mut q = p + 2;
        let mut is_hash = false;
        while let Some(t) = tok(file, code, q) {
            if t.is_punct(';') {
                break;
            }
            if t.kind == TokenKind::Ident && names.contains(t.text.as_str()) {
                is_hash = true;
            }
            q += 1;
        }
        if is_hash {
            names.insert(alias.text.clone());
        }
    }
    names
}

/// Track the parameters of a function signature (code positions
/// `[sig_start, body_start)`) whose declared type names a hash type.
fn param_hash_bindings(
    file: &SourceFile,
    code: &[usize],
    sig_start: usize,
    body_start: usize,
    hash_types: &BTreeSet<String>,
    tracked: &mut BTreeSet<String>,
) {
    let Some(open) =
        (sig_start..body_start).find(|&q| tok(file, code, q).is_some_and(|t| t.is_punct('(')))
    else {
        return;
    };
    let mut depth = 0i32;
    let mut q = open;
    let mut param: Option<String> = None;
    let mut param_is_hash = false;
    while q < body_start {
        let Some(t) = tok(file, code, q) else { break };
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
            if depth == 1 {
                q += 1;
                // First ident at depth 1 after `(` is the parameter name.
                param = tok(file, code, q)
                    .filter(|t| t.kind == TokenKind::Ident)
                    .map(|t| t.text.clone());
                continue;
            }
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.is_punct(',') && depth == 1 {
            if param_is_hash {
                if let Some(name) = param.take() {
                    tracked.insert(name);
                }
            }
            param_is_hash = false;
            param = tok(file, code, q + 1)
                .filter(|t| t.kind == TokenKind::Ident)
                .map(|t| t.text.clone());
        } else if t.kind == TokenKind::Ident && hash_types.contains(t.text.as_str()) {
            param_is_hash = true;
        }
        q += 1;
    }
    if param_is_hash {
        if let Some(name) = param {
            tracked.insert(name);
        }
    }
}

/// Track `let` bindings in the code-position range whose type annotation
/// or initializer names a hash type.
fn let_hash_bindings(
    file: &SourceFile,
    code: &[usize],
    start: usize,
    end: usize,
    hash_types: &BTreeSet<String>,
    tracked: &mut BTreeSet<String>,
) {
    for p in start..end {
        if !file.tokens[code[p]].is_ident("let") {
            continue;
        }
        let mut q = p + 1;
        if tok(file, code, q).is_some_and(|t| t.is_ident("mut")) {
            q += 1;
        }
        let Some(name) = tok(file, code, q) else {
            continue;
        };
        if name.kind != TokenKind::Ident {
            continue; // tuple/struct patterns: not tracked
        }
        // Scan `: type = init;` (or `= init;`) for a hash type name up to
        // the terminating `;` at bracket depth 0.
        let mut depth = 0i32;
        let mut r = q + 1;
        let mut is_hash = false;
        while r < end {
            let Some(t) = tok(file, code, r) else { break };
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
                if depth < 0 {
                    break;
                }
            } else if t.is_punct(';') && depth == 0 {
                break;
            } else if t.kind == TokenKind::Ident && hash_types.contains(t.text.as_str()) {
                is_hash = true;
            }
            r += 1;
        }
        if is_hash {
            tracked.insert(name.text.clone());
        }
    }
}

/// If the `for` at code position `p` loops directly over a tracked
/// binding (`for x in map {`, `for x in &map {`), return its name/line.
fn for_loop_over(
    file: &SourceFile,
    code: &[usize],
    p: usize,
    tracked: &BTreeSet<String>,
) -> Option<(String, u32)> {
    // Find `in` at bracket depth 0 before the loop body `{`.
    let mut q = p + 1;
    let mut depth = 0i32;
    loop {
        let t = tok(file, code, q)?;
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_ident("in") && depth == 0 {
            break;
        } else if t.is_punct('{') {
            return None; // malformed / `for` in another role
        }
        q += 1;
    }
    // Expression: optional `&` / `mut`, then a tracked ident directly
    // followed by the loop body.
    q += 1;
    while tok(file, code, q).is_some_and(|t| t.is_punct('&') || t.is_ident("mut")) {
        q += 1;
    }
    let name = tok(file, code, q)?;
    if name.kind != TokenKind::Ident || !tracked.contains(name.text.as_str()) {
        return None;
    }
    let next = tok(file, code, q + 1)?;
    if next.is_punct('{') {
        Some((name.text.clone(), name.line))
    } else {
        None // method chains are handled by the `.method(` scan
    }
}

// ---------------------------------------------------------------------------
// Rule: no-wallclock-in-logic
// ---------------------------------------------------------------------------

/// `std::time` makes results depend on the host clock. It is allowed only
/// in the measurement harnesses: `compress::measure` and the bench crate.
fn no_wallclock_in_logic(ws: &Workspace, findings: &mut Vec<Finding>) {
    for file in ws.files.values() {
        if file.class == FileClass::Shim
            || file.class == FileClass::Test
            || file.class == FileClass::Bench
            || file.crate_name == "scope-bench"
            || file.path.ends_with("compress/src/measure.rs")
        {
            continue;
        }
        let code = code_view(file);
        for p in 0..code.len() {
            if file.is_test_code(code[p]) {
                continue;
            }
            if matches_path(file, &code, p, &["std", "time"]) {
                findings.push(Finding {
                    rule: "no-wallclock-in-logic",
                    file: file.path.clone(),
                    line: file.tokens[code[p]].line,
                    message: "wall-clock (`std::time`) outside compress::measure and the \
                              bench harnesses makes results host-dependent"
                        .to_string(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: no-raw-threads
// ---------------------------------------------------------------------------

/// Raw `std::thread` spawns bypass the deterministic fan-out
/// (`scope-cloudsim::parallel`), whose chunk-and-merge discipline is what
/// keeps parallel results bit-identical for any thread count.
fn no_raw_threads(ws: &Workspace, findings: &mut Vec<Finding>) {
    for file in ws.files.values() {
        if file.class == FileClass::Shim
            || file.class == FileClass::Test
            || file.path.ends_with("cloudsim/src/parallel.rs")
        {
            continue;
        }
        let code = code_view(file);
        for p in 0..code.len() {
            if file.is_test_code(code[p]) {
                continue;
            }
            if matches_path(file, &code, p, &["std", "thread"]) {
                findings.push(Finding {
                    rule: "no-raw-threads",
                    file: file.path.clone(),
                    line: file.tokens[code[p]].line,
                    message: "raw `std::thread` outside scope-cloudsim::parallel — use the \
                              deterministic fan-out (`parallel_map`) instead"
                        .to_string(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: fs-confinement
// ---------------------------------------------------------------------------

/// Durability belongs to the WAL storage backend: every filesystem touch
/// in pipeline code must flow through the `Storage` trait so the fault
/// injector and crash fuzzer see it. `std::fs` paths and direct
/// `File::` / `OpenOptions::` handles are allowed only in the file
/// backend itself (`wal/src/file.rs`), the analyzer (which reads the
/// sources it lints), and the bench harnesses.
fn fs_confinement(ws: &Workspace, findings: &mut Vec<Finding>) {
    for file in ws.files.values() {
        if file.class == FileClass::Shim
            || file.class == FileClass::Test
            || file.class == FileClass::Bench
            || file.crate_name == "scope-analyze"
            || file.crate_name == "scope-bench"
            || file.path.ends_with("wal/src/file.rs")
        {
            continue;
        }
        let code = code_view(file);
        for p in 0..code.len() {
            if file.is_test_code(code[p]) {
                continue;
            }
            let what = if matches_path(file, &code, p, &["std", "fs"]) {
                Some("`std::fs`")
            } else if (file.tokens[code[p]].is_ident("File")
                || file.tokens[code[p]].is_ident("OpenOptions"))
                && tok(file, &code, p + 1).is_some_and(|t| t.is_punct(':'))
                && tok(file, &code, p + 2).is_some_and(|t| t.is_punct(':'))
            {
                Some("a direct file handle")
            } else {
                None
            };
            if let Some(what) = what {
                findings.push(Finding {
                    rule: "fs-confinement",
                    file: file.path.clone(),
                    line: file.tokens[code[p]].line,
                    message: format!(
                        "{what} outside the WAL file backend — route durability \
                         through the `Storage` trait so fault injection and crash \
                         fuzzing cover it"
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: panic-surface
// ---------------------------------------------------------------------------

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Count panic sites (`.unwrap()`, `.expect(…)`, `panic!`, `unreachable!`,
/// `todo!`, `unimplemented!`) per crate in non-test code and check the
/// counts against the committed ratchet file, which may only go down.
fn panic_surface(
    ws: &Workspace,
    waivers: &mut WaiverSet,
    findings: &mut Vec<Finding>,
) -> BTreeMap<String, usize> {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for file in ws.files.values() {
        if file.class == FileClass::Shim {
            continue;
        }
        counts.entry(file.crate_name.clone()).or_insert(0);
        if file.class == FileClass::Test {
            continue; // tests may unwrap freely; the crate still gets a row
        }
        let code = code_view(file);
        for p in 0..code.len() {
            let ti = code[p];
            if file.is_test_code(ti) {
                continue;
            }
            let t = &file.tokens[ti];
            let is_site = if t.is_ident("unwrap") || t.is_ident("expect") {
                p > 0
                    && file.tokens[code[p - 1]].is_punct('.')
                    && tok(file, &code, p + 1).is_some_and(|n| n.is_punct('('))
            } else if t.kind == TokenKind::Ident && PANIC_MACROS.contains(&t.text.as_str()) {
                tok(file, &code, p + 1).is_some_and(|n| n.is_punct('!'))
            } else {
                false
            };
            if is_site && !waivers.covers("panic-surface", &file.path, t.line) {
                *counts.entry(file.crate_name.clone()).or_insert(0) += 1;
            }
        }
    }

    let ratchet_path = ws.root.join(RATCHET_FILE);
    let Ok(text) = std::fs::read_to_string(&ratchet_path) else {
        findings.push(Finding {
            rule: "panic-surface",
            file: RATCHET_FILE.to_string(),
            line: 0,
            message: format!(
                "missing ratchet file {RATCHET_FILE}; commit one with the current \
                 per-crate counts: {}",
                format_counts(&counts)
            ),
        });
        return counts;
    };
    let mut committed: BTreeMap<String, usize> = BTreeMap::new();
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (Some(name), Some(count), None) = (parts.next(), parts.next(), parts.next()) else {
            findings.push(Finding {
                rule: "panic-surface",
                file: RATCHET_FILE.to_string(),
                line: line_no,
                message: format!("malformed ratchet line '{trimmed}' (want: <crate> <count>)"),
            });
            continue;
        };
        match count.parse::<usize>() {
            Ok(n) => {
                committed.insert(name.to_string(), n);
            }
            Err(_) => findings.push(Finding {
                rule: "panic-surface",
                file: RATCHET_FILE.to_string(),
                line: line_no,
                message: format!("bad count '{count}' for crate {name}"),
            }),
        }
    }
    for (name, &actual) in &counts {
        match committed.get(name) {
            None => findings.push(Finding {
                rule: "panic-surface",
                file: RATCHET_FILE.to_string(),
                line: 0,
                message: format!("crate {name} missing from the ratchet (current count {actual})"),
            }),
            Some(&limit) if actual > limit => findings.push(Finding {
                rule: "panic-surface",
                file: RATCHET_FILE.to_string(),
                line: 0,
                message: format!(
                    "panic surface of {name} grew: {actual} sites vs ratchet {limit} — \
                     remove panics or waive the new site"
                ),
            }),
            Some(&limit) if actual < limit => findings.push(Finding {
                rule: "panic-surface",
                file: RATCHET_FILE.to_string(),
                line: 0,
                message: format!(
                    "ratchet for {name} is stale: {actual} sites vs committed {limit} — \
                     tighten the ratchet to {actual}"
                ),
            }),
            Some(_) => {}
        }
    }
    for name in committed.keys() {
        if !counts.contains_key(name) {
            findings.push(Finding {
                rule: "panic-surface",
                file: RATCHET_FILE.to_string(),
                line: 0,
                message: format!("ratchet lists unknown crate {name}"),
            });
        }
    }
    counts
}

fn format_counts(counts: &BTreeMap<String, usize>) -> String {
    counts
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(", ")
}

// ---------------------------------------------------------------------------
// Rule: oracle-discipline
// ---------------------------------------------------------------------------

/// Every preserved reference oracle — a `fn` whose name ends in
/// `_reference`, or any `pub fn` in a `reference.rs` module — must be
/// exercised from test code somewhere in the workspace, otherwise the
/// differential pin the PR discipline promises does not exist.
fn oracle_discipline(ws: &Workspace, findings: &mut Vec<Finding>) {
    // Identifiers mentioned anywhere in test code.
    let mut test_idents: BTreeSet<&str> = BTreeSet::new();
    for file in ws.files.values() {
        for (i, t) in file.tokens.iter().enumerate() {
            if t.kind == TokenKind::Ident && file.is_test_code(i) {
                test_idents.insert(t.text.as_str());
            }
        }
    }
    for file in ws.files.values() {
        if file.class == FileClass::Shim || file.class == FileClass::Test {
            continue;
        }
        let in_reference_module = file.path.ends_with("/reference.rs");
        let code = code_view(file);
        for p in 0..code.len() {
            let ti = code[p];
            if file.is_test_code(ti) || file.in_macro_def(ti) {
                continue;
            }
            if !file.tokens[ti].is_ident("fn") {
                continue;
            }
            let Some(name) = tok(file, &code, p + 1) else {
                continue;
            };
            if name.kind != TokenKind::Ident {
                continue;
            }
            let is_oracle = name.text.ends_with("_reference")
                || (in_reference_module && p > 0 && file.tokens[code[p - 1]].is_ident("pub"));
            if is_oracle && !test_idents.contains(name.text.as_str()) {
                findings.push(Finding {
                    rule: "oracle-discipline",
                    file: file.path.clone(),
                    line: name.line,
                    message: format!(
                        "reference oracle `{}` is never exercised from test code — add a \
                         differential test pinning it against the fast path",
                        name.text
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: shim-surface
// ---------------------------------------------------------------------------

/// Imports from the vendored shims must name items the shims actually
/// export; anything else only fails at build time in an environment that
/// never had the real crates.
fn shim_surface(ws: &Workspace, findings: &mut Vec<Finding>) {
    // Exported names per shim crate (flat: items, modules, macros,
    // re-exports at any depth).
    let mut exports: BTreeMap<&str, BTreeSet<String>> = BTreeMap::new();
    for file in ws.files.values() {
        if file.class != FileClass::Shim {
            continue;
        }
        let set = exports.entry(file.crate_name.as_str()).or_default();
        collect_shim_exports(file, set);
    }
    if exports.is_empty() {
        return; // fixture workspaces without shims
    }
    for file in ws.files.values() {
        if file.class == FileClass::Shim {
            continue;
        }
        let code = code_view(file);
        for p in 0..code.len() {
            if !file.tokens[code[p]].is_ident("use") {
                continue;
            }
            let Some(first) = tok(file, &code, p + 1) else {
                continue;
            };
            let Some(export_set) = exports.get(first.text.as_str()) else {
                continue;
            };
            // Walk the use-tree to `;`, checking every path/leaf ident.
            let mut q = p + 2;
            let mut prev_was_as = false;
            while let Some(t) = tok(file, &code, q) {
                if t.is_punct(';') {
                    break;
                }
                if t.is_ident("as") {
                    prev_was_as = true;
                    q += 1;
                    continue;
                }
                if t.kind == TokenKind::Ident && !prev_was_as {
                    let name = t.text.as_str();
                    let is_path_keyword = matches!(name, "self" | "super" | "crate");
                    if !is_path_keyword && !export_set.contains(name) {
                        findings.push(Finding {
                            rule: "shim-surface",
                            file: file.path.clone(),
                            line: t.line,
                            message: format!(
                                "`{}::…::{name}` is not exported by the {} shim — extend \
                                 shims/{}/src before depending on new surface",
                                first.text, first.text, first.text
                            ),
                        });
                    }
                }
                prev_was_as = false;
                q += 1;
            }
        }
    }
}

/// Collect the publicly importable names a shim file defines.
fn collect_shim_exports(file: &SourceFile, set: &mut BTreeSet<String>) {
    const ITEM_KEYWORDS: &[&str] = &[
        "fn", "struct", "enum", "trait", "type", "const", "static", "mod", "union",
    ];
    let code = code_view(file);
    for p in 0..code.len() {
        let t = &file.tokens[code[p]];
        if t.is_ident("pub") {
            let Some(next) = tok(file, &code, p + 1) else {
                continue;
            };
            if next.is_punct('(') {
                continue; // pub(crate)/pub(super): not importable
            }
            if next.is_ident("use") {
                // Re-export: every ident in the tree becomes importable
                // (both original names and `as` aliases).
                let mut q = p + 2;
                while let Some(t) = tok(file, &code, q) {
                    if t.is_punct(';') {
                        break;
                    }
                    if t.kind == TokenKind::Ident
                        && !matches!(t.text.as_str(), "self" | "super" | "crate" | "as")
                    {
                        set.insert(t.text.clone());
                    }
                    q += 1;
                }
            } else if ITEM_KEYWORDS.contains(&next.text.as_str()) {
                if let Some(name) = tok(file, &code, p + 2) {
                    if name.kind == TokenKind::Ident {
                        set.insert(name.text.clone());
                    }
                }
            } else if next.is_ident("unsafe") || next.is_ident("async") {
                // `pub unsafe fn`, `pub async fn`.
                if let (Some(kw), Some(name)) = (tok(file, &code, p + 2), tok(file, &code, p + 3)) {
                    if ITEM_KEYWORDS.contains(&kw.text.as_str()) && name.kind == TokenKind::Ident {
                        set.insert(name.text.clone());
                    }
                }
            }
        } else if t.is_ident("macro_rules") {
            // Exported macros (the shims mark them #[macro_export]).
            if let (Some(bang), Some(name)) = (tok(file, &code, p + 1), tok(file, &code, p + 2)) {
                if bang.is_punct('!') && name.kind == TokenKind::Ident {
                    set.insert(name.text.clone());
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: bench-schema
// ---------------------------------------------------------------------------

/// Every committed `BENCH_*.json` must parse and carry the keys the
/// benches and CI smoke runs rely on: `issue` (number), `quick` (bool),
/// `config` (object).
fn bench_schema(ws: &Workspace, findings: &mut Vec<Finding>) {
    let Ok(entries) = std::fs::read_dir(&ws.root) else {
        return;
    };
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().to_string())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    names.sort();
    for name in names {
        let Ok(text) = std::fs::read_to_string(ws.root.join(&name)) else {
            findings.push(Finding {
                rule: "bench-schema",
                file: name.clone(),
                line: 0,
                message: "unreadable bench artifact".to_string(),
            });
            continue;
        };
        let value = match json::parse(&text) {
            Ok(v) => v,
            Err(e) => {
                findings.push(Finding {
                    rule: "bench-schema",
                    file: name.clone(),
                    line: 0,
                    message: format!("not valid JSON: {e}"),
                });
                continue;
            }
        };
        let Some(obj) = value.as_object() else {
            findings.push(Finding {
                rule: "bench-schema",
                file: name.clone(),
                line: 0,
                message: "top level must be a JSON object".to_string(),
            });
            continue;
        };
        type KeyCheck = (&'static str, fn(&json::Value) -> bool, &'static str);
        let checks: [KeyCheck; 3] = [
            ("issue", |v| matches!(v, json::Value::Number(_)), "a number"),
            ("quick", |v| matches!(v, json::Value::Bool(_)), "a bool"),
            (
                "config",
                |v| matches!(v, json::Value::Object(_)),
                "an object",
            ),
        ];
        for (key, type_check, wanted) in checks {
            match obj.get(key) {
                None => findings.push(Finding {
                    rule: "bench-schema",
                    file: name.clone(),
                    line: 0,
                    message: format!("missing required key \"{key}\" ({wanted})"),
                }),
                Some(v) if !type_check(v) => findings.push(Finding {
                    rule: "bench-schema",
                    file: name.clone(),
                    line: 0,
                    message: format!("key \"{key}\" must be {wanted}"),
                }),
                Some(_) => {}
            }
        }
        // The filename's number is the artifact's identity — it must agree
        // with the `issue` field, or a copied template silently misfiles a
        // PR's numbers under another PR's name.
        if let (Some(stem), Some(json::Value::Number(issue))) = (
            name.strip_prefix("BENCH_")
                .and_then(|s| s.strip_suffix(".json")),
            obj.get("issue"),
        ) {
            if stem.parse::<f64>() != Ok(*issue) {
                findings.push(Finding {
                    rule: "bench-schema",
                    file: name.clone(),
                    line: 0,
                    message: format!(
                        "filename number \"{stem}\" does not match \"issue\": {issue}"
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: ci-floor-consistency
// ---------------------------------------------------------------------------

/// `ci.sh` guards the release suite with a `min_tests` floor. The floor
/// must equal a static recount of the `#[test]` functions (plus
/// `proptest!`-generated cases) in targets `cargo test` actually runs, so
/// a suite that shrinks — or a floor that was forgotten after adding
/// tests — both fail.
fn ci_floor_consistency(ws: &Workspace, findings: &mut Vec<Finding>) {
    let ci_path = ws.root.join("ci.sh");
    let Ok(ci) = std::fs::read_to_string(&ci_path) else {
        return; // fixture workspaces without a CI script
    };
    let mut floor: Option<usize> = None;
    let mut floor_line = 0u32;
    for (idx, line) in ci.lines().enumerate() {
        if let Some(rest) = line.trim().strip_prefix("min_tests=") {
            let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
            if let Ok(n) = digits.parse() {
                floor = Some(n);
                floor_line = idx as u32 + 1;
            }
        }
    }
    let Some(floor) = floor else {
        findings.push(Finding {
            rule: "ci-floor-consistency",
            file: "ci.sh".to_string(),
            line: 0,
            message: "no `min_tests=<n>` floor found in ci.sh".to_string(),
        });
        return;
    };
    let recount = count_tests(ws);
    if recount != floor {
        findings.push(Finding {
            rule: "ci-floor-consistency",
            file: "ci.sh".to_string(),
            line: floor_line,
            message: format!(
                "min_tests={floor} but the static recount of #[test] cases in targets \
                 cargo test runs is {recount} — update the floor"
            ),
        });
    }
}

/// Static count of test functions in targets `cargo test` runs by default:
/// crate/shim sources (unit tests, including bins) and top-level
/// `tests/*.rs` integration tests — not benches, not examples. Counts
/// `#[test]` attributes outside `macro_rules!` templates. The proptest
/// shim's `proptest!` keeps each case's `#[test]` meta verbatim in the
/// invocation, so proptest cases are counted by the same scan — counting
/// the `fn`s inside the block as well would double-count them.
pub fn count_tests(ws: &Workspace) -> usize {
    let mut count = 0usize;
    for file in ws.files.values() {
        match file.class {
            FileClass::Lib | FileClass::Test | FileClass::Shim => {}
            FileClass::Bench | FileClass::Example => continue,
        }
        let code = code_view(file);
        for p in 0..code.len() {
            let ti = code[p];
            if file.in_macro_def(ti) {
                continue;
            }
            let t = &file.tokens[ti];
            // `#[test]`
            if t.is_punct('#')
                && tok(file, &code, p + 1).is_some_and(|t| t.is_punct('['))
                && tok(file, &code, p + 2).is_some_and(|t| t.is_ident("test"))
                && tok(file, &code, p + 3).is_some_and(|t| t.is_punct(']'))
            {
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn lib_file(src: &str) -> SourceFile {
        SourceFile::parse(
            "crates/x/src/lib.rs".into(),
            "scope-x".into(),
            FileClass::Lib,
            src,
        )
    }

    #[test]
    fn hash_bindings_are_tracked_through_aliases_and_params() {
        let f = lib_file(
            "type Fnv<K,V> = HashMap<K,V,S>;\n\
             fn g(m: &HashMap<u32, f64>, v: Vec<u8>) { for x in m {} for y in v {} }\n\
             fn h() {\n\
             let mut a: Fnv<u8, u8> = Fnv::default();\n\
             let c: Vec<u32> = Vec::new();\n\
             for x in a {}\n\
             for y in c {}\n\
             }",
        );
        let code = code_view(&f);
        let types = hash_type_names(&f, &code);
        assert!(types.contains("Fnv"));
        let mut ws = Workspace::default();
        ws.files.insert(f.path.clone(), f);
        let mut findings = Vec::new();
        no_unordered_iteration(&ws, &mut findings);
        let flagged: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
        assert_eq!(findings.len(), 2, "{flagged:?}");
        assert!(flagged[0].contains("in m"));
        assert!(flagged[1].contains("in a"));
    }

    #[test]
    fn binding_tracking_is_function_scoped() {
        // `owner` is a HashMap in one function and a BTreeMap in another;
        // iterating the BTreeMap one must not be flagged.
        let f = lib_file(
            "fn a() { let owner: HashMap<u32, u32> = HashMap::new(); let _ = owner.get(&1); }\n\
             fn b() { let owner: BTreeMap<u32, u32> = BTreeMap::new(); for x in owner {} }",
        );
        let mut ws = Workspace::default();
        ws.files.insert(f.path.clone(), f);
        let mut findings = Vec::new();
        no_unordered_iteration(&ws, &mut findings);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn iteration_sites_are_flagged_lookups_are_not() {
        let f = lib_file(
            "fn h() {\n\
             let mut m: HashMap<u32, f64> = HashMap::new();\n\
             m.insert(1, 2.0);\n\
             let _ = m.get(&1);\n\
             for (k, v) in &m { use_it(k, v); }\n\
             let _: Vec<_> = m.keys().collect();\n\
             }",
        );
        let ws = Workspace::default();
        let mut findings = Vec::new();
        // Drive the per-file logic through a one-file workspace.
        let mut ws = ws;
        ws.files.insert(f.path.clone(), f);
        no_unordered_iteration(&ws, &mut findings);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings[0].message.contains("for … in m"));
        assert!(findings[1].message.contains("m.keys()"));
    }

    #[test]
    fn test_code_and_reference_modules_are_exempt() {
        let tests_mod = "#[cfg(test)]\nmod tests {\n fn t() { let m = HashMap::new(); \
                         for x in m {} }\n}";
        let mut ws = Workspace::default();
        ws.files
            .insert("crates/x/src/lib.rs".into(), lib_file(tests_mod));
        ws.files.insert(
            "crates/x/src/reference.rs".into(),
            SourceFile::parse(
                "crates/x/src/reference.rs".into(),
                "scope-x".into(),
                FileClass::Lib,
                "fn seed() { let m = HashMap::new(); for x in m {} }",
            ),
        );
        let mut findings = Vec::new();
        no_unordered_iteration(&ws, &mut findings);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn static_test_recount_counts_attrs_once_each() {
        let mut ws = Workspace::default();
        ws.files.insert(
            "crates/x/src/lib.rs".into(),
            lib_file(
                "#[cfg(test)]\nmod tests {\n#[test]\nfn a() {}\n#[test]\nfn b() {}\n}\n\
                 macro_rules! m { () => { #[test] fn fake() {} }; }",
            ),
        );
        // The proptest shim's proptest! passes each case's `#[test]` meta
        // through verbatim; the case must be counted exactly once.
        ws.files.insert(
            "tests/it.rs".into(),
            SourceFile::parse(
                "tests/it.rs".into(),
                "scope".into(),
                FileClass::Test,
                "#[test]\nfn c() {}\nproptest! {\n #[test]\n fn p1(x in 0..9) {}\n}",
            ),
        );
        ws.files.insert(
            "crates/bench/benches/b.rs".into(),
            SourceFile::parse(
                "crates/bench/benches/b.rs".into(),
                "scope-bench".into(),
                FileClass::Bench,
                "#[test]\nfn not_run_by_cargo_test() {}",
            ),
        );
        assert_eq!(count_tests(&ws), 4);
    }
}
