//! Workspace model: which `.rs` files exist, what role each plays, where
//! its `#[cfg(test)]` regions and waiver comments are.
//!
//! The walker follows the layout conventions of this repository (and of the
//! fixture mini-workspaces under `tests/fixtures/`): `src/`, `tests/*.rs`
//! and `examples/` for the root package, `crates/<name>/{src,tests,benches}`
//! for member crates, `shims/<name>/src` for the vendored dependency shims.
//! Only files cargo actually compiles are walked — in particular
//! subdirectories of `tests/` (fixture corpora) are skipped.

use crate::lexer::{lex, Token, TokenKind};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// The role a file plays in the workspace, which decides which rules and
/// exemptions apply to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library or binary source of a member crate (or the root package).
    Lib,
    /// An integration-test file (`tests/*.rs`).
    Test,
    /// A criterion bench (`benches/*.rs`) or a bench binary of the
    /// `scope-bench` crate.
    Bench,
    /// A runnable example (`examples/*.rs`).
    Example,
    /// Vendored offline shim source (`shims/*/src`).
    Shim,
}

/// An inline waiver comment:
/// `// scope-analyze: allow(<rule>) — <reason>`.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Rule name inside `allow(…)`.
    pub rule: String,
    /// Free-text justification after the dash. Empty reasons are rejected
    /// by the waiver-budget rule.
    pub reason: String,
    /// 1-based line of the comment. A waiver covers findings on its own
    /// line (trailing comment) and on the following line (comment-above).
    pub line: u32,
    /// Repo-relative path of the file the waiver sits in.
    pub file: String,
}

/// One lexed workspace file plus everything the rules need to know about
/// it.
#[derive(Debug)]
pub struct SourceFile {
    /// Repo-relative path with `/` separators.
    pub path: String,
    /// Package name owning the file (`scope`, `scope-cloudsim`, `rand`, …).
    pub crate_name: String,
    /// Role of the file.
    pub class: FileClass,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// Sorted token-index ranges `[start, end)` under `#[cfg(test)]` or
    /// `#[test]` items.
    pub test_regions: Vec<(usize, usize)>,
    /// Token-index ranges `[start, end)` inside `macro_rules!` bodies
    /// (templates, not real code — the test recount must skip them).
    pub macro_def_regions: Vec<(usize, usize)>,
    /// Waivers declared in this file.
    pub waivers: Vec<Waiver>,
}

impl SourceFile {
    /// Parse one file. `path` must be repo-relative.
    pub fn parse(path: String, crate_name: String, class: FileClass, source: &str) -> SourceFile {
        let tokens = lex(source);
        let test_regions = attribute_item_regions(&tokens);
        let macro_def_regions = macro_rules_regions(&tokens);
        let waivers = parse_waivers(&tokens, &path);
        SourceFile {
            path,
            crate_name,
            class,
            tokens,
            test_regions,
            macro_def_regions,
            waivers,
        }
    }

    /// True when token `i` is inside a `#[cfg(test)]` / `#[test]` item.
    pub fn in_test_region(&self, i: usize) -> bool {
        self.test_regions.iter().any(|&(s, e)| s <= i && i < e)
    }

    /// True when token `i` is inside a `macro_rules!` body.
    pub fn in_macro_def(&self, i: usize) -> bool {
        self.macro_def_regions.iter().any(|&(s, e)| s <= i && i < e)
    }

    /// True when the whole file is test code (integration tests) or the
    /// specific token is in a test region.
    pub fn is_test_code(&self, i: usize) -> bool {
        self.class == FileClass::Test || self.in_test_region(i)
    }
}

/// The loaded workspace: all files, in deterministic path order.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Repo root the workspace was loaded from.
    pub root: PathBuf,
    /// All lexed files keyed by repo-relative path (sorted).
    pub files: BTreeMap<String, SourceFile>,
}

impl Workspace {
    /// Load every compiled `.rs` file under `root` following the layout
    /// conventions described in the module docs.
    pub fn load(root: &Path) -> std::io::Result<Workspace> {
        let mut ws = Workspace {
            root: root.to_path_buf(),
            files: BTreeMap::new(),
        };
        // Root package.
        ws.add_tree(root.join("src"), "scope", FileClass::Lib)?;
        ws.add_flat(root.join("tests"), "scope", FileClass::Test)?;
        ws.add_tree(root.join("examples"), "scope", FileClass::Example)?;
        // Member crates.
        for (dir, name) in sorted_subdirs(&root.join("crates"))? {
            let crate_name = format!("scope-{name}");
            let bin_class = if name == "bench" {
                // The bench crate's binaries are measurement harnesses; they
                // share the bench exemptions (e.g. wall-clock timing).
                FileClass::Bench
            } else {
                FileClass::Lib
            };
            ws.add_tree_classified(dir.join("src"), &crate_name, FileClass::Lib, bin_class)?;
            ws.add_flat(dir.join("tests"), &crate_name, FileClass::Test)?;
            ws.add_flat(dir.join("benches"), &crate_name, FileClass::Bench)?;
        }
        // Shims keep their upstream names.
        for (dir, name) in sorted_subdirs(&root.join("shims"))? {
            ws.add_tree(dir.join("src"), &name, FileClass::Shim)?;
        }
        Ok(ws)
    }

    /// Repo-relative display path for `path`.
    fn rel(&self, path: &Path) -> String {
        path.strip_prefix(&self.root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/")
    }

    fn add_file(&mut self, path: &Path, crate_name: &str, class: FileClass) -> std::io::Result<()> {
        let source = std::fs::read_to_string(path)?;
        let rel = self.rel(path);
        let file = SourceFile::parse(rel.clone(), crate_name.to_string(), class, &source);
        self.files.insert(rel, file);
        Ok(())
    }

    /// Add a directory tree of `.rs` files recursively.
    fn add_tree(
        &mut self,
        dir: PathBuf,
        crate_name: &str,
        class: FileClass,
    ) -> std::io::Result<()> {
        self.add_tree_classified(dir, crate_name, class, class)
    }

    /// Like [`Workspace::add_tree`] but classifying files under a `bin/`
    /// subdirectory differently (bench binaries vs library sources).
    fn add_tree_classified(
        &mut self,
        dir: PathBuf,
        crate_name: &str,
        class: FileClass,
        bin_class: FileClass,
    ) -> std::io::Result<()> {
        if !dir.is_dir() {
            return Ok(());
        }
        let mut stack = vec![dir];
        while let Some(d) = stack.pop() {
            for (sub, _) in sorted_subdirs(&d)? {
                stack.push(sub);
            }
            for entry in sorted_rs_files(&d)? {
                let in_bin = entry
                    .components()
                    .any(|c| c.as_os_str().to_string_lossy() == "bin");
                let c = if in_bin { bin_class } else { class };
                self.add_file(&entry, crate_name, c)?;
            }
        }
        Ok(())
    }

    /// Add only the top-level `.rs` files of a directory (how cargo
    /// discovers `tests/` and `benches/` targets — subdirectories such as
    /// fixture corpora are not compiled).
    fn add_flat(
        &mut self,
        dir: PathBuf,
        crate_name: &str,
        class: FileClass,
    ) -> std::io::Result<()> {
        if !dir.is_dir() {
            return Ok(());
        }
        for entry in sorted_rs_files(&dir)? {
            self.add_file(&entry, crate_name, class)?;
        }
        Ok(())
    }
}

fn sorted_subdirs(dir: &Path) -> std::io::Result<Vec<(PathBuf, String)>> {
    let mut out = Vec::new();
    if !dir.is_dir() {
        return Ok(out);
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if entry.file_type()?.is_dir() {
            let name = entry.file_name().to_string_lossy().to_string();
            out.push((entry.path(), name));
        }
    }
    out.sort();
    Ok(out)
}

fn sorted_rs_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_file() && path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}

/// Find `[start, end)` token ranges of items annotated `#[cfg(test)]` or
/// `#[test]`: the range starts at the attribute's `#` and ends after the
/// item's closing brace (or terminating `;`).
fn attribute_item_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if let Some(after_attr) = match_test_attribute(tokens, i) {
            let end = item_end(tokens, after_attr);
            regions.push((i, end));
            i = end;
        } else {
            i += 1;
        }
    }
    regions
}

/// If tokens at `i` start a `#[cfg(test)]` or `#[test]` attribute, return
/// the index just past the attribute's closing `]`.
fn match_test_attribute(tokens: &[Token], i: usize) -> Option<usize> {
    if !tokens.get(i)?.is_punct('#') || !tokens.get(i + 1)?.is_punct('[') {
        return None;
    }
    let inner = tokens.get(i + 2)?;
    let is_test = inner.is_ident("test") && tokens.get(i + 3)?.is_punct(']');
    let is_cfg_test = inner.is_ident("cfg")
        && tokens.get(i + 3)?.is_punct('(')
        && tokens.get(i + 4)?.is_ident("test")
        && tokens.get(i + 5)?.is_punct(')')
        && tokens.get(i + 6)?.is_punct(']');
    if is_test {
        Some(i + 4)
    } else if is_cfg_test {
        Some(i + 7)
    } else {
        None
    }
}

/// Find where the item starting at `i` (after its attributes) ends: after
/// the matching `}` of its first top-level brace group, or after a `;` met
/// before any brace.
fn item_end(tokens: &[Token], mut i: usize) -> usize {
    // Skip further attributes and doc comments.
    loop {
        match tokens.get(i) {
            Some(t) if t.is_comment() => i += 1,
            Some(t) if t.is_punct('#') && tokens.get(i + 1).is_some_and(|n| n.is_punct('[')) => {
                i = skip_group(tokens, i + 1, '[', ']');
            }
            _ => break,
        }
    }
    let mut depth = 0i32;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth <= 0 {
                return i + 1;
            }
        } else if t.is_punct(';') && depth == 0 {
            return i + 1;
        } else if (t.is_punct('(') || t.is_punct('[')) && depth == 0 {
            // Delimited groups before the body (fn args, generics bounds in
            // brackets) — skip them wholesale so a `;`/`{` inside doesn't
            // confuse the scan.
            let close = if t.is_punct('(') { ')' } else { ']' };
            i = skip_group(tokens, i, t.text.chars().next().unwrap_or('('), close);
            continue;
        }
        i += 1;
    }
    tokens.len()
}

/// Given `tokens[i]` = the opening delimiter, return the index just past
/// its matching close.
fn skip_group(tokens: &[Token], i: usize, open: char, close: char) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < tokens.len() {
        if tokens[j].is_punct(open) {
            depth += 1;
        } else if tokens[j].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    tokens.len()
}

/// Token ranges of `macro_rules! name { … }` bodies.
fn macro_rules_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i + 3 < tokens.len() {
        if tokens[i].is_ident("macro_rules")
            && tokens[i + 1].is_punct('!')
            && tokens[i + 2].kind == TokenKind::Ident
        {
            let end = skip_group(tokens, i + 3, '{', '}');
            regions.push((i, end));
            i = end;
        } else {
            i += 1;
        }
    }
    regions
}

/// Parse waiver comments. Accepted shapes (the dash may be `—`, `–`, `--`
/// or `-`):
///
/// ```text
/// // scope-analyze: allow(rule-name) — reason text
/// ```
fn parse_waivers(tokens: &[Token], path: &str) -> Vec<Waiver> {
    let mut out = Vec::new();
    for t in tokens {
        if t.kind != TokenKind::LineComment {
            continue;
        }
        let body = t.text.trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("scope-analyze:") else {
            continue;
        };
        let rest = rest.trim();
        let Some(rest) = rest.strip_prefix("allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let reason = rest[close + 1..]
            .trim()
            .trim_start_matches(['—', '–', '-'])
            .trim()
            .to_string();
        out.push(Waiver {
            rule,
            reason,
            line: t.line,
            file: path.to_string(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse("x.rs".into(), "scope-x".into(), FileClass::Lib, src)
    }

    #[test]
    fn cfg_test_mod_region_covers_the_module() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n fn b() {}\n}\nfn c() {}";
        let f = file(src);
        let a = f.tokens.iter().position(|t| t.is_ident("a")).unwrap();
        let b = f.tokens.iter().position(|t| t.is_ident("b")).unwrap();
        let c = f.tokens.iter().position(|t| t.is_ident("c")).unwrap();
        assert!(!f.in_test_region(a));
        assert!(f.in_test_region(b));
        assert!(!f.in_test_region(c));
    }

    #[test]
    fn test_attribute_on_fn_is_a_region() {
        let src = "#[test]\nfn t() { x(); }\nfn u() {}";
        let f = file(src);
        let x = f.tokens.iter().position(|t| t.is_ident("x")).unwrap();
        let u = f.tokens.iter().position(|t| t.is_ident("u")).unwrap();
        assert!(f.in_test_region(x));
        assert!(!f.in_test_region(u));
    }

    #[test]
    fn attributes_between_cfg_test_and_item_are_skipped() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests { fn b() {} }";
        let f = file(src);
        let b = f.tokens.iter().position(|t| t.is_ident("b")).unwrap();
        assert!(f.in_test_region(b));
    }

    #[test]
    fn macro_rules_bodies_are_tracked() {
        let src = "macro_rules! m { () => { #[test] fn g() {} }; }\nfn real() {}";
        let f = file(src);
        let g = f.tokens.iter().position(|t| t.is_ident("g")).unwrap();
        let real = f.tokens.iter().position(|t| t.is_ident("real")).unwrap();
        assert!(f.in_macro_def(g));
        assert!(!f.in_macro_def(real));
    }

    #[test]
    fn waiver_parsing_accepts_dash_flavours_and_requires_shape() {
        let src = "\
// scope-analyze: allow(no-unordered-iteration) — integer merge, order-independent
// scope-analyze: allow(panic-surface) -- startup only
// scope-analyze: allow(bad-shape
// a normal comment mentioning scope-analyze: allow is ignored? no paren no match
";
        let f = file(src);
        assert_eq!(f.waivers.len(), 2);
        assert_eq!(f.waivers[0].rule, "no-unordered-iteration");
        assert_eq!(f.waivers[0].reason, "integer merge, order-independent");
        assert_eq!(f.waivers[0].line, 1);
        assert_eq!(f.waivers[1].rule, "panic-surface");
        assert_eq!(f.waivers[1].reason, "startup only");
    }

    #[test]
    fn waivers_inside_strings_do_not_count() {
        let f = file("let s = \"// scope-analyze: allow(x) — nope\";");
        assert!(f.waivers.is_empty());
    }
}
