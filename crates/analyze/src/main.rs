//! CLI for the workspace invariant linter.
//!
//! ```text
//! scope-analyze [--root <dir>] [--rule <name>]… [--json] [--deny]
//! ```
//!
//! `--deny` exits non-zero when any finding survives waiver filtering —
//! that is the mode `ci.sh` runs. `--json` emits a machine-readable report
//! on stdout; the human format prints `file:line: [rule] message` lines.

use scope_analyze::{analyze_rules, json, Report, RULE_NAMES};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut emit_json = false;
    let mut deny = false;
    let mut rules: BTreeSet<&str> = BTreeSet::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            "--rule" => match args.next().as_deref().map(resolve_rule) {
                Some(Some(name)) => {
                    rules.insert(name);
                }
                Some(None) => return usage("unknown rule (see --help for the list)"),
                None => return usage("--rule needs a rule name"),
            },
            "--json" => emit_json = true,
            "--deny" => deny = true,
            "--help" | "-h" => {
                print!("{}", help_text());
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }
    if rules.is_empty() {
        rules = RULE_NAMES.iter().copied().collect();
    }

    let report = match analyze_rules(&root, &rules) {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "scope-analyze: cannot load workspace at {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };
    if emit_json {
        print!("{}", render_json(&report));
    } else {
        render_human(&report);
    }
    if deny && !report.findings.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Map a user-supplied rule name onto the canonical static str.
fn resolve_rule(name: &str) -> Option<&'static str> {
    RULE_NAMES.iter().copied().find(|r| *r == name)
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("scope-analyze: {problem}");
    eprint!("{}", help_text());
    ExitCode::from(2)
}

fn help_text() -> String {
    let mut out = String::from(
        "usage: scope-analyze [--root <dir>] [--rule <name>]... [--json] [--deny]\n\
         \n\
         Checks the workspace invariants; --deny exits 1 on any finding.\n\
         Waive a finding in place with:\n\
         // scope-analyze: allow(<rule>) — <reason>\n\
         \n\
         rules:\n",
    );
    for rule in RULE_NAMES {
        out.push_str("  ");
        out.push_str(rule);
        out.push('\n');
    }
    out
}

fn render_human(report: &Report) {
    for f in &report.findings {
        println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
    }
    println!(
        "scope-analyze: {} finding(s) across {} files ({} of {} waivers used)",
        report.findings.len(),
        report.files_scanned,
        report.waivers_used,
        report.waivers_total
    );
}

fn render_json(report: &Report) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            json::escape(f.rule),
            json::escape(&f.file),
            f.line,
            json::escape(&f.message)
        ));
    }
    if !report.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    out.push_str(&format!("  \"waivers_used\": {},\n", report.waivers_used));
    out.push_str(&format!("  \"waivers_total\": {},\n", report.waivers_total));
    out.push_str("  \"panic_counts\": {");
    for (i, (name, count)) in report.panic_counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{}\": {}", json::escape(name), count));
    }
    if !report.panic_counts.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("}\n}\n");
    out
}
