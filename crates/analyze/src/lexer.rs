//! A small comment-, string- and char-literal-aware Rust lexer.
//!
//! The rule engine in this crate works on token streams, not on raw text:
//! a `HashMap` mentioned in a doc comment, a `panic!` inside a string
//! literal, or an `unwrap()` in an example embedded in `//!` docs must not
//! trip a lint. This lexer produces exactly the token classes the rules
//! need — identifiers, punctuation, literals and (crucially, for waiver
//! parsing) comments — with line numbers, and nothing more. It is not a
//! full Rust lexer: it does not distinguish keywords from identifiers and
//! it folds all bracket kinds into plain punctuation tokens, leaving
//! structure recovery (brace matching, attribute scanning) to the callers
//! in `source.rs` and `rules.rs`.

/// The class of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (including raw identifiers, with the
    /// `r#` prefix stripped).
    Ident,
    /// A lifetime such as `'a` (the quote is not part of the text).
    Lifetime,
    /// An integer or float literal, including suffixes.
    Number,
    /// A string literal of any flavour (`"…"`, `r#"…"#`, `b"…"`). The text
    /// is the raw source slice including delimiters.
    Str,
    /// A character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A `//` comment (the text includes the slashes, excludes the
    /// newline). Doc comments (`///`, `//!`) are also this kind.
    LineComment,
    /// A `/* … */` comment, nesting handled.
    BlockComment,
    /// A single punctuation character (`.`, `:`, `!`, `{`, …). Multi-char
    /// operators appear as consecutive tokens.
    Punct,
}

/// One token: kind, source text and 1-based line of its first character.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Source text of the token (see [`TokenKind`] for per-kind details).
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

impl Token {
    /// True when the token is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True when the token is a punctuation character equal to `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.starts_with(c)
    }

    /// True for either comment kind.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Lex `source` into a token stream.
///
/// The lexer never fails: malformed input (an unterminated string, a stray
/// control character) degrades to best-effort tokens rather than an error,
/// because lint tools must keep going on code that `rustc` itself would
/// reject.
pub fn lex(source: &str) -> Vec<Token> {
    Lexer {
        chars: source.char_indices().collect(),
        source,
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    chars: Vec<(usize, char)>,
    source: &'a str,
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).map(|&(_, c)| c)
    }

    fn byte_at(&self, index: usize) -> usize {
        self.chars
            .get(index)
            .map(|&(b, _)| b)
            .unwrap_or(self.source.len())
    }

    fn slice(&self, from: usize, to: usize) -> String {
        self.source[self.byte_at(from)..self.byte_at(to)].to_string()
    }

    /// Advance one char, keeping the line counter honest.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        if c == '\n' {
            self.line += 1;
        }
        self.pos += 1;
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            let start = self.pos;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(start, line),
                '/' if self.peek(1) == Some('*') => self.block_comment(start, line),
                '"' => self.string_literal(start, line),
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string_literal(start, line);
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump();
                    self.char_literal(start, line);
                }
                'b' if self.peek(1) == Some('r') && matches!(self.peek(2), Some('"' | '#')) => {
                    self.bump();
                    self.bump();
                    self.raw_string(start, line);
                }
                'r' if matches!(self.peek(1), Some('"' | '#')) => {
                    // `r"…"`, `r#"…"#` or a raw identifier `r#ident`.
                    if self.peek(1) == Some('#') && self.peek(2).is_some_and(is_ident_start) {
                        self.bump();
                        self.bump();
                        self.ident(self.pos, line);
                    } else {
                        self.bump();
                        self.raw_string(start, line);
                    }
                }
                '\'' => self.quote(start, line),
                c if is_ident_start(c) => self.ident(start, line),
                c if c.is_ascii_digit() => self.number(start, line),
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct, c.to_string(), line);
                }
            }
        }
        self.tokens
    }

    fn line_comment(&mut self, start: usize, line: u32) {
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
        let text = self.slice(start, self.pos);
        self.push(TokenKind::LineComment, text, line);
    }

    fn block_comment(&mut self, start: usize, line: u32) {
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break, // unterminated: degrade gracefully
            }
        }
        let text = self.slice(start, self.pos);
        self.push(TokenKind::BlockComment, text, line);
    }

    fn string_literal(&mut self, start: usize, line: u32) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        let text = self.slice(start, self.pos);
        self.push(TokenKind::Str, text, line);
    }

    fn raw_string(&mut self, start: usize, line: u32) {
        // Cursor is on the first `#` or the opening quote.
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        let text = self.slice(start, self.pos);
        self.push(TokenKind::Str, text, line);
    }

    fn char_literal(&mut self, start: usize, line: u32) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
        let text = self.slice(start, self.pos);
        self.push(TokenKind::Char, text, line);
    }

    /// A `'` is either a char literal or a lifetime. `'a'` is a char;
    /// `'a` followed by anything but `'` is a lifetime.
    fn quote(&mut self, start: usize, line: u32) {
        let next = self.peek(1);
        if next.is_some_and(is_ident_start) {
            // Find where the identifier run ends.
            let mut ahead = 2;
            while self.peek(ahead).is_some_and(is_ident_continue) {
                ahead += 1;
            }
            if self.peek(ahead) == Some('\'') {
                self.char_literal(start, line); // 'x' (single-char ident run)
            } else {
                self.bump(); // quote
                let ident_start = self.pos;
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.bump();
                }
                let text = self.slice(ident_start, self.pos);
                self.push(TokenKind::Lifetime, text, line);
            }
        } else {
            self.char_literal(start, line); // '\n', '(', …
        }
    }

    fn ident(&mut self, start: usize, line: u32) {
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        let text = self.slice(start, self.pos);
        self.push(TokenKind::Ident, text, line);
    }

    fn number(&mut self, start: usize, line: u32) {
        while self
            .peek(0)
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            self.bump();
        }
        // A float's fractional part: `.` followed by a digit. `1..n` (range)
        // and `1.max(2)` (method call) keep the dot as punctuation.
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
            {
                self.bump();
            }
        }
        let text = self.slice(start, self.pos);
        self.push(TokenKind::Number, text, line);
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_and_numbers() {
        let toks = kinds("let x = 1.5 + a..b;");
        let texts: Vec<&str> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(
            texts,
            ["let", "x", "=", "1.5", "+", "a", ".", ".", "b", ";"]
        );
    }

    #[test]
    fn comments_are_tokens_not_code() {
        let toks = lex("// has unwrap() inside\nfoo /* and panic! */ bar");
        assert_eq!(toks[0].kind, TokenKind::LineComment);
        assert!(toks[0].text.contains("unwrap"));
        assert!(toks[1].is_ident("foo"));
        assert_eq!(toks[2].kind, TokenKind::BlockComment);
        assert!(toks[3].is_ident("bar"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* a /* b */ c */ x");
        assert_eq!(toks.len(), 2);
        assert!(toks[1].is_ident("x"));
    }

    #[test]
    fn strings_swallow_code_like_text() {
        let toks = lex(r#"let s = "HashMap::new() // not a comment"; y"#);
        assert_eq!(toks[3].kind, TokenKind::Str);
        assert!(toks.iter().all(|t| !t.is_ident("HashMap")));
        assert!(toks.last().unwrap().is_ident("y"));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let toks = lex(r###"r#"quote " inside"# tail"###);
        assert_eq!(toks[0].kind, TokenKind::Str);
        assert!(toks[1].is_ident("tail"));
        let toks = lex(r#"br"bytes" tail"#);
        assert_eq!(toks[0].kind, TokenKind::Str);
        assert!(toks[1].is_ident("tail"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn raw_identifiers() {
        let toks = lex("r#type x");
        assert!(toks[0].is_ident("type"));
        assert!(toks[1].is_ident("x"));
    }

    #[test]
    fn line_numbers_are_one_based_and_track_newlines() {
        let toks = lex("a\nb\n\nc");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn byte_string_char_and_unterminated_input_degrade() {
        let toks = lex("b'x' b\"bs\" \"unterminated");
        assert_eq!(toks[0].kind, TokenKind::Char);
        assert_eq!(toks[1].kind, TokenKind::Str);
        assert_eq!(toks[2].kind, TokenKind::Str);
    }
}
