//! The analyzer eats its own dog food: the real workspace must be clean
//! under every rule, inside the waiver budget. This is the same check
//! `ci.sh` runs via `scope-analyze --deny`, kept as a test so `cargo test`
//! alone catches a drifted invariant.

use std::path::PathBuf;

#[test]
fn workspace_is_clean_under_all_rules() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = scope_analyze::analyze(&root).expect("workspace loads");
    let rendered: Vec<String> = report
        .findings
        .iter()
        .map(|f| format!("{}:{} [{}] {}", f.file, f.line, f.rule, f.message))
        .collect();
    assert!(
        report.findings.is_empty(),
        "the workspace has {} unwaived finding(s):\n{}",
        report.findings.len(),
        rendered.join("\n")
    );
    assert!(
        report.waivers_total <= scope_analyze::MAX_WAIVERS,
        "{} waivers exceed the budget of {}",
        report.waivers_total,
        scope_analyze::MAX_WAIVERS
    );
    // Sanity: the walker really saw the workspace, not an empty dir.
    assert!(report.files_scanned > 100, "{} files", report.files_scanned);
}
