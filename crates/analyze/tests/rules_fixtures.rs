//! Drives every rule over the fixture mini-workspaces under
//! `tests/fixtures/`: each rule has a positive snippet (must be flagged),
//! a negative snippet (must stay silent) and — where waivers make sense —
//! a waived snippet (flagged site suppressed by an inline waiver).
//!
//! Fixture files are lexed by the analyzer but never compiled by cargo
//! (the workspace walker skips subdirectories of `tests/`), so they are
//! free to be non-compiling and to carry waivers without spending the
//! real workspace's budget.

use scope_analyze::{analyze_rules, Report};
use std::collections::BTreeSet;
use std::path::PathBuf;

fn run(fixture: &str, rules: &[&str]) -> Report {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(fixture);
    let active: BTreeSet<&str> = rules.iter().copied().collect();
    analyze_rules(&root, &active).expect("fixture workspace loads")
}

fn messages(report: &Report) -> Vec<String> {
    report
        .findings
        .iter()
        .map(|f| format!("{}:{} [{}] {}", f.file, f.line, f.rule, f.message))
        .collect()
}

#[test]
fn unordered_iteration_pos_neg_waived() {
    let report = run("unordered", &["no-unordered-iteration"]);
    let msgs = messages(&report);
    assert_eq!(report.findings.len(), 2, "{msgs:?}");
    assert!(report.findings.iter().all(|f| f.file.ends_with("pos.rs")));
    assert!(msgs.iter().any(|m| m.contains("for … in m")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("m.keys()")), "{msgs:?}");
    // The waived.rs site was suppressed by its inline waiver.
    assert_eq!(report.waivers_used, 1);
}

#[test]
fn wallclock_pos_neg_waived_and_bench_exempt() {
    let report = run("wallclock", &["no-wallclock-in-logic"]);
    let msgs = messages(&report);
    assert_eq!(report.findings.len(), 1, "{msgs:?}");
    assert!(report.findings[0].file.ends_with("pos.rs"));
    assert_eq!(report.findings[0].rule, "no-wallclock-in-logic");
    assert_eq!(report.waivers_used, 1);
}

#[test]
fn raw_threads_pos_neg_waived() {
    let report = run("threads", &["no-raw-threads"]);
    let msgs = messages(&report);
    assert_eq!(report.findings.len(), 1, "{msgs:?}");
    assert!(report.findings[0].file.ends_with("pos.rs"));
    assert!(msgs[0].contains("std::thread"), "{msgs:?}");
    assert_eq!(report.waivers_used, 1);
}

#[test]
fn fs_confinement_pos_neg_waived_and_backend_exempt() {
    let report = run("fs-confinement", &["fs-confinement"]);
    let msgs = messages(&report);
    assert_eq!(report.findings.len(), 2, "{msgs:?}");
    assert!(report.findings.iter().all(|f| f.file.ends_with("pos.rs")));
    assert!(msgs.iter().any(|m| m.contains("std::fs")), "{msgs:?}");
    assert!(
        msgs.iter().any(|m| m.contains("direct file handle")),
        "{msgs:?}"
    );
    // waived.rs was suppressed; wal/src/file.rs and test code are exempt.
    assert_eq!(report.waivers_used, 1);
}

#[test]
fn panic_surface_counts_match_a_correct_ratchet() {
    let report = run("panic-ok", &["panic-surface"]);
    let msgs = messages(&report);
    assert!(report.findings.is_empty(), "{msgs:?}");
    // Two live sites; the waived expect and the test-region unwrap are not
    // counted.
    assert_eq!(report.panic_counts.get("scope-app"), Some(&2));
    assert_eq!(report.waivers_used, 1);
}

#[test]
fn panic_surface_flags_growth_and_malformed_rows() {
    let report = run("panic-grew", &["panic-surface"]);
    let msgs = messages(&report);
    assert_eq!(report.findings.len(), 2, "{msgs:?}");
    assert!(msgs
        .iter()
        .any(|m| m.contains("grew: 2 sites vs ratchet 1")));
    assert!(msgs.iter().any(|m| m.contains("malformed ratchet line")));
}

#[test]
fn panic_surface_flags_stale_rows_and_ghost_crates() {
    let report = run("panic-stale", &["panic-surface"]);
    let msgs = messages(&report);
    assert_eq!(report.findings.len(), 2, "{msgs:?}");
    assert!(msgs
        .iter()
        .any(|m| m.contains("stale: 2 sites vs committed 5")));
    assert!(msgs.iter().any(|m| m.contains("unknown crate scope-ghost")));
}

#[test]
fn panic_surface_requires_a_committed_ratchet() {
    // The unordered fixture has no panic-ratchet.txt at its root.
    let report = run("unordered", &["panic-surface"]);
    let msgs = messages(&report);
    assert_eq!(report.findings.len(), 1, "{msgs:?}");
    assert!(msgs[0].contains("missing ratchet file"), "{msgs:?}");
}

#[test]
fn oracle_discipline_pos_neg_waived() {
    let report = run("oracle", &["oracle-discipline"]);
    let msgs = messages(&report);
    assert_eq!(report.findings.len(), 2, "{msgs:?}");
    assert!(
        msgs.iter().any(|m| m.contains("unused_reference")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("forgotten_helper")),
        "{msgs:?}"
    );
    // pinned_helper (exercised) and legacy_reference (waived) are absent.
    assert!(
        !msgs.iter().any(|m| m.contains("pinned_helper")),
        "{msgs:?}"
    );
    assert!(
        !msgs.iter().any(|m| m.contains("legacy_reference")),
        "{msgs:?}"
    );
    assert_eq!(report.waivers_used, 1);
}

#[test]
fn shim_surface_pos_neg_waived() {
    let report = run("shim", &["shim-surface"]);
    let msgs = messages(&report);
    assert_eq!(report.findings.len(), 2, "{msgs:?}");
    assert!(report.findings.iter().all(|f| f.file.ends_with("pos.rs")));
    assert!(msgs.iter().any(|m| m.contains("Missing")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("AlsoMissing")), "{msgs:?}");
    assert_eq!(report.waivers_used, 1);
}

#[test]
fn bench_schema_checks_keys_types_and_parse() {
    let report = run("bench-schema", &["bench-schema"]);
    let msgs = messages(&report);
    assert_eq!(report.findings.len(), 5, "{msgs:?}");
    let bad_keys = report
        .findings
        .iter()
        .filter(|f| f.file == "BENCH_11.json")
        .count();
    assert_eq!(bad_keys, 3, "{msgs:?}");
    assert!(msgs
        .iter()
        .any(|m| m.contains("missing required key \"issue\"")));
    assert!(msgs.iter().any(|m| m.contains("\"quick\" must be a bool")));
    assert!(msgs
        .iter()
        .any(|m| m.contains("\"config\" must be an object")));
    assert!(
        msgs.iter()
            .any(|m| m.contains("BENCH_12.json") && m.contains("not valid JSON")),
        "{msgs:?}"
    );
    // The filename number is the artifact's identity.
    assert!(
        msgs.iter().any(|m| m.contains("BENCH_13.json")
            && m.contains("filename number \"13\" does not match \"issue\": 99")),
        "{msgs:?}"
    );
    // BENCH_10.json is well-formed and produces nothing.
    assert!(!msgs.iter().any(|m| m.contains("BENCH_10")), "{msgs:?}");
}

#[test]
fn ci_floor_matches_static_recount() {
    let ok = run("ci-floor-ok", &["ci-floor-consistency"]);
    assert!(ok.findings.is_empty(), "{:?}", messages(&ok));

    let drift = run("ci-floor-drift", &["ci-floor-consistency"]);
    let msgs = messages(&drift);
    assert_eq!(drift.findings.len(), 1, "{msgs:?}");
    assert!(msgs[0].contains("min_tests=7"), "{msgs:?}");
    assert!(msgs[0].contains("is 3"), "{msgs:?}");
    assert_eq!(drift.findings[0].file, "ci.sh");
    assert_eq!(drift.findings[0].line, 3);
}

#[test]
fn waiver_budget_flags_unknown_reasonless_and_unused() {
    let report = run(
        "waiver-misuse",
        &["no-unordered-iteration", "waiver-budget"],
    );
    let msgs = messages(&report);
    assert_eq!(report.findings.len(), 3, "{msgs:?}");
    assert!(report.findings.iter().all(|f| f.rule == "waiver-budget"));
    assert!(
        msgs.iter().any(|m| m.contains("unknown rule 'not-a-rule'")),
        "{msgs:?}"
    );
    assert!(msgs.iter().any(|m| m.contains("has no reason")), "{msgs:?}");
    assert!(
        msgs.iter().any(|m| m.contains("suppresses nothing")),
        "{msgs:?}"
    );
    // The reason-less waiver still suppressed its iteration finding.
    assert!(!msgs.iter().any(|m| m.contains("hash-ordered")), "{msgs:?}");
    assert_eq!(report.waivers_used, 1);
    assert_eq!(report.waivers_total, 3);
}

#[test]
fn waiver_budget_caps_total_waivers() {
    let report = run(
        "waiver-overbudget",
        &["no-unordered-iteration", "waiver-budget"],
    );
    let msgs = messages(&report);
    assert_eq!(report.findings.len(), 1, "{msgs:?}");
    assert_eq!(report.findings[0].rule, "waiver-budget");
    assert!(
        msgs[0].contains("11 inline waivers exceed the budget of 10"),
        "{msgs:?}"
    );
    // All eleven waivers are legitimate individually: each suppressed a site.
    assert_eq!(report.waivers_used, 11);
}

#[test]
fn rule_filtering_only_runs_requested_rules() {
    // The threads fixture trips no-raw-threads, but an unrelated rule
    // selection must not surface it.
    let report = run("threads", &["no-wallclock-in-logic"]);
    assert!(report.findings.is_empty(), "{:?}", messages(&report));
}
