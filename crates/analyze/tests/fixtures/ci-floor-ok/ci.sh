#!/usr/bin/env bash
set -euo pipefail
min_tests=3
echo "fixture ci"
