pub fn noop() {}
