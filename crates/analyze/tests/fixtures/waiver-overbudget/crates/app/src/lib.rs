//! Fixture: eleven legitimate waivers, one over the budget of ten.

use std::collections::HashMap;

pub fn s0(m: &HashMap<u32, u32>) -> u32 {
    let mut t = 0;
    // scope-analyze: allow(no-unordered-iteration) — fixture site 0
    for (_k, v) in m {
        t += v;
    }
    t
}

pub fn s1(m: &HashMap<u32, u32>) -> u32 {
    let mut t = 0;
    // scope-analyze: allow(no-unordered-iteration) — fixture site 1
    for (_k, v) in m {
        t += v;
    }
    t
}

pub fn s2(m: &HashMap<u32, u32>) -> u32 {
    let mut t = 0;
    // scope-analyze: allow(no-unordered-iteration) — fixture site 2
    for (_k, v) in m {
        t += v;
    }
    t
}

pub fn s3(m: &HashMap<u32, u32>) -> u32 {
    let mut t = 0;
    // scope-analyze: allow(no-unordered-iteration) — fixture site 3
    for (_k, v) in m {
        t += v;
    }
    t
}

pub fn s4(m: &HashMap<u32, u32>) -> u32 {
    let mut t = 0;
    // scope-analyze: allow(no-unordered-iteration) — fixture site 4
    for (_k, v) in m {
        t += v;
    }
    t
}

pub fn s5(m: &HashMap<u32, u32>) -> u32 {
    let mut t = 0;
    // scope-analyze: allow(no-unordered-iteration) — fixture site 5
    for (_k, v) in m {
        t += v;
    }
    t
}

pub fn s6(m: &HashMap<u32, u32>) -> u32 {
    let mut t = 0;
    // scope-analyze: allow(no-unordered-iteration) — fixture site 6
    for (_k, v) in m {
        t += v;
    }
    t
}

pub fn s7(m: &HashMap<u32, u32>) -> u32 {
    let mut t = 0;
    // scope-analyze: allow(no-unordered-iteration) — fixture site 7
    for (_k, v) in m {
        t += v;
    }
    t
}

pub fn s8(m: &HashMap<u32, u32>) -> u32 {
    let mut t = 0;
    // scope-analyze: allow(no-unordered-iteration) — fixture site 8
    for (_k, v) in m {
        t += v;
    }
    t
}

pub fn s9(m: &HashMap<u32, u32>) -> u32 {
    let mut t = 0;
    // scope-analyze: allow(no-unordered-iteration) — fixture site 9
    for (_k, v) in m {
        t += v;
    }
    t
}

pub fn s10(m: &HashMap<u32, u32>) -> u32 {
    let mut t = 0;
    // scope-analyze: allow(no-unordered-iteration) — fixture site 10
    for (_k, v) in m {
        t += v;
    }
    t
}
