//! Waived fixture: an acknowledged filesystem touch.

pub fn emergency_dump(bytes: &[u8]) {
    // scope-analyze: allow(fs-confinement) — fixture: crash-dump escape hatch
    let _ = std::fs::write("dump.bin", bytes);
}
