//! Positive fixture: filesystem access in library logic.

pub fn sneak_write(bytes: &[u8]) {
    let _ = std::fs::write("out.bin", bytes);
}

pub fn sneak_open() {
    let _ = OpenOptions::new().read(true).open("out.bin");
}
