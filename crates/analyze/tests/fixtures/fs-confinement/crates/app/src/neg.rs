//! Negative fixture: tests may touch the filesystem, and idents that
//! merely contain "File" are not handles.

pub struct FileCatalog;

impl FileCatalog {
    pub fn describe() -> &'static str {
        "a catalog, not a handle"
    }
}

pub fn logic() -> &'static str {
    FileCatalog::describe()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_use_the_real_fs() {
        let dir = std::env::temp_dir();
        let _ = std::fs::read_dir(dir);
    }
}
