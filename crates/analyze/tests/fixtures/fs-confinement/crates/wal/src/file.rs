//! The file backend itself is the one place durability may touch disk.

pub fn backend_write(bytes: &[u8]) {
    let _ = std::fs::write("segment-0.wal", bytes);
    let _ = File::create("segment-1.wal");
}
