//! Bench targets are measurement harnesses: wall-clock allowed.

pub fn measure() -> std::time::Duration {
    let t = std::time::Instant::now();
    t.elapsed()
}
