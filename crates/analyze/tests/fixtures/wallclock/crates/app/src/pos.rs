//! Positive fixture: wall-clock reads in library logic.

pub fn stamp() -> u64 {
    let t = std::time::Instant::now();
    let _ = t;
    0
}
