//! Waived fixture: an acknowledged wall-clock read.

pub fn boot_stamp() -> u64 {
    // scope-analyze: allow(no-wallclock-in-logic) — fixture: startup banner only
    let t = std::time::SystemTime::now();
    let _ = t;
    0
}
