//! Negative fixture: test code may time things.

pub fn logic(x: u64) -> u64 {
    x + 1
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_inside_tests_is_fine() {
        let t = std::time::Instant::now();
        assert!(super::logic(1) == 2);
        let _ = t.elapsed();
    }
}
