//! Negative fixture: every import names real shim surface.

use mockdep::sub::DEPTH;
use mockdep::{mock, seeded, Sampler};

pub fn use_all() -> u64 {
    mock!();
    let s = Sampler {
        state: DEPTH as u64,
    };
    seeded(s.state)
}
