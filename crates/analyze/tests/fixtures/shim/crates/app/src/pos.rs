//! Positive fixture: imports naming surface the shim never exported.

use mockdep::Missing;
use mockdep::{AlsoMissing, Sampler};

pub fn broken(_a: Missing, _b: AlsoMissing) -> Sampler {
    Sampler { state: 0 }
}
