//! Waived fixture: surface that is promised but not yet vendored.

// scope-analyze: allow(shim-surface) — fixture: lands with the next shim sync
use mockdep::FutureThing;

pub fn soon(_x: FutureThing) {}
