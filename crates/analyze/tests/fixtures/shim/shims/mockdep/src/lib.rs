//! Fixture shim: the surface `use mockdep::…` may legally touch.

pub struct Sampler {
    pub state: u64,
}

pub fn seeded(n: u64) -> u64 {
    n ^ 0x9E37_79B9_7F4A_7C15
}

pub mod sub {
    pub const DEPTH: u32 = 1;
}

#[macro_export]
macro_rules! mock {
    () => {};
}
