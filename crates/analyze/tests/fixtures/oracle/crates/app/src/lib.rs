//! Fixture: one pinned oracle, one forgotten oracle.

pub mod reference;

pub fn used_reference(x: f64) -> f64 {
    x * 2.0
}

pub fn unused_reference(x: f64) -> f64 {
    x * 3.0
}

#[cfg(test)]
mod tests {
    #[test]
    fn pins_the_used_oracle() {
        assert_eq!(super::used_reference(2.0), 4.0);
        assert_eq!(crate::reference::pinned_helper(), 1);
    }
}
