//! Fixture reference module: public fns here are oracles.

pub fn pinned_helper() -> u32 {
    1
}

pub fn forgotten_helper() -> u32 {
    2
}

fn internal_detail() -> u32 {
    3
}
