//! Waived fixture: an oracle whose differential pin is deferred.

// scope-analyze: allow(oracle-discipline) — fixture: pin lands with the next PR
pub fn legacy_reference(x: f64) -> f64 {
    x
}
