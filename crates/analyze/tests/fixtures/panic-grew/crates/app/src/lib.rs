//! Fixture: two live panic sites, one waived site, one test-only site.

pub fn first(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn second(v: Result<u32, String>) -> u32 {
    v.unwrap()
}

pub fn third(v: Option<u32>) -> u32 {
    // scope-analyze: allow(panic-surface) — fixture: boot-time invariant
    v.expect("fixture")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        assert_eq!(super::first(Some(1)), 1);
        let x: Option<u32> = Some(2);
        x.unwrap();
    }
}
