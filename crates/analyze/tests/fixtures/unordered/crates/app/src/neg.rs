//! Negative fixture: ordered iteration and pure lookups are fine.

use std::collections::{BTreeMap, HashMap};

pub fn ordered_totals(m: &BTreeMap<String, f64>) -> f64 {
    let mut sum = 0.0;
    for (_k, v) in m {
        sum += v;
    }
    sum
}

pub fn lookup(m: &HashMap<String, f64>, key: &str) -> f64 {
    m.get(key).copied().unwrap_or(0.0)
}
