//! Positive fixture: hash-ordered iteration in result-producing code.

use std::collections::HashMap;

pub fn totals(m: &HashMap<String, f64>) -> f64 {
    let mut sum = 0.0;
    for (_k, v) in m {
        sum += v;
    }
    sum
}

pub fn key_list(m: &HashMap<String, f64>) -> Vec<String> {
    m.keys().cloned().collect()
}
