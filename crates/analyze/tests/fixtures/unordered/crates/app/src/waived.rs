//! Waived fixture: an order-independent reduction with an inline waiver.

use std::collections::HashMap;

pub fn merge_counts(m: &HashMap<u64, u64>) -> u64 {
    let mut total = 0;
    // scope-analyze: allow(no-unordered-iteration) — integer sum, order-independent
    for (_k, v) in m {
        total += v;
    }
    total
}
