#!/usr/bin/env bash
set -euo pipefail
min_tests=7
echo "fixture ci"
