//! Fixture: three statically countable test cases (the proptest case
//! carries its `#[test]` meta through the shim's macro, counted once).

pub fn id(x: u32) -> u32 {
    x
}

#[cfg(test)]
mod tests {
    #[test]
    fn a() {
        assert_eq!(super::id(1), 1);
    }

    #[test]
    fn b() {
        assert_eq!(super::id(2), 2);
    }

    proptest! {
        #[test]
        fn p(x in 0u32..9) {
            assert_eq!(super::id(x), x);
        }
    }
}
