//! Fixture: the three ways a waiver can rot.

use std::collections::HashMap;

// scope-analyze: allow(not-a-rule) — the rule name is wrong
pub fn a() {}

pub fn b(m: &HashMap<u32, u32>) -> u32 {
    let mut t = 0;
    // scope-analyze: allow(no-unordered-iteration)
    for (_k, v) in m {
        t += v;
    }
    t
}

// scope-analyze: allow(no-unordered-iteration) — nothing on the next line iterates
pub fn c() {}
