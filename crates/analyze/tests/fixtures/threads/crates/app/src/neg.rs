//! Negative fixture: threads inside test code are tolerated.

pub fn logic(x: u64) -> u64 {
    x * 2
}

#[cfg(test)]
mod tests {
    #[test]
    fn spawning_in_tests_is_fine() {
        let h = std::thread::spawn(|| super::logic(2));
        assert_eq!(h.join().unwrap(), 4);
    }
}
