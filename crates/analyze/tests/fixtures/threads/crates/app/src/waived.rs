//! Waived fixture: an acknowledged raw spawn.

pub fn watchdog() {
    // scope-analyze: allow(no-raw-threads) — fixture: watchdog never touches results
    let h = std::thread::spawn(|| ());
    let _ = h.join();
}
