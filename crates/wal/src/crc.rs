//! CRC-32 (IEEE 802.3 polynomial), implemented from scratch.
//!
//! The journal frames every record and checkpoint with this checksum so
//! torn writes and bit flips are detected at read time. Table-driven
//! (slicing-by-8), reflected form with the standard `0xEDB88320`
//! polynomial — the same parameters as zlib's `crc32`, so the well-known
//! check value `crc32(b"123456789") == 0xCBF4_3926` pins the
//! implementation.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Slicing-by-8 lookup tables, built at compile time. `TABLES[0]` is
/// the classic byte-indexed table; `TABLES[k][b]` is the contribution of
/// byte value `b` sitting `k` positions deep in an 8-byte chunk, so
/// eight bytes fold into the state with eight independent lookups
/// instead of an eight-step dependency chain.
static TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1usize;
    while k < 8 {
        let mut i = 0usize;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

/// CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    update(0xFFFF_FFFF, bytes) ^ 0xFFFF_FFFF
}

/// Fold `bytes` into a running (pre-inverted) CRC state: 8-byte chunks
/// through the sliced tables, the remainder byte-at-a-time.
fn update(mut state: u32, bytes: &[u8]) -> u32 {
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = state ^ u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        state = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][chunk[4] as usize]
            ^ TABLES[2][chunk[5] as usize]
            ^ TABLES[1][chunk[6] as usize]
            ^ TABLES[0][chunk[7] as usize];
    }
    for &b in chunks.remainder() {
        state = (state >> 8) ^ TABLES[0][((state ^ u32::from(b)) & 0xFF) as usize];
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_standard_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input_and_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
    }

    /// Bit-at-a-time reference, no tables.
    fn crc32_bitwise(bytes: &[u8]) -> u32 {
        let mut state = 0xFFFF_FFFFu32;
        for &b in bytes {
            state ^= u32::from(b);
            for _ in 0..8 {
                state = if state & 1 != 0 {
                    (state >> 1) ^ POLY
                } else {
                    state >> 1
                };
            }
        }
        state ^ 0xFFFF_FFFF
    }

    #[test]
    fn sliced_path_matches_the_bitwise_reference_at_every_alignment() {
        let data: Vec<u8> = (0..1024u32)
            .map(|i| (i.wrapping_mul(167) >> 3) as u8)
            .collect();
        for len in (0..64).chain([255, 256, 257, 1000, 1024]) {
            assert_eq!(
                crc32(&data[..len]),
                crc32_bitwise(&data[..len]),
                "len {len}"
            );
        }
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let base: Vec<u8> = (0u8..=255).collect();
        let reference = crc32(&base);
        for byte in [0usize, 17, 255] {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "byte {byte} bit {bit}");
            }
        }
    }
}
