//! Frame and payload encoding: the journal's on-disk record format,
//! which doubles as the wire format for fleet-scale intake.
//!
//! # Record framing
//!
//! Every journal record is one self-checking frame:
//!
//! ```text
//! len: u32 LE      bytes after the 8-byte (len, crc) header
//! crc: u32 LE      CRC-32 of everything after the header
//! kind: u8         RECORD_BATCH = 1 | RECORD_EPOCH = 2
//! seq: u64 LE      intake sequence number of the delivery
//! payload          kind-specific body
//! ```
//!
//! Batch records carry a delivered [`EventColumns`] batch. Epoch records
//! (`RECORD_EPOCH`, payload = `day: u32 LE`) are **boundary markers**: a
//! journaled engine appends one at each epoch boundary, and recovery
//! cuts its replay tail at the first marker it meets — replaying
//! deliveries past an epoch boundary without re-running the boundary's
//! engine effects (heat decay, re-solve) would leave the recovered
//! engine off the never-crashed trajectory. Everything at and past the
//! cut is discarded and re-delivered instead.
//!
//! A reader can always either validate a frame completely or classify
//! the failure: not enough bytes for a header, an implausible length, a
//! checksum mismatch, an unknown kind, or an undecodable payload — each
//! a distinct [`CorruptKind`](crate::CorruptKind).
//!
//! # Batch payload (the wire format)
//!
//! An [`EventColumns`] batch is encoded column-wise, little-endian:
//!
//! ```text
//! n: u32 LE
//! days:       n × u32
//! periods:    n × u32
//! object_ids: n × u32
//! kinds:      n × u8    (0 = Read, 1 = Write)
//! volumes:    n × u64   (f64 bit patterns, so NaN corruption survives
//!                        the round trip for the validating intake to
//!                        quarantine)
//! ```

use crate::crc::crc32;
use crate::error::{CorruptKind, WalError};
use scope_cloudsim::{AccessKind, EventColumns};

/// Record kind: one delivered `EventColumns` batch.
pub const RECORD_BATCH: u8 = 1;

/// Record kind: an epoch-boundary marker (see the module docs).
pub const RECORD_EPOCH: u8 = 2;

/// Frame header size: `len` + `crc`.
pub const FRAME_HEADER_LEN: usize = 8;

/// Body bytes before the payload: `kind` + `seq`.
pub const FRAME_BODY_MIN: usize = 9;

/// Sanity cap on a single frame's body, far above any real batch — a
/// corrupted length field almost always lands outside `[FRAME_BODY_MIN,
/// MAX_FRAME_BODY]` or past the segment end, so garbage lengths are
/// caught before the checksum is even consulted.
pub const MAX_FRAME_BODY: u32 = 64 << 20;

/// One decoded journal record.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Intake sequence number the batch was delivered under (for epoch
    /// markers: the caller's epoch ordinal).
    pub seq: u64,
    /// The kind-specific payload.
    pub payload: RecordPayload,
}

/// A record's kind-specific payload.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordPayload {
    /// A delivered batch.
    Batch(EventColumns),
    /// An epoch-boundary marker: the engine decayed heat to `day` and
    /// re-solved here. Recovery cuts its replay tail at the first one.
    Epoch {
        /// Day the epoch advanced the engine to.
        day: u32,
    },
}

impl Record {
    /// The delivered batch, when this is a batch record.
    pub fn batch(&self) -> Option<&EventColumns> {
        match &self.payload {
            RecordPayload::Batch(columns) => Some(columns),
            RecordPayload::Epoch { .. } => None,
        }
    }
}

fn encode_frame(kind: u8, seq: u64, payload: &[u8]) -> Vec<u8> {
    let body_len = FRAME_BODY_MIN + payload.len();
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + body_len);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.extend_from_slice(&[0, 0, 0, 0]); // crc placeholder
    out.push(kind);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out[FRAME_HEADER_LEN..]);
    out[4..8].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Encode a batch delivery as one framed record.
pub fn encode_record(seq: u64, columns: &EventColumns) -> Vec<u8> {
    encode_frame(RECORD_BATCH, seq, &encode_columns(columns))
}

/// Encode an epoch-boundary marker as one framed record.
pub fn encode_epoch_record(seq: u64, day: u32) -> Vec<u8> {
    encode_frame(RECORD_EPOCH, seq, &day.to_le_bytes())
}

/// Outcome of decoding the frame starting at `offset` in `bytes`.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameOutcome {
    /// A valid record; `next` is the offset of the following frame.
    Valid {
        /// The decoded record.
        record: Record,
        /// Offset of the next frame.
        next: usize,
    },
    /// The frame's declared span extends past the end of `bytes` (or
    /// there are not even enough bytes for a header). At the tail of the
    /// last segment this is a torn write; anywhere else it is corruption.
    Overrun {
        /// What made the span implausible.
        kind: CorruptKind,
    },
    /// The frame lies fully inside `bytes` but fails validation.
    Invalid {
        /// What failed.
        kind: CorruptKind,
    },
}

/// Decode the frame at `offset`. `bytes[offset..]` must be non-empty.
pub fn decode_frame(bytes: &[u8], offset: usize) -> FrameOutcome {
    let remaining = bytes.len().saturating_sub(offset);
    if remaining < FRAME_HEADER_LEN {
        return FrameOutcome::Overrun {
            kind: CorruptKind::Header,
        };
    }
    let len = read_u32(bytes, offset);
    if len < FRAME_BODY_MIN as u32 || len > MAX_FRAME_BODY {
        return FrameOutcome::Overrun {
            kind: CorruptKind::Length,
        };
    }
    let body_len = len as usize;
    if remaining - FRAME_HEADER_LEN < body_len {
        return FrameOutcome::Overrun {
            kind: CorruptKind::Length,
        };
    }
    let crc = read_u32(bytes, offset + 4);
    let body = &bytes[offset + FRAME_HEADER_LEN..offset + FRAME_HEADER_LEN + body_len];
    if crc32(body) != crc {
        return FrameOutcome::Invalid {
            kind: CorruptKind::Checksum,
        };
    }
    let seq = read_u64(body, 1);
    let next = offset + FRAME_HEADER_LEN + body_len;
    let payload = &body[FRAME_BODY_MIN..];
    match body[0] {
        RECORD_BATCH => match decode_columns(payload) {
            Some(columns) => FrameOutcome::Valid {
                record: Record {
                    seq,
                    payload: RecordPayload::Batch(columns),
                },
                next,
            },
            None => FrameOutcome::Invalid {
                kind: CorruptKind::Payload,
            },
        },
        RECORD_EPOCH => {
            if payload.len() != 4 {
                return FrameOutcome::Invalid {
                    kind: CorruptKind::Payload,
                };
            }
            FrameOutcome::Valid {
                record: Record {
                    seq,
                    payload: RecordPayload::Epoch {
                        day: read_u32(payload, 0),
                    },
                },
                next,
            }
        }
        _ => FrameOutcome::Invalid {
            kind: CorruptKind::Kind,
        },
    }
}

/// Encode an `EventColumns` batch column-wise (see the module docs).
pub fn encode_columns(columns: &EventColumns) -> Vec<u8> {
    let n = columns.len();
    let mut out = Vec::with_capacity(4 + n * 21);
    out.extend_from_slice(&(n as u32).to_le_bytes());
    for &d in &columns.days {
        out.extend_from_slice(&d.to_le_bytes());
    }
    for &p in &columns.periods {
        out.extend_from_slice(&p.to_le_bytes());
    }
    for &id in &columns.object_ids {
        out.extend_from_slice(&id.to_le_bytes());
    }
    for &k in &columns.kinds {
        out.push(match k {
            AccessKind::Read => 0,
            AccessKind::Write => 1,
        });
    }
    for &v in &columns.volumes {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out
}

/// Decode an `EventColumns` batch; `None` when `bytes` is not exactly
/// one well-formed column block.
pub fn decode_columns(bytes: &[u8]) -> Option<EventColumns> {
    if bytes.len() < 4 {
        return None;
    }
    let n = read_u32(bytes, 0) as usize;
    let expect = 4usize
        .checked_add(n.checked_mul(21)?)
        .filter(|&e| e == bytes.len())?;
    let _ = expect;
    let mut cols = EventColumns::default();
    let mut o = 4;
    for _ in 0..n {
        cols.days.push(read_u32(bytes, o));
        o += 4;
    }
    for _ in 0..n {
        cols.periods.push(read_u32(bytes, o));
        o += 4;
    }
    for _ in 0..n {
        cols.object_ids.push(read_u32(bytes, o));
        o += 4;
    }
    for _ in 0..n {
        cols.kinds.push(match bytes[o] {
            0 => AccessKind::Read,
            1 => AccessKind::Write,
            _ => return None,
        });
        o += 1;
    }
    for _ in 0..n {
        cols.volumes.push(f64::from_bits(read_u64(bytes, o)));
        o += 8;
    }
    Some(cols)
}

// ---------------------------------------------------------------------------
// Checkpoint frame
// ---------------------------------------------------------------------------

/// Magic prefix of a checkpoint object.
pub const CHECKPOINT_MAGIC: &[u8; 4] = b"WCKP";

/// Checkpoint frame version.
pub const CHECKPOINT_FRAME_VERSION: u32 = 1;

/// The journal's wrapper around an engine checkpoint: enough metadata to
/// resume the journal (which segments to replay, how many deliveries the
/// snapshot covers) plus an opaque caller progress `marker`, all under
/// one trailing CRC.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointFrame {
    /// First segment ordinal whose records are *not* covered by this
    /// snapshot (replay starts here).
    pub replay_from: u64,
    /// Deliveries appended to the journal before this snapshot was
    /// taken — all of them are reflected in `state`.
    pub deliveries: u64,
    /// Opaque caller progress marker (the serving harnesses store their
    /// position in the replay schedule, so recovery can tell a
    /// checkpoint taken *after* an epoch step from one taken before it).
    pub marker: u64,
    /// The engine checkpoint bytes.
    pub state: Vec<u8>,
}

impl CheckpointFrame {
    /// Serialize the frame: magic, version, metadata, state, CRC.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 4 + 8 * 4 + self.state.len() + 4);
        out.extend_from_slice(CHECKPOINT_MAGIC);
        out.extend_from_slice(&CHECKPOINT_FRAME_VERSION.to_le_bytes());
        out.extend_from_slice(&self.replay_from.to_le_bytes());
        out.extend_from_slice(&self.deliveries.to_le_bytes());
        out.extend_from_slice(&self.marker.to_le_bytes());
        out.extend_from_slice(&(self.state.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.state);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parse and validate a frame read back from storage.
    pub fn decode(object: &str, bytes: &[u8]) -> Result<Self, WalError> {
        let reject = |reason: &str| WalError::Checkpoint {
            object: object.to_string(),
            reason: reason.to_string(),
        };
        const FIXED: usize = 4 + 4 + 8 * 4; // magic + version + 4 metadata words
        if bytes.len() < FIXED + 4 {
            return Err(reject("shorter than a checkpoint frame"));
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 4);
        if crc32(body) != read_u32(trailer, 0) {
            return Err(reject("frame checksum mismatch"));
        }
        if &body[0..4] != CHECKPOINT_MAGIC {
            return Err(reject("bad magic"));
        }
        if read_u32(body, 4) != CHECKPOINT_FRAME_VERSION {
            return Err(reject("unsupported frame version"));
        }
        let replay_from = read_u64(body, 8);
        let deliveries = read_u64(body, 16);
        let marker = read_u64(body, 24);
        let state_len = read_u64(body, 32) as usize;
        if body.len() - FIXED != state_len {
            return Err(reject("state length mismatch"));
        }
        Ok(CheckpointFrame {
            replay_from,
            deliveries,
            marker,
            state: body[FIXED..].to_vec(),
        })
    }
}

/// Little-endian `u32` at `o`; callers have bounds-checked the span.
fn read_u32(bytes: &[u8], o: usize) -> u32 {
    let mut le = [0u8; 4];
    le.copy_from_slice(&bytes[o..o + 4]);
    u32::from_le_bytes(le)
}

/// Little-endian `u64` at `o`; callers have bounds-checked the span.
fn read_u64(bytes: &[u8], o: usize) -> u64 {
    let mut le = [0u8; 8];
    le.copy_from_slice(&bytes[o..o + 8]);
    u64::from_le_bytes(le)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(n: usize) -> EventColumns {
        let mut cols = EventColumns::default();
        for i in 0..n {
            let kind = if i % 3 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let volume = match i % 5 {
                0 => f64::NAN,
                1 => -1.25,
                _ => 0.5 + i as f64 * 0.125,
            };
            cols.push_resolved(i as u32 % 90, i as u32 % 7, kind, volume);
        }
        cols
    }

    fn bits(cols: &EventColumns) -> Vec<u64> {
        cols.volumes.iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn columns_round_trip_bit_for_bit_including_nan() {
        for n in [0usize, 1, 7, 100] {
            let cols = batch(n);
            let decoded = decode_columns(&encode_columns(&cols)).unwrap();
            assert_eq!(decoded.days, cols.days);
            assert_eq!(decoded.periods, cols.periods);
            assert_eq!(decoded.object_ids, cols.object_ids);
            assert_eq!(decoded.kinds, cols.kinds);
            assert_eq!(bits(&decoded), bits(&cols));
        }
    }

    #[test]
    fn truncated_or_padded_payloads_are_rejected() {
        let enc = encode_columns(&batch(5));
        assert!(decode_columns(&enc[..enc.len() - 1]).is_none());
        let mut padded = enc.clone();
        padded.push(0);
        assert!(decode_columns(&padded).is_none());
        assert!(decode_columns(&[]).is_none());
        // A kind byte outside {0, 1} is payload corruption.
        let mut bad_kind = enc;
        bad_kind[4 + 5 * 12] = 7;
        assert!(decode_columns(&bad_kind).is_none());
    }

    #[test]
    fn records_round_trip_and_chain() {
        let a = encode_record(3, &batch(4));
        let b = encode_record(4, &batch(0));
        let mut stream = a.clone();
        stream.extend_from_slice(&b);
        let FrameOutcome::Valid { record, next } = decode_frame(&stream, 0) else {
            panic!("first frame invalid");
        };
        assert_eq!(record.seq, 3);
        assert_eq!(record.batch().unwrap().len(), 4);
        assert_eq!(next, a.len());
        let FrameOutcome::Valid { record, next } = decode_frame(&stream, next) else {
            panic!("second frame invalid");
        };
        assert_eq!(record.seq, 4);
        assert_eq!(record.batch().unwrap().len(), 0);
        assert_eq!(next, stream.len());
    }

    #[test]
    fn epoch_records_round_trip_and_chain_with_batches() {
        let a = encode_record(11, &batch(2));
        let b = encode_epoch_record(5, 42);
        let mut stream = a.clone();
        stream.extend_from_slice(&b);
        let FrameOutcome::Valid { next, .. } = decode_frame(&stream, 0) else {
            panic!("batch frame invalid");
        };
        let FrameOutcome::Valid { record, next } = decode_frame(&stream, next) else {
            panic!("epoch frame invalid");
        };
        assert_eq!(record.seq, 5);
        assert_eq!(record.payload, RecordPayload::Epoch { day: 42 });
        assert!(record.batch().is_none());
        assert_eq!(next, stream.len());
        // Every single-bit flip in an epoch frame is detected too.
        for byte in 0..b.len() {
            for bit in 0..8 {
                let mut bad = b.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    !matches!(decode_frame(&bad, 0), FrameOutcome::Valid { .. }),
                    "flip at byte {byte} bit {bit} decoded as valid"
                );
            }
        }
    }

    #[test]
    fn every_single_bit_flip_in_a_frame_is_detected() {
        let enc = encode_record(9, &batch(3));
        for byte in 0..enc.len() {
            for bit in 0..8 {
                let mut bad = enc.clone();
                bad[byte] ^= 1 << bit;
                match decode_frame(&bad, 0) {
                    FrameOutcome::Valid { record, .. } => {
                        // A flip in the volume columns may still checksum
                        // only if... it cannot: CRC covers the body and the
                        // length field is validated by span. Nothing may
                        // decode as valid.
                        panic!("flip at byte {byte} bit {bit} decoded as {record:?}");
                    }
                    FrameOutcome::Overrun { .. } | FrameOutcome::Invalid { .. } => {}
                }
            }
        }
    }

    #[test]
    fn torn_prefixes_report_overrun() {
        let enc = encode_record(1, &batch(6));
        for cut in 0..enc.len() {
            match decode_frame(&enc[..cut], 0) {
                FrameOutcome::Valid { .. } => panic!("cut {cut} decoded as valid"),
                FrameOutcome::Overrun { .. } => {}
                FrameOutcome::Invalid { kind } => {
                    panic!("cut {cut} classified as interior corruption: {kind}")
                }
            }
        }
    }

    #[test]
    fn checkpoint_frames_round_trip_and_self_check() {
        let frame = CheckpointFrame {
            replay_from: 7,
            deliveries: 1234,
            marker: 99,
            state: (0u8..200).collect(),
        };
        let enc = frame.encode();
        assert_eq!(CheckpointFrame::decode("ckpt", &enc).unwrap(), frame);
        for byte in 0..enc.len() {
            let mut bad = enc.clone();
            bad[byte] ^= 0x10;
            assert!(
                CheckpointFrame::decode("ckpt", &bad).is_err(),
                "flip at byte {byte} accepted"
            );
        }
        assert!(matches!(
            CheckpointFrame::decode("ckpt", &enc[..10]),
            Err(WalError::Checkpoint { .. })
        ));
    }
}
