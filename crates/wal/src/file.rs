//! The real-file [`Storage`] backend.
//!
//! One flat directory, one file per object. This module is the only
//! non-analyzer, non-bench code in the workspace allowed to use
//! `std::fs` (the `fs-confinement` lint pins that), so every durability
//! decision is auditable in one place:
//!
//! * `append` writes through a cached `O_APPEND` handle; bytes are not
//!   durable until `sync` calls `sync_all` on that handle.
//! * `write_atomic` is the classic publish dance: write `name.tmp`,
//!   `sync_all` it, rename over `name`, then `sync_all` the directory so
//!   the rename itself survives a crash.
//! * `truncate` uses `set_len`, re-opening the file read-write.
//!
//! Object names are restricted to a safe flat charset so a corrupted
//! caller can never escape the journal directory.

use crate::error::WalError;
use crate::storage::Storage;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// [`Storage`] over one directory of flat files.
#[derive(Debug)]
pub struct FileStorage {
    root: PathBuf,
    /// Cached append handles; invalidated on delete/truncate/publish.
    handles: BTreeMap<String, File>,
}

fn io_err(object: &str, op: &'static str, e: std::io::Error) -> WalError {
    WalError::Io {
        object: object.to_string(),
        op,
        reason: e.to_string(),
    }
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'.' || b == b'_')
        && !name.starts_with('.')
}

impl FileStorage {
    /// Open (creating if needed) the directory at `root`.
    pub fn create(root: impl Into<PathBuf>) -> Result<Self, WalError> {
        let root = root.into();
        std::fs::create_dir_all(&root)
            .map_err(|e| io_err(&root.to_string_lossy(), "create_dir", e))?;
        Ok(FileStorage {
            root,
            handles: BTreeMap::new(),
        })
    }

    /// The backing directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path(&self, name: &str) -> Result<PathBuf, WalError> {
        if !valid_name(name) {
            return Err(WalError::Io {
                object: name.to_string(),
                op: "name",
                reason: "object names must be flat [A-Za-z0-9._-]".to_string(),
            });
        }
        Ok(self.root.join(name))
    }

    fn sync_dir(&self, object: &str) -> Result<(), WalError> {
        let dir = File::open(&self.root).map_err(|e| io_err(object, "sync_dir", e))?;
        dir.sync_all().map_err(|e| io_err(object, "sync_dir", e))
    }
}

impl Storage for FileStorage {
    fn list(&self) -> Result<Vec<String>, WalError> {
        let mut names = Vec::new();
        let entries = std::fs::read_dir(&self.root).map_err(|e| io_err("<root>", "list", e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("<root>", "list", e))?;
            let is_file = entry
                .file_type()
                .map_err(|e| io_err("<root>", "list", e))?
                .is_file();
            if let (true, Ok(name)) = (is_file, entry.file_name().into_string()) {
                if valid_name(&name) {
                    names.push(name);
                }
            }
        }
        names.sort_unstable();
        Ok(names)
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, WalError> {
        let path = self.path(name)?;
        match std::fs::read(&path) {
            Ok(bytes) => Ok(bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Err(WalError::Missing {
                object: name.to_string(),
            }),
            Err(e) => Err(io_err(name, "read", e)),
        }
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), WalError> {
        let path = self.path(name)?;
        if !self.handles.contains_key(name) {
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .map_err(|e| io_err(name, "append", e))?;
            self.handles.insert(name.to_string(), file);
        }
        match self.handles.get_mut(name) {
            Some(file) => file.write_all(bytes).map_err(|e| io_err(name, "append", e)),
            None => Err(WalError::Io {
                object: name.to_string(),
                op: "append",
                reason: "append handle vanished".to_string(),
            }),
        }
    }

    fn sync(&mut self, name: &str) -> Result<(), WalError> {
        // Appending opens (and creates) the file, so syncing an object we
        // never appended to creates an empty durable object — the same
        // semantics as the in-memory backend's no-op.
        if !self.handles.contains_key(name) {
            self.append(name, &[])?;
        }
        match self.handles.get(name) {
            Some(file) => file.sync_all().map_err(|e| io_err(name, "sync", e)),
            None => Ok(()),
        }
    }

    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> Result<(), WalError> {
        let path = self.path(name)?;
        let tmp_name = format!("{name}.tmp");
        let tmp = self.path(&tmp_name)?;
        self.handles.remove(name);
        let mut file = File::create(&tmp).map_err(|e| io_err(name, "write_atomic", e))?;
        file.write_all(bytes)
            .map_err(|e| io_err(name, "write_atomic", e))?;
        file.sync_all()
            .map_err(|e| io_err(name, "write_atomic", e))?;
        drop(file);
        std::fs::rename(&tmp, &path).map_err(|e| io_err(name, "write_atomic", e))?;
        self.sync_dir(name)
    }

    fn delete(&mut self, name: &str) -> Result<(), WalError> {
        let path = self.path(name)?;
        self.handles.remove(name);
        match std::fs::remove_file(&path) {
            Ok(()) => self.sync_dir(name),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Err(WalError::Missing {
                object: name.to_string(),
            }),
            Err(e) => Err(io_err(name, "delete", e)),
        }
    }

    fn truncate(&mut self, name: &str, len: u64) -> Result<(), WalError> {
        let path = self.path(name)?;
        self.handles.remove(name);
        let file = match OpenOptions::new().write(true).open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(WalError::Missing {
                    object: name.to_string(),
                })
            }
            Err(e) => return Err(io_err(name, "truncate", e)),
        };
        file.set_len(len).map_err(|e| io_err(name, "truncate", e))?;
        file.sync_all().map_err(|e| io_err(name, "truncate", e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fresh scratch directory per test, rooted in the system temp dir
    /// and keyed by test name + pid so parallel runs cannot collide.
    fn scratch(test: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("scope-wal-{test}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_sync_read_round_trip() {
        let mut s = FileStorage::create(scratch("roundtrip")).unwrap();
        s.append("wal-0.seg", b"hello ").unwrap();
        s.append("wal-0.seg", b"world").unwrap();
        s.sync("wal-0.seg").unwrap();
        assert_eq!(s.read("wal-0.seg").unwrap(), b"hello world");
        assert_eq!(s.list().unwrap(), vec!["wal-0.seg".to_string()]);
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_tmp() {
        let mut s = FileStorage::create(scratch("atomic")).unwrap();
        s.append("ckpt", b"old").unwrap();
        s.sync("ckpt").unwrap();
        s.write_atomic("ckpt", b"published").unwrap();
        assert_eq!(s.read("ckpt").unwrap(), b"published");
        assert_eq!(s.list().unwrap(), vec!["ckpt".to_string()]);
        // Appends after a publish go to the new contents.
        s.append("ckpt", b"+tail").unwrap();
        s.sync("ckpt").unwrap();
        assert_eq!(s.read("ckpt").unwrap(), b"published+tail");
    }

    #[test]
    fn truncate_delete_and_missing() {
        let mut s = FileStorage::create(scratch("trunc")).unwrap();
        s.append("a", b"0123456789").unwrap();
        s.sync("a").unwrap();
        s.truncate("a", 4).unwrap();
        assert_eq!(s.read("a").unwrap(), b"0123");
        s.append("a", b"XY").unwrap();
        s.sync("a").unwrap();
        assert_eq!(s.read("a").unwrap(), b"0123XY");
        s.delete("a").unwrap();
        assert!(matches!(s.read("a"), Err(WalError::Missing { .. })));
        assert!(matches!(s.delete("a"), Err(WalError::Missing { .. })));
        assert!(matches!(s.truncate("a", 0), Err(WalError::Missing { .. })));
    }

    #[test]
    fn unsafe_object_names_are_rejected() {
        let mut s = FileStorage::create(scratch("names")).unwrap();
        for bad in ["../escape", "a/b", "", ".hidden"] {
            assert!(matches!(
                s.append(bad, b"x"),
                Err(WalError::Io { op: "name", .. })
            ));
        }
    }
}
