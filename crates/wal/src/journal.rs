//! The segmented write-ahead journal and its single recovery protocol.
//!
//! # Layout
//!
//! The journal owns a flat [`Storage`] namespace:
//!
//! * `wal-<ordinal>.seg` — append-only segments of framed records (see
//!   [`crate::record`]). Ordinals are monotonic; the highest ordinal is
//!   the active segment. A new segment starts when the active one
//!   reaches [`JournalConfig::segment_records`] records and at every
//!   checkpoint publish, so segment boundaries align with snapshots.
//! * `ckpt-<ordinal>.ckpt` — checkpoint frames published atomically
//!   (write-temp + rename in the file backend). A checkpoint named
//!   `ordinal` covers every record in segments `< ordinal`; replay after
//!   restoring it starts at segment `ordinal`.
//!
//! # Durability contract
//!
//! Appends are durable only after [`Journal::sync`] (the serving engine
//! syncs at epoch boundaries). Checkpoint publish is atomic and
//! immediately durable. After publishing, the newest
//! [`JournalConfig::keep_checkpoints`] snapshots are retained and every
//! segment older than the oldest retained snapshot's ordinal is retired
//! — so recovery can always walk back past one corrupt checkpoint to the
//! previous one *and still find the segments it needs*.
//!
//! # Recovery
//!
//! [`Journal::recover`] is the one protocol, used by every caller:
//!
//! 1. Walk checkpoints newest → oldest. A checkpoint that fails its
//!    frame CRC — or that the caller-supplied validator rejects (the
//!    serving engine validates its own versioned, checksummed snapshot
//!    format) — is quarantined (deleted and reported) and the walk
//!    continues. If no checkpoint survives, recovery starts from the
//!    empty state, provided segment 0 still exists.
//! 2. Scan segments from the surviving snapshot's `replay_from` ordinal
//!    upward, decoding frames. A torn tail — an invalid frame that runs
//!    to the end of the *last* segment — is truncated away (those bytes
//!    were never acknowledged as durable). An invalid frame anywhere
//!    else is *interior corruption*: the frame is quarantined with its
//!    typed error, the journal is truncated at that point, and every
//!    later segment is dropped — the records lost this way are exactly
//!    the ones the producer must re-deliver, which the recovery report's
//!    delivery count tells it. The scan also **cuts at the first
//!    epoch-boundary marker** ([`crate::record::RECORD_EPOCH`]): replay
//!    must not carry deliveries across a boundary whose engine effects
//!    (decay, re-solve) cannot be replayed from the journal alone, so
//!    the marker and everything after it are truncated away and
//!    re-delivered. A marker already covered by a checkpoint (the
//!    normal, crash-free case) is never scanned.
//! 3. Return the valid tail records for the caller to replay through
//!    its validating intake, plus a [`WalRecoveryReport`] accounting for
//!    every byte that was kept, cut, or quarantined.

use crate::error::WalError;
use crate::record::{
    decode_frame, encode_epoch_record, encode_record, CheckpointFrame, FrameOutcome, Record,
    RecordPayload,
};
use crate::storage::Storage;
use scope_cloudsim::EventColumns;

/// Journal tuning knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalConfig {
    /// Records per segment before rolling to a new one.
    pub segment_records: usize,
    /// Checkpoints retained after a publish (≥ 2, so one corrupt newest
    /// checkpoint can always be walked back past).
    pub keep_checkpoints: usize,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig {
            segment_records: 4096,
            keep_checkpoints: 2,
        }
    }
}

impl JournalConfig {
    fn validate(&self) -> Result<(), WalError> {
        if self.segment_records == 0 {
            return Err(WalError::InvalidConfig(
                "segment_records must be positive".to_string(),
            ));
        }
        if self.keep_checkpoints < 2 {
            return Err(WalError::InvalidConfig(
                "keep_checkpoints must be at least 2 (recovery walks back past \
                 a corrupt newest checkpoint)"
                    .to_string(),
            ));
        }
        Ok(())
    }
}

/// Name of segment `ordinal`.
pub fn segment_name(ordinal: u64) -> String {
    format!("wal-{ordinal:020}.seg")
}

/// Name of checkpoint `ordinal`.
pub fn checkpoint_name(ordinal: u64) -> String {
    format!("ckpt-{ordinal:020}.ckpt")
}

fn parse_name(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    let digits = name.strip_prefix(prefix)?.strip_suffix(suffix)?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Parse a segment object name back to its ordinal.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    parse_name(name, "wal-", ".seg")
}

/// Parse a checkpoint object name back to its ordinal.
pub fn parse_checkpoint_name(name: &str) -> Option<u64> {
    parse_name(name, "ckpt-", ".ckpt")
}

/// One quarantined (corrupt, non-torn) journal frame.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantinedRecord {
    /// Segment object containing the frame.
    pub object: String,
    /// Byte offset of the frame.
    pub offset: u64,
    /// The typed validation failure.
    pub error: WalError,
}

/// Accounting from one [`Journal::recover`] run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WalRecoveryReport {
    /// Ordinal of the checkpoint recovery restored from, if any.
    pub used_checkpoint: Option<u64>,
    /// Checkpoints that failed validation, newest first, with why. Each
    /// was deleted so it never shadows a good older snapshot again.
    pub quarantined_checkpoints: Vec<(String, WalError)>,
    /// Bytes cut from the torn tail of the last segment.
    pub torn_bytes: u64,
    /// Corrupt interior frames (typed), at most one — the scan stops at
    /// the first.
    pub quarantined_records: Vec<QuarantinedRecord>,
    /// Journal bytes dropped after an interior corruption point.
    pub discarded_bytes: u64,
    /// Journal bytes cut at and after the first epoch-boundary marker
    /// (those deliveries are re-delivered after the caller re-runs the
    /// boundary).
    pub epoch_cut_bytes: u64,
    /// Valid records handed back for replay.
    pub replayed_records: u64,
}

/// Everything [`Journal::recover`] hands back.
#[derive(Debug)]
pub struct RecoveredJournal<S: Storage> {
    /// The journal, positioned to continue appending.
    pub journal: Journal<S>,
    /// Engine snapshot from the surviving checkpoint (`None` → start
    /// from the empty/freshly-built state).
    pub state: Option<Vec<u8>>,
    /// The surviving checkpoint's opaque progress marker (0 without one).
    pub marker: u64,
    /// Deliveries covered by the snapshot alone.
    pub covered_deliveries: u64,
    /// Valid tail records to replay, in journal order.
    pub tail: Vec<Record>,
    /// What recovery kept, cut, and quarantined.
    pub report: WalRecoveryReport,
}

/// A segmented, CRC-framed, append-only intake journal over `S`.
#[derive(Debug)]
pub struct Journal<S: Storage> {
    storage: S,
    cfg: JournalConfig,
    /// Ordinal of the active segment.
    active: u64,
    /// Records in the active segment.
    active_records: usize,
    /// Total deliveries ever appended (snapshot-covered + live).
    appended: u64,
}

impl<S: Storage> Journal<S> {
    /// Start a fresh journal. The storage must not already contain
    /// journal objects — recover an existing journal with
    /// [`Journal::recover`] instead.
    pub fn create(storage: S, cfg: JournalConfig) -> Result<Self, WalError> {
        cfg.validate()?;
        let names = storage.list()?;
        if names
            .iter()
            .any(|n| parse_segment_name(n).is_some() || parse_checkpoint_name(n).is_some())
        {
            return Err(WalError::InvalidConfig(
                "storage already holds a journal; use recover".to_string(),
            ));
        }
        Ok(Journal {
            storage,
            cfg,
            active: 0,
            active_records: 0,
            appended: 0,
        })
    }

    /// Total deliveries appended over the journal's lifetime.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Ordinal of the active segment.
    pub fn active_segment(&self) -> u64 {
        self.active
    }

    /// Read access to the backing storage.
    pub fn storage(&self) -> &S {
        &self.storage
    }

    /// Consume the journal, returning the storage — the crash primitive:
    /// the in-memory journal state dies, only storage survives.
    pub fn into_storage(self) -> S {
        self.storage
    }

    fn append_frame(&mut self, frame: &[u8]) -> Result<(), WalError> {
        if self.active_records >= self.cfg.segment_records {
            // Seal the full segment before rolling: later syncs only
            // touch the new active segment, and an unsynced hole in the
            // middle of the journal must be impossible.
            self.storage.sync(&segment_name(self.active))?;
            self.active += 1;
            self.active_records = 0;
        }
        self.storage.append(&segment_name(self.active), frame)?;
        self.active_records += 1;
        Ok(())
    }

    /// Append one delivered batch. Not durable until [`Journal::sync`].
    pub fn append(&mut self, seq: u64, columns: &EventColumns) -> Result<(), WalError> {
        self.append_frame(&encode_record(seq, columns))?;
        self.appended += 1;
        Ok(())
    }

    /// Append an epoch-boundary marker. Markers count toward segment
    /// rolling but not toward [`Journal::appended`] — they carry no
    /// delivery; they pin where recovery must cut its replay tail.
    pub fn append_epoch(&mut self, seq: u64, day: u32) -> Result<(), WalError> {
        self.append_frame(&encode_epoch_record(seq, day))
    }

    /// Durability barrier on the active segment.
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.storage.sync(&segment_name(self.active))
    }

    /// Atomically publish a checkpoint covering every record appended so
    /// far, roll the active segment, and retire snapshots and segments
    /// the retention policy no longer needs. `marker` is an opaque
    /// caller progress value stored in the frame and handed back by
    /// recovery.
    pub fn publish_checkpoint(&mut self, state: &[u8], marker: u64) -> Result<(), WalError> {
        let new_ordinal = self.active + 1;
        let frame = CheckpointFrame {
            replay_from: new_ordinal,
            deliveries: self.appended,
            marker,
            state: state.to_vec(),
        };
        self.storage
            .write_atomic(&checkpoint_name(new_ordinal), &frame.encode())?;
        self.active = new_ordinal;
        self.active_records = 0;
        self.retire()
    }

    /// Delete checkpoints beyond the retention window and segments fully
    /// covered by every retained checkpoint. A checkpoint named `k`
    /// replays from segment `k`, so the retirement floor is the oldest
    /// retained checkpoint's ordinal.
    fn retire(&mut self) -> Result<(), WalError> {
        let names = self.storage.list()?;
        let mut checkpoints: Vec<u64> = names
            .iter()
            .filter_map(|n| parse_checkpoint_name(n))
            .collect();
        checkpoints.sort_unstable();
        let keep = self.cfg.keep_checkpoints.min(checkpoints.len());
        let (old, kept) = checkpoints.split_at(checkpoints.len() - keep);
        for &ordinal in old {
            self.storage.delete(&checkpoint_name(ordinal))?;
        }
        let floor = kept.first().copied().unwrap_or(0);
        for name in &names {
            if let Some(ordinal) = parse_segment_name(name) {
                if ordinal < floor {
                    self.storage.delete(name)?;
                }
            }
        }
        Ok(())
    }

    /// Run the recovery protocol (see the module docs) over an existing
    /// storage state. `validate` is the caller's check of the engine
    /// snapshot inside a frame-valid checkpoint — return `false` to
    /// reject it and walk back.
    pub fn recover(
        storage: S,
        cfg: JournalConfig,
        mut validate: impl FnMut(&[u8]) -> bool,
    ) -> Result<RecoveredJournal<S>, WalError> {
        cfg.validate()?;
        let mut storage = storage;
        let mut report = WalRecoveryReport::default();

        // 1. Newest surviving checkpoint, quarantining corrupt ones.
        let names = storage.list()?;
        let mut checkpoints: Vec<u64> = names
            .iter()
            .filter_map(|n| parse_checkpoint_name(n))
            .collect();
        checkpoints.sort_unstable();
        let mut survivor: Option<CheckpointFrame> = None;
        for &ordinal in checkpoints.iter().rev() {
            let name = checkpoint_name(ordinal);
            let verdict = storage.read(&name).and_then(|bytes| {
                let frame = CheckpointFrame::decode(&name, &bytes)?;
                if validate(&frame.state) {
                    Ok(frame)
                } else {
                    Err(WalError::Checkpoint {
                        object: name.clone(),
                        reason: "engine snapshot failed validation".to_string(),
                    })
                }
            });
            match verdict {
                Ok(frame) => {
                    survivor = Some(frame);
                    break;
                }
                Err(error) => {
                    storage.delete(&name)?;
                    report.quarantined_checkpoints.push((name, error));
                }
            }
        }

        let (replay_from, state, marker, covered) = match survivor {
            Some(frame) => {
                report.used_checkpoint = Some(frame.replay_from);
                (
                    frame.replay_from,
                    Some(frame.state),
                    frame.marker,
                    frame.deliveries,
                )
            }
            None => (0, None, 0, 0),
        };

        // 2. Scan segments from the replay floor.
        let mut segments: Vec<u64> = names
            .iter()
            .filter_map(|n| parse_segment_name(n))
            .filter(|&o| o >= replay_from)
            .collect();
        segments.sort_unstable();
        if state.is_none() && segments.first().is_some_and(|&first| first > 0) {
            return Err(WalError::Unrecoverable(
                "no valid checkpoint survives and the earliest segments were \
                 already retired"
                    .to_string(),
            ));
        }
        let mut tail: Vec<Record> = Vec::new();
        let mut active = replay_from;
        let mut active_records = 0usize;
        let mut stopped = false;
        let mut epoch_cut = false;
        for (idx, &ordinal) in segments.iter().enumerate() {
            if stopped {
                // Everything after an interior corruption (or past the
                // epoch cut) is dropped; the producer re-delivers it.
                let name = segment_name(ordinal);
                let dropped = storage.read(&name)?.len() as u64;
                if epoch_cut {
                    report.epoch_cut_bytes += dropped;
                } else {
                    report.discarded_bytes += dropped;
                }
                storage.delete(&name)?;
                continue;
            }
            let last_segment = idx + 1 == segments.len();
            let name = segment_name(ordinal);
            let bytes = storage.read(&name)?;
            let mut offset = 0usize;
            let mut records_here = 0usize;
            while offset < bytes.len() {
                match decode_frame(&bytes, offset) {
                    FrameOutcome::Valid { record, next } => {
                        if matches!(record.payload, RecordPayload::Epoch { .. }) {
                            // Replay must stop at the boundary: the
                            // engine effects that happened here (decay,
                            // re-solve) are not in the journal, so the
                            // deliveries past it cannot be replayed onto
                            // the recovered state. Cut here; the caller
                            // re-runs the boundary and re-delivers.
                            report.epoch_cut_bytes += (bytes.len() - offset) as u64;
                            storage.truncate(&name, offset as u64)?;
                            offset = bytes.len();
                            stopped = true;
                            epoch_cut = true;
                            continue;
                        }
                        tail.push(record);
                        records_here += 1;
                        offset = next;
                    }
                    FrameOutcome::Overrun { kind } if last_segment => {
                        // Torn tail: cut the unacknowledged bytes.
                        report.torn_bytes += (bytes.len() - offset) as u64;
                        storage.truncate(&name, offset as u64)?;
                        offset = bytes.len();
                        let _ = kind;
                    }
                    FrameOutcome::Overrun { kind } | FrameOutcome::Invalid { kind } => {
                        // Interior corruption (or a checksum-invalid frame
                        // even at the tail — it may span acknowledged
                        // bytes, so it is quarantined, not silently cut).
                        report.quarantined_records.push(QuarantinedRecord {
                            object: name.clone(),
                            offset: offset as u64,
                            error: WalError::Corrupt {
                                object: name.clone(),
                                offset: offset as u64,
                                kind,
                            },
                        });
                        report.discarded_bytes += (bytes.len() - offset) as u64;
                        storage.truncate(&name, offset as u64)?;
                        offset = bytes.len();
                        stopped = true;
                    }
                }
            }
            active = ordinal;
            active_records = records_here;
            if stopped {
                continue;
            }
        }
        if segments.is_empty() {
            active = replay_from;
            active_records = 0;
        }

        report.replayed_records = tail.len() as u64;
        let appended = covered + tail.len() as u64;
        Ok(RecoveredJournal {
            journal: Journal {
                storage,
                cfg,
                active,
                active_records,
                appended,
            },
            state,
            marker,
            covered_deliveries: covered,
            tail,
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;
    use scope_cloudsim::AccessKind;

    fn batch(seq: u64, n: usize) -> EventColumns {
        let mut cols = EventColumns::default();
        for i in 0..n {
            cols.push_resolved(
                (seq as u32 * 7 + i as u32) % 60,
                i as u32 % 9,
                if i % 2 == 0 {
                    AccessKind::Read
                } else {
                    AccessKind::Write
                },
                0.25 + seq as f64 + i as f64 * 0.5,
            );
        }
        cols
    }

    fn journal() -> Journal<MemStorage> {
        Journal::create(MemStorage::new(), JournalConfig::default()).unwrap()
    }

    fn recover(storage: MemStorage) -> RecoveredJournal<MemStorage> {
        Journal::recover(storage, JournalConfig::default(), |_| true).unwrap()
    }

    fn seqs(tail: &[Record]) -> Vec<u64> {
        tail.iter().map(|r| r.seq).collect()
    }

    #[test]
    fn config_is_validated() {
        for bad in [
            JournalConfig {
                segment_records: 0,
                ..Default::default()
            },
            JournalConfig {
                keep_checkpoints: 1,
                ..Default::default()
            },
        ] {
            assert!(matches!(
                Journal::create(MemStorage::new(), bad),
                Err(WalError::InvalidConfig(_))
            ));
        }
    }

    #[test]
    fn names_round_trip_and_sort_by_ordinal() {
        assert_eq!(parse_segment_name(&segment_name(42)), Some(42));
        assert_eq!(parse_checkpoint_name(&checkpoint_name(7)), Some(7));
        assert_eq!(parse_segment_name("ckpt-00000000000000000007.ckpt"), None);
        assert_eq!(parse_segment_name("wal-x.seg"), None);
        assert!(segment_name(9) < segment_name(10));
    }

    #[test]
    fn create_refuses_a_dirty_store() {
        let mut j = journal();
        j.append(0, &batch(0, 3)).unwrap();
        j.sync().unwrap();
        let storage = j.into_storage();
        assert!(matches!(
            Journal::create(storage, JournalConfig::default()),
            Err(WalError::InvalidConfig(_))
        ));
    }

    #[test]
    fn synced_records_survive_a_crash_and_unsynced_ones_do_not() {
        let mut j = journal();
        for seq in 0..4 {
            j.append(seq, &batch(seq, 2)).unwrap();
        }
        j.sync().unwrap();
        for seq in 4..6 {
            j.append(seq, &batch(seq, 2)).unwrap();
        }
        let mut storage = j.into_storage();
        storage.crash();
        let rec = recover(storage);
        assert_eq!(seqs(&rec.tail), vec![0, 1, 2, 3]);
        assert_eq!(rec.state, None);
        assert_eq!(rec.journal.appended(), 4);
        assert_eq!(rec.report.torn_bytes, 0);
        for (seq, r) in rec.tail.iter().enumerate() {
            let expect = batch(seq as u64, 2);
            assert_eq!(r.batch().unwrap().volumes, expect.volumes);
        }
    }

    #[test]
    fn a_torn_tail_is_truncated_and_reported() {
        let mut j = journal();
        j.append(0, &batch(0, 3)).unwrap();
        j.sync().unwrap();
        j.append(1, &batch(1, 3)).unwrap();
        let mut storage = j.into_storage();
        // The crash tears the pending record: 5 bytes reach the platter.
        storage.crash_torn(&segment_name(0), 5);
        storage.crash();
        let rec = recover(storage);
        assert_eq!(seqs(&rec.tail), vec![0]);
        assert_eq!(rec.report.torn_bytes, 5);
        assert!(rec.report.quarantined_records.is_empty());
        // The truncation is physical: appending after recovery yields a
        // clean journal.
        let mut j = rec.journal;
        j.append(1, &batch(1, 3)).unwrap();
        j.sync().unwrap();
        let rec = recover(j.into_storage());
        assert_eq!(seqs(&rec.tail), vec![0, 1]);
        assert_eq!(rec.report.torn_bytes, 0);
    }

    #[test]
    fn interior_corruption_is_quarantined_with_a_typed_error() {
        let mut j = journal();
        for seq in 0..3 {
            j.append(seq, &batch(seq, 4)).unwrap();
        }
        j.sync().unwrap();
        let mut storage = j.into_storage();
        // Flip a bit inside the second record's payload.
        let first_len = encode_record(0, &batch(0, 4)).len() as u64;
        storage.flip_durable_bit(&segment_name(0), (first_len + 20) * 8);
        let rec = recover(storage);
        assert_eq!(seqs(&rec.tail), vec![0]);
        assert_eq!(rec.report.quarantined_records.len(), 1);
        let q = &rec.report.quarantined_records[0];
        assert_eq!(q.offset, first_len);
        assert!(matches!(q.error, WalError::Corrupt { .. }));
        assert!(rec.report.discarded_bytes > 0);
        // The journal was truncated at the corruption point.
        assert_eq!(rec.journal.appended(), 1);
    }

    #[test]
    fn segments_roll_and_replay_in_order() {
        let cfg = JournalConfig {
            segment_records: 2,
            ..Default::default()
        };
        let mut j = Journal::create(MemStorage::new(), cfg.clone()).unwrap();
        for seq in 0..7 {
            j.append(seq, &batch(seq, 1)).unwrap();
        }
        j.sync().unwrap();
        assert_eq!(j.active_segment(), 3);
        let mut storage = j.into_storage();
        storage.crash();
        let rec = Journal::recover(storage, cfg, |_| true).unwrap();
        // Rolling seals earlier segments, so only the active segment's
        // pending bytes were at risk — and those were synced.
        assert_eq!(seqs(&rec.tail), vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn checkpoints_cover_replay_and_retire_old_segments() {
        let cfg = JournalConfig {
            segment_records: 2,
            keep_checkpoints: 2,
        };
        let mut j = Journal::create(MemStorage::new(), cfg.clone()).unwrap();
        let mut seq = 0u64;
        for epoch in 0u64..5 {
            for _ in 0..3 {
                j.append(seq, &batch(seq, 1)).unwrap();
                seq += 1;
            }
            j.sync().unwrap();
            j.publish_checkpoint(format!("state-{epoch}").as_bytes(), epoch + 1)
                .unwrap();
        }
        // Two checkpoints retained; segments below the older one's
        // ordinal are gone.
        let names = j.storage().list().unwrap();
        let ckpts: Vec<u64> = names
            .iter()
            .filter_map(|n| parse_checkpoint_name(n))
            .collect();
        assert_eq!(ckpts.len(), 2);
        let floor = ckpts[0];
        assert!(names
            .iter()
            .filter_map(|n| parse_segment_name(n))
            .all(|o| o >= floor));

        let mut storage = j.into_storage();
        storage.crash();
        let rec = recover(storage);
        assert_eq!(rec.state.as_deref(), Some(b"state-4".as_ref()));
        assert_eq!(rec.marker, 5);
        assert_eq!(rec.covered_deliveries, 15);
        assert_eq!(seqs(&rec.tail), Vec::<u64>::new());
        assert_eq!(rec.journal.appended(), 15);
    }

    #[test]
    fn a_corrupt_newest_checkpoint_walks_back_to_the_previous_one() {
        let cfg = JournalConfig {
            segment_records: 64,
            keep_checkpoints: 2,
        };
        let mut j = Journal::create(MemStorage::new(), cfg.clone()).unwrap();
        j.append(0, &batch(0, 2)).unwrap();
        j.sync().unwrap();
        j.publish_checkpoint(b"ckpt-A", 10).unwrap();
        j.append(1, &batch(1, 2)).unwrap();
        j.sync().unwrap();
        j.publish_checkpoint(b"ckpt-B", 20).unwrap();
        j.append(2, &batch(2, 2)).unwrap();
        j.sync().unwrap();

        let mut storage = j.into_storage();
        let newest = checkpoint_name(2);
        storage.flip_durable_bit(&newest, 13);
        let rec = recover(storage);
        // Walk-back: B is quarantined (and deleted), A survives, and the
        // journal tail from A's floor replays records 1 and 2.
        assert_eq!(rec.state.as_deref(), Some(b"ckpt-A".as_ref()));
        assert_eq!(rec.marker, 10);
        assert_eq!(rec.covered_deliveries, 1);
        assert_eq!(seqs(&rec.tail), vec![1, 2]);
        assert_eq!(rec.report.quarantined_checkpoints.len(), 1);
        assert_eq!(rec.report.quarantined_checkpoints[0].0, newest);
        assert!(!rec.journal.storage().list().unwrap().contains(&newest));
    }

    #[test]
    fn a_validator_rejection_also_walks_back() {
        let mut j = journal();
        j.append(0, &batch(0, 2)).unwrap();
        j.sync().unwrap();
        j.publish_checkpoint(b"good", 1).unwrap();
        j.append(1, &batch(1, 2)).unwrap();
        j.sync().unwrap();
        j.publish_checkpoint(b"evil", 2).unwrap();
        let mut storage = j.into_storage();
        storage.crash();
        let rec =
            Journal::recover(storage, JournalConfig::default(), |state| state == b"good").unwrap();
        assert_eq!(rec.state.as_deref(), Some(b"good".as_ref()));
        assert_eq!(rec.report.quarantined_checkpoints.len(), 1);
        assert!(matches!(
            rec.report.quarantined_checkpoints[0].1,
            WalError::Checkpoint { .. }
        ));
        assert_eq!(seqs(&rec.tail), vec![1]);
    }

    #[test]
    fn losing_every_checkpoint_and_the_early_segments_is_unrecoverable() {
        let cfg = JournalConfig {
            segment_records: 1,
            keep_checkpoints: 2,
        };
        let mut j = Journal::create(MemStorage::new(), cfg.clone()).unwrap();
        for seq in 0..6 {
            j.append(seq, &batch(seq, 1)).unwrap();
            j.sync().unwrap();
            j.publish_checkpoint(b"s", seq).unwrap();
        }
        let mut storage = j.into_storage();
        for name in storage.list().unwrap() {
            if parse_checkpoint_name(&name).is_some() {
                storage.flip_durable_bit(&name, 40);
            }
        }
        assert!(matches!(
            Journal::recover(storage, cfg, |_| true),
            Err(WalError::Unrecoverable(_))
        ));
    }

    #[test]
    fn recovery_cuts_the_replay_tail_at_the_first_epoch_marker() {
        let mut j = journal();
        j.append(0, &batch(0, 2)).unwrap();
        j.append(1, &batch(1, 2)).unwrap();
        j.append_epoch(1, 30).unwrap();
        j.append(2, &batch(2, 2)).unwrap();
        j.sync().unwrap();
        // Markers count toward segment rolling, not deliveries.
        assert_eq!(j.appended(), 3);
        let mut storage = j.into_storage();
        storage.crash();
        let rec = recover(storage);
        // Replay stops before the boundary; the batch past it is cut
        // away for re-delivery, and the marker itself never replays.
        assert_eq!(seqs(&rec.tail), vec![0, 1]);
        assert!(rec.tail.iter().all(|r| r.batch().is_some()));
        assert_eq!(rec.journal.appended(), 2);
        assert!(rec.report.epoch_cut_bytes > 0);
        assert_eq!(rec.report.discarded_bytes, 0);
        assert!(rec.report.quarantined_records.is_empty());
        // The cut is physical: re-running the boundary and re-delivering
        // continues a clean journal from the cut point.
        let mut j = rec.journal;
        j.append_epoch(1, 30).unwrap();
        j.sync().unwrap();
        j.publish_checkpoint(b"after-boundary", 7).unwrap();
        j.append(2, &batch(2, 2)).unwrap();
        j.sync().unwrap();
        let rec = recover(j.into_storage());
        assert_eq!(rec.state.as_deref(), Some(b"after-boundary".as_ref()));
        assert_eq!(rec.covered_deliveries, 2);
        assert_eq!(seqs(&rec.tail), vec![2]);
        assert_eq!(rec.report.epoch_cut_bytes, 0);
    }

    #[test]
    fn an_epoch_cut_also_drops_later_segments() {
        let cfg = JournalConfig {
            segment_records: 2,
            ..Default::default()
        };
        let mut j = Journal::create(MemStorage::new(), cfg.clone()).unwrap();
        j.append(0, &batch(0, 1)).unwrap();
        j.append_epoch(1, 10).unwrap();
        for seq in 1..5 {
            j.append(seq, &batch(seq, 1)).unwrap();
        }
        j.sync().unwrap();
        assert!(j.active_segment() > 0);
        let mut storage = j.into_storage();
        storage.crash();
        let rec = Journal::recover(storage, cfg, |_| true).unwrap();
        assert_eq!(seqs(&rec.tail), vec![0]);
        assert_eq!(rec.journal.appended(), 1);
        assert!(rec.report.epoch_cut_bytes > 0);
        assert_eq!(rec.report.discarded_bytes, 0);
        // Later segments are gone from storage, not just skipped.
        let names = rec.journal.storage().list().unwrap();
        assert_eq!(
            names.iter().filter_map(|n| parse_segment_name(n)).count(),
            1
        );
    }

    #[test]
    fn an_empty_store_recovers_to_a_fresh_journal() {
        let rec = recover(MemStorage::new());
        assert_eq!(rec.state, None);
        assert!(rec.tail.is_empty());
        assert_eq!(rec.journal.appended(), 0);
        assert_eq!(rec.journal.active_segment(), 0);
    }
}
