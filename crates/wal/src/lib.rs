//! `scope-wal`: the durable intake journal under the serving engine.
//!
//! PR 8–9 made the serving loop incremental and fault-tolerant in
//! memory; this crate makes intake *durable*. Every `EventColumns` batch
//! delivered to a journaled engine is appended here — CRC-framed, in
//! segments, through a minimal [`Storage`] abstraction — before it is
//! allowed to mutate engine state, so a crash can lose at most the
//! unacknowledged tail since the last sync, and recovery is replay.
//!
//! # Durability and recovery
//!
//! **Record framing.** Each delivery is one self-checking frame —
//! `len | crc32 | kind | seq | payload` — with the batch encoded
//! column-wise, little-endian (see [`record`]). The same encoding is the
//! wire format for fleet-scale intake: a batch serialized for the
//! journal is byte-identical to one serialized for the network. A second
//! record kind marks epoch boundaries ([`record::RECORD_EPOCH`]): the
//! engine's decay/re-solve step is not itself journaled, so recovery
//! cuts its replay tail at the first marker rather than replay
//! deliveries across a boundary it cannot reproduce.
//!
//! **Sync points.** Appends land in the backend's volatile tail and
//! become durable at [`Journal::sync`] — the serving engine's epoch
//! boundary. Rolling to a new segment seals (syncs) the old one, so a
//! hole can never open mid-journal. Checkpoints are published atomically
//! (write-temp + rename + directory sync in the file backend) and are
//! durable the moment [`Journal::publish_checkpoint`] returns.
//!
//! **Checkpoint retirement.** A checkpoint with ordinal `k` covers every
//! record in segments `< k`. After each publish the newest
//! [`JournalConfig::keep_checkpoints`] (≥ 2) snapshots are retained,
//! older ones are deleted, and segments below the oldest retained
//! snapshot's ordinal are retired — bounded storage, while one corrupt
//! newest checkpoint always leaves an older one *with its segments*.
//!
//! **Recovery walk-back.** [`Journal::recover`] walks checkpoints newest
//! to oldest, quarantining (deleting and reporting) any that fail the
//! frame CRC or the caller's engine-level validation; then scans the
//! surviving snapshot's uncovered segments. A torn tail — an incomplete
//! frame at the end of the last segment — is truncated; a corrupt
//! interior frame is quarantined with a typed [`WalError`] and the
//! journal is cut there, because everything past it must be re-delivered
//! anyway. The valid tail records are handed back for replay through the
//! engine's validating intake; the report says exactly how many
//! deliveries the recovered state covers, which tells the producer where
//! to resume.
//!
//! Two backends ship: [`MemStorage`], whose explicit durable/pending
//! split and corruption hooks let seeded fault plans (in `scope-faults`)
//! inject torn writes, bit flips, partial appends and failed syncs
//! deterministically; and [`FileStorage`], real files used by the bench
//! bins.

pub mod crc;
mod error;
pub mod file;
pub mod journal;
pub mod record;
mod storage;

pub use crc::crc32;
pub use error::{CorruptKind, WalError};
pub use file::FileStorage;
pub use journal::{
    checkpoint_name, parse_checkpoint_name, parse_segment_name, segment_name, Journal,
    JournalConfig, QuarantinedRecord, RecoveredJournal, WalRecoveryReport,
};
pub use record::{
    decode_columns, decode_frame, encode_columns, encode_epoch_record, encode_record,
    CheckpointFrame, FrameOutcome, Record, RecordPayload,
};
pub use storage::{MemStorage, Storage};
