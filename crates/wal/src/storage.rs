//! The storage abstraction the journal writes through, plus the
//! fault-injectable in-memory backend.
//!
//! [`Storage`] is a deliberately small flat-object API: named byte
//! objects with append, per-object durability barriers (`sync`), atomic
//! whole-object publish (`write_atomic`), delete and truncate. The
//! journal needs nothing else, and the surface is narrow enough that the
//! in-memory backend can model real crash semantics exactly:
//!
//! * [`MemStorage`] keeps a **durable** and a **pending** buffer per
//!   object. `append` lands in pending; `sync` promotes pending to
//!   durable; a [`MemStorage::crash`] drops everything pending — or, for
//!   torn-write experiments, [`MemStorage::crash_torn`] promotes an
//!   arbitrary prefix of one object's pending tail first, exactly what a
//!   power cut mid-write leaves behind.
//! * Bit flips and arbitrary corruption of *durable* bytes are applied
//!   through [`MemStorage::flip_durable_bit`] /
//!   [`MemStorage::corrupt_durable`], so chaos harnesses (the seeded
//!   plans in `scope-faults`) can decide *where* to corrupt while the
//!   mechanics live here.
//!
//! The real-file backend lives in [`crate::file`] and is the only place
//! in the workspace outside the analyzer and the bench bins allowed to
//! touch `std::fs` (enforced by the `fs-confinement` lint).

use crate::error::WalError;
use std::collections::BTreeMap;

/// Flat named-object storage with explicit durability.
pub trait Storage {
    /// All object names, sorted lexicographically.
    fn list(&self) -> Result<Vec<String>, WalError>;
    /// Full contents of `name` as this process would read them back
    /// (durable plus not-yet-synced bytes).
    fn read(&self, name: &str) -> Result<Vec<u8>, WalError>;
    /// Append `bytes` to `name`, creating it if absent. Appended bytes
    /// are *not* durable until [`Storage::sync`].
    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), WalError>;
    /// Durability barrier: everything appended to `name` so far survives
    /// a crash once this returns.
    fn sync(&mut self, name: &str) -> Result<(), WalError>;
    /// Atomically replace `name` with `bytes`: after a crash the object
    /// holds either its old contents or `bytes`, never a mixture.
    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> Result<(), WalError>;
    /// Remove `name`.
    fn delete(&mut self, name: &str) -> Result<(), WalError>;
    /// Shrink `name` to its first `len` bytes (used by recovery to cut a
    /// torn or corrupt tail).
    fn truncate(&mut self, name: &str, len: u64) -> Result<(), WalError>;
}

/// In-memory [`Storage`] with explicit durable/pending buffers.
#[derive(Debug, Clone, Default)]
pub struct MemStorage {
    durable: BTreeMap<String, Vec<u8>>,
    pending: BTreeMap<String, Vec<u8>>,
}

impl MemStorage {
    /// An empty store.
    pub fn new() -> Self {
        MemStorage::default()
    }

    /// Names and sizes of objects with unsynced bytes, sorted by name.
    pub fn pending_objects(&self) -> Vec<(String, usize)> {
        self.pending
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(k, v)| (k.clone(), v.len()))
            .collect()
    }

    /// Names and durable sizes of all objects, sorted by name.
    pub fn durable_objects(&self) -> Vec<(String, usize)> {
        self.durable
            .iter()
            .map(|(k, v)| (k.clone(), v.len()))
            .collect()
    }

    /// Simulate a crash: every unsynced byte is lost.
    pub fn crash(&mut self) {
        self.pending.clear();
    }

    /// Simulate a torn write during a crash: the first `keep` pending
    /// bytes of `name` reach durable storage, the rest (and every other
    /// object's pending bytes) are lost. Call before [`MemStorage::crash`]
    /// semantics apply to the remainder — this method already drops the
    /// rest of `name`'s pending buffer but leaves other objects alone.
    pub fn crash_torn(&mut self, name: &str, keep: usize) {
        if let Some(mut tail) = self.pending.remove(name) {
            tail.truncate(keep);
            self.durable
                .entry(name.to_string())
                .or_default()
                .extend(tail);
        }
    }

    /// Mutate the durable bytes of `name` in place (bit rot, truncation,
    /// duplicated tails — whatever the harness wants). Returns `false`
    /// when the object has no durable bytes.
    pub fn corrupt_durable(&mut self, name: &str, f: impl FnOnce(&mut Vec<u8>)) -> bool {
        match self.durable.get_mut(name) {
            Some(bytes) if !bytes.is_empty() => {
                f(bytes);
                true
            }
            _ => false,
        }
    }

    /// Flip one bit of `name`'s durable contents. `bit` is taken modulo
    /// the object's bit length. Returns `false` for empty/missing
    /// objects.
    pub fn flip_durable_bit(&mut self, name: &str, bit: u64) -> bool {
        self.corrupt_durable(name, |bytes| {
            let b = (bit % (bytes.len() as u64 * 8)) as usize;
            bytes[b / 8] ^= 1 << (b % 8);
        })
    }

    /// Durable length of `name` (0 when absent).
    pub fn durable_len(&self, name: &str) -> usize {
        self.durable.get(name).map_or(0, Vec::len)
    }

    fn known(&self, name: &str) -> bool {
        self.durable.contains_key(name) || self.pending.contains_key(name)
    }
}

impl Storage for MemStorage {
    fn list(&self) -> Result<Vec<String>, WalError> {
        let mut names: Vec<String> = self.durable.keys().cloned().collect();
        names.extend(self.pending.keys().cloned());
        names.sort_unstable();
        names.dedup();
        Ok(names)
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, WalError> {
        if !self.known(name) {
            return Err(WalError::Missing {
                object: name.to_string(),
            });
        }
        let mut out = self.durable.get(name).cloned().unwrap_or_default();
        if let Some(tail) = self.pending.get(name) {
            out.extend_from_slice(tail);
        }
        Ok(out)
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), WalError> {
        self.pending
            .entry(name.to_string())
            .or_default()
            .extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self, name: &str) -> Result<(), WalError> {
        if let Some(tail) = self.pending.remove(name) {
            self.durable
                .entry(name.to_string())
                .or_default()
                .extend(tail);
        }
        Ok(())
    }

    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> Result<(), WalError> {
        self.pending.remove(name);
        self.durable.insert(name.to_string(), bytes.to_vec());
        Ok(())
    }

    fn delete(&mut self, name: &str) -> Result<(), WalError> {
        let knew = self.known(name);
        self.durable.remove(name);
        self.pending.remove(name);
        if knew {
            Ok(())
        } else {
            Err(WalError::Missing {
                object: name.to_string(),
            })
        }
    }

    fn truncate(&mut self, name: &str, len: u64) -> Result<(), WalError> {
        if !self.known(name) {
            return Err(WalError::Missing {
                object: name.to_string(),
            });
        }
        self.pending.remove(name);
        self.durable
            .entry(name.to_string())
            .or_default()
            .truncate(len as usize);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_see_unsynced_appends_but_crashes_drop_them() {
        let mut s = MemStorage::new();
        s.append("a", b"dur").unwrap();
        s.sync("a").unwrap();
        s.append("a", b"pending").unwrap();
        assert_eq!(s.read("a").unwrap(), b"durpending");
        assert_eq!(s.pending_objects(), vec![("a".to_string(), 7)]);
        s.crash();
        assert_eq!(s.read("a").unwrap(), b"dur");
        assert_eq!(s.pending_objects(), Vec::new());
    }

    #[test]
    fn torn_crashes_keep_an_arbitrary_prefix() {
        let mut s = MemStorage::new();
        s.append("a", b"base").unwrap();
        s.sync("a").unwrap();
        s.append("a", b"tail-bytes").unwrap();
        s.crash_torn("a", 4);
        s.crash();
        assert_eq!(s.read("a").unwrap(), b"basetail");
    }

    #[test]
    fn write_atomic_replaces_and_is_immediately_durable() {
        let mut s = MemStorage::new();
        s.append("c", b"old-pending").unwrap();
        s.write_atomic("c", b"published").unwrap();
        s.crash();
        assert_eq!(s.read("c").unwrap(), b"published");
    }

    #[test]
    fn list_delete_truncate_and_missing_objects() {
        let mut s = MemStorage::new();
        s.append("b", b"bb").unwrap();
        s.write_atomic("a", b"aa").unwrap();
        assert_eq!(s.list().unwrap(), vec!["a".to_string(), "b".to_string()]);
        assert!(matches!(s.read("z"), Err(WalError::Missing { .. })));
        assert!(matches!(s.delete("z"), Err(WalError::Missing { .. })));
        assert!(matches!(s.truncate("z", 0), Err(WalError::Missing { .. })));
        s.truncate("a", 1).unwrap();
        assert_eq!(s.read("a").unwrap(), b"a");
        s.delete("b").unwrap();
        assert_eq!(s.list().unwrap(), vec!["a".to_string()]);
    }

    #[test]
    fn bit_flips_hit_durable_bytes_only() {
        let mut s = MemStorage::new();
        assert!(!s.flip_durable_bit("a", 3));
        s.append("a", b"\x00\x00").unwrap();
        assert!(!s.flip_durable_bit("a", 3), "pending bytes must not flip");
        s.sync("a").unwrap();
        assert!(s.flip_durable_bit("a", 9));
        assert_eq!(s.read("a").unwrap(), vec![0u8, 2u8]);
        // Out-of-range indices wrap.
        assert!(s.flip_durable_bit("a", 16 + 9));
        assert_eq!(s.read("a").unwrap(), vec![0u8, 0u8]);
    }
}
