//! Typed errors for the write-ahead journal.
//!
//! Every way the journal can fail — backend I/O, invalid configuration,
//! a frame that does not checksum, an unrecoverable storage state — has a
//! variant here, so callers (the serving engine's recovery protocol, the
//! chaos harnesses, the proptests) can branch on *what* went wrong
//! instead of string-matching. Corruption carries the object name and
//! byte offset of the bad frame, which is exactly what the recovery
//! report quarantines.

use std::fmt;

/// What specifically failed to validate inside a journal frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptKind {
    /// Fewer bytes than a frame header at a position that must hold one.
    Header,
    /// The frame length field is implausible (too small, too large, or
    /// pointing past the end of the segment).
    Length,
    /// The frame checksum does not match its contents.
    Checksum,
    /// The record kind byte is not one the journal writes.
    Kind,
    /// The record payload does not decode as an event-columns batch.
    Payload,
}

impl fmt::Display for CorruptKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CorruptKind::Header => "truncated frame header",
            CorruptKind::Length => "implausible frame length",
            CorruptKind::Checksum => "checksum mismatch",
            CorruptKind::Kind => "unknown record kind",
            CorruptKind::Payload => "undecodable payload",
        };
        f.write_str(s)
    }
}

/// Errors from the journal and its storage backends.
#[derive(Debug, Clone, PartialEq)]
pub enum WalError {
    /// The journal configuration is invalid (zero segment size, too few
    /// retained checkpoints, ...).
    InvalidConfig(String),
    /// A storage operation failed. Carries the object name, the operation
    /// (`"append"`, `"sync"`, ...) and the backend's reason — real I/O
    /// errors from the file backend and injected faults from the chaos
    /// wrappers both surface here.
    Io {
        /// Object the operation targeted.
        object: String,
        /// Storage operation that failed.
        op: &'static str,
        /// Backend-specific reason.
        reason: String,
    },
    /// An object that must exist does not.
    Missing {
        /// The missing object's name.
        object: String,
    },
    /// A journal frame failed validation.
    Corrupt {
        /// Object containing the bad frame.
        object: String,
        /// Byte offset of the bad frame within the object.
        offset: u64,
        /// What failed to validate.
        kind: CorruptKind,
    },
    /// A checkpoint object failed validation (bad frame, or rejected by
    /// the engine-level validator during recovery walk-back).
    Checkpoint {
        /// The checkpoint object's name.
        object: String,
        /// Why it was rejected.
        reason: String,
    },
    /// The storage state cannot be recovered into a consistent journal
    /// (e.g. every retained checkpoint is corrupt and the early segments
    /// they covered were already retired).
    Unrecoverable(String),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::InvalidConfig(msg) => write!(f, "invalid journal config: {msg}"),
            WalError::Io { object, op, reason } => {
                write!(f, "storage {op} on {object:?} failed: {reason}")
            }
            WalError::Missing { object } => write!(f, "storage object {object:?} does not exist"),
            WalError::Corrupt {
                object,
                offset,
                kind,
            } => write!(f, "corrupt frame in {object:?} at byte {offset}: {kind}"),
            WalError::Checkpoint { object, reason } => {
                write!(f, "checkpoint {object:?} rejected: {reason}")
            }
            WalError::Unrecoverable(msg) => write!(f, "journal unrecoverable: {msg}"),
        }
    }
}

impl std::error::Error for WalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_context() {
        let e = WalError::Corrupt {
            object: "wal-00000000000000000003.seg".to_string(),
            offset: 128,
            kind: CorruptKind::Checksum,
        };
        let s = e.to_string();
        assert!(s.contains("wal-00000000000000000003.seg"), "{s}");
        assert!(s.contains("128"), "{s}");
        assert!(s.contains("checksum"), "{s}");

        let io = WalError::Io {
            object: "x".to_string(),
            op: "sync",
            reason: "injected".to_string(),
        };
        assert!(io.to_string().contains("sync"), "{io}");
    }
}
