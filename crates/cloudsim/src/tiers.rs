//! Storage tier definitions and the tier catalog.
//!
//! The numbers in [`TierCatalog::azure_adls_gen2`] reproduce Table I and
//! Table XII of the paper: four tiers (Premium, Hot, Cool, Archive) with a
//! clear trade-off between storage cost, read cost and time-to-first-byte.

use crate::error::CloudSimError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a tier inside a [`TierCatalog`].
///
/// Tier 0 is the lowest-latency (most expensive) tier and the highest id is
/// the archival tier, mirroring the paper's convention that "layer 0 denotes
/// the lowest latency layer and L-1 denotes the archival layer".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TierId(pub usize);

impl TierId {
    /// Index of this tier inside its catalog.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for TierId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tier#{}", self.0)
    }
}

/// A single storage tier and its cost / latency parameters.
///
/// All costs are expressed in **cents** so that results can be compared
/// directly with the paper's tables. Sizes are in **GB** and latencies in
/// **seconds**.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tier {
    /// Human-readable tier name ("Premium", "Hot", "Cool", "Archive", ...).
    pub name: String,
    /// Storage cost in cents per GB per month (`C^s_l` in the paper).
    pub storage_cost_cents_per_gb_month: f64,
    /// Read cost in cents per GB read (`C^r_l`).
    pub read_cost_cents_per_gb: f64,
    /// Write cost in cents per GB written (`C^w_l = Delta_{-1,l}`).
    pub write_cost_cents_per_gb: f64,
    /// Read latency, measured as time-to-first-byte in seconds (`B_l`).
    pub ttfb_seconds: f64,
    /// Minimum residency before the object can be moved without an early
    /// deletion penalty, in days (e.g. 180 for Azure Archive).
    pub early_deletion_days: u32,
    /// Optional capacity reservation for this tier in GB (`S_l`). `None`
    /// means unbounded, which is the common "pay per usage" setting.
    pub capacity_gb: Option<f64>,
}

impl Tier {
    /// Create a tier with unbounded capacity and no early-deletion period.
    pub fn new(
        name: impl Into<String>,
        storage_cost_cents_per_gb_month: f64,
        read_cost_cents_per_gb: f64,
        write_cost_cents_per_gb: f64,
        ttfb_seconds: f64,
    ) -> Self {
        Tier {
            name: name.into(),
            storage_cost_cents_per_gb_month,
            read_cost_cents_per_gb,
            write_cost_cents_per_gb,
            ttfb_seconds,
            early_deletion_days: 0,
            capacity_gb: None,
        }
    }

    /// Builder-style setter for the early deletion period.
    pub fn with_early_deletion_days(mut self, days: u32) -> Self {
        self.early_deletion_days = days;
        self
    }

    /// Builder-style setter for a capacity reservation in GB.
    pub fn with_capacity_gb(mut self, capacity: f64) -> Self {
        self.capacity_gb = Some(capacity);
        self
    }
}

/// Ordered collection of storage tiers.
///
/// The ordering is significant: index 0 is the fastest/most expensive tier
/// and the last index is the archival tier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierCatalog {
    tiers: Vec<Tier>,
    /// Interned name → index lookup, built once at construction so
    /// [`TierCatalog::tier_id`] is O(1) instead of a linear scan. Tier
    /// names never change after construction (`set_capacity` and
    /// `clear_capacities` touch only capacities), so the index cannot go
    /// stale; catalogs built through [`TierCatalog::new`] — including
    /// merged multi-provider catalogs — always carry it.
    name_index: HashMap<String, usize>,
    /// Compute cost in cents per second (`C^c`), used to price
    /// decompression CPU time. Default follows Table XII (0.001 cents/s).
    pub compute_cost_cents_per_second: f64,
}

impl TierCatalog {
    /// Build a catalog from an ordered list of tiers.
    ///
    /// Returns an error if `tiers` is empty.
    pub fn new(tiers: Vec<Tier>) -> Result<Self, CloudSimError> {
        if tiers.is_empty() {
            return Err(CloudSimError::EmptyCatalog);
        }
        Ok(Self::from_tiers(tiers))
    }

    /// Infallible constructor for callers that guarantee a non-empty tier
    /// list (the shipped static catalogs, merges of validated catalogs).
    pub(crate) fn from_tiers(tiers: Vec<Tier>) -> Self {
        // First occurrence wins, matching the historical linear-scan
        // semantics for (pathological) duplicate-name catalogs.
        let mut name_index = HashMap::with_capacity(tiers.len());
        for (i, t) in tiers.iter().enumerate() {
            name_index.entry(t.name.clone()).or_insert(i);
        }
        TierCatalog {
            tiers,
            name_index,
            compute_cost_cents_per_second: 0.001,
        }
    }

    /// The Azure ADLS Gen2 tier catalog used throughout the paper.
    ///
    /// Parameters follow Table I (storage cost, early deletion) and
    /// Table XII (read cost per GB, TTFB, compute cost):
    ///
    /// | Tier    | storage c/GB/mo | read c/GB | TTFB (s) | early deletion |
    /// |---------|-----------------|-----------|----------|----------------|
    /// | Premium | 15.0            | 0.004659  | 0.0053   | 0 days         |
    /// | Hot     | 2.08            | 0.01331   | 0.0614   | 0 days         |
    /// | Cool    | 1.52            | 0.0333    | 0.0614   | 30 days        |
    /// | Archive | 0.099           | 16.64     | 3600     | 180 days       |
    ///
    /// Write costs are derived from the published per-10k-operation write
    /// prices normalised to cents/GB (4 MB operations), and are small
    /// compared to storage and read costs, matching the paper's treatment.
    pub fn azure_adls_gen2() -> Self {
        let tiers = vec![
            Tier::new("Premium", 15.0, 0.004659, 0.00932, 0.0053),
            Tier::new("Hot", 2.08, 0.01331, 0.01331, 0.0614),
            Tier::new("Cool", 1.52, 0.0333, 0.02662, 0.0614).with_early_deletion_days(30),
            Tier::new("Archive", 0.099, 16.64, 0.02662, 3600.0).with_early_deletion_days(180),
        ];
        TierCatalog::from_tiers(tiers)
    }

    /// An S3-style four-tier ladder (Standard, Standard-IA, Glacier-IR,
    /// Deep Archive) for the multi-provider experiments.
    ///
    /// The numbers are stylized from the published S3 price sheet the same
    /// way Table I/XII stylize ADLS Gen2: storage in cents/GB/month,
    /// per-GB retrieval charges folded into the read rate, and minimum
    /// storage durations as the early-deletion window.
    ///
    /// | Tier         | storage c/GB/mo | read c/GB | TTFB (s) | min. duration |
    /// |--------------|-----------------|-----------|----------|---------------|
    /// | Standard     | 2.3             | 0.0135    | 0.1      | 0 days        |
    /// | Standard-IA  | 1.25            | 1.0       | 0.1      | 30 days       |
    /// | Glacier-IR   | 0.4             | 3.0       | 0.1      | 90 days       |
    /// | Deep Archive | 0.099           | 5.0       | 43200    | 180 days      |
    pub fn aws_s3() -> Self {
        let tiers = vec![
            Tier::new("Standard", 2.3, 0.0135, 0.005, 0.1),
            Tier::new("Standard-IA", 1.25, 1.0, 0.01, 0.1).with_early_deletion_days(30),
            Tier::new("Glacier-IR", 0.4, 3.0, 0.02, 0.1).with_early_deletion_days(90),
            Tier::new("Deep-Archive", 0.099, 5.0, 0.05, 43200.0).with_early_deletion_days(180),
        ];
        TierCatalog::from_tiers(tiers)
    }

    /// A GCS-style four-tier ladder (Standard, Nearline, Coldline,
    /// Archive) for the multi-provider experiments.
    ///
    /// GCS's defining difference from the other ladders: every tier —
    /// including Archive — serves reads at millisecond time-to-first-byte,
    /// trading that for per-GB retrieval fees and long minimum storage
    /// durations on the cold tiers.
    ///
    /// | Tier     | storage c/GB/mo | read c/GB | TTFB (s) | min. duration |
    /// |----------|-----------------|-----------|----------|---------------|
    /// | Standard | 2.0             | 0.014     | 0.08     | 0 days        |
    /// | Nearline | 1.0             | 1.0       | 0.08     | 30 days       |
    /// | Coldline | 0.4             | 2.0       | 0.08     | 90 days       |
    /// | Archive  | 0.12            | 5.0       | 0.08     | 365 days      |
    pub fn gcp_gcs() -> Self {
        let tiers = vec![
            Tier::new("Standard", 2.0, 0.014, 0.005, 0.08),
            Tier::new("Nearline", 1.0, 1.0, 0.01, 0.08).with_early_deletion_days(30),
            Tier::new("Coldline", 0.4, 2.0, 0.02, 0.08).with_early_deletion_days(90),
            Tier::new("Archive", 0.12, 5.0, 0.05, 0.08).with_early_deletion_days(365),
        ];
        TierCatalog::from_tiers(tiers)
    }

    /// Catalog restricted to the Hot and Cool tiers, used for the
    /// Enterprise Data I experiments of Tables III and IV ("OptAssign
    /// (Hot, Cool)").
    pub fn azure_hot_cool() -> Self {
        let full = Self::azure_adls_gen2();
        let tiers = full
            .tiers
            .iter()
            .filter(|t| t.name == "Hot" || t.name == "Cool")
            .cloned()
            .collect();
        TierCatalog::from_tiers(tiers)
    }

    /// Catalog with Hot, Cool and Archive, used for the 6-month enterprise
    /// experiments where the archive layer is allowed.
    pub fn azure_hot_cool_archive() -> Self {
        let full = Self::azure_adls_gen2();
        let tiers = full
            .tiers
            .iter()
            .filter(|t| t.name != "Premium")
            .cloned()
            .collect();
        TierCatalog::from_tiers(tiers)
    }

    /// Catalog with Premium, Hot and Cool (no Archive), used for the
    /// TPC-H pipeline experiments of Tables IX–XI where Archive is excluded
    /// because of its 6-month early-deletion period.
    pub fn azure_premium_hot_cool() -> Self {
        let full = Self::azure_adls_gen2();
        let tiers = full
            .tiers
            .iter()
            .filter(|t| t.name != "Archive")
            .cloned()
            .collect();
        TierCatalog::from_tiers(tiers)
    }

    /// Number of tiers (`L` in the paper).
    pub fn len(&self) -> usize {
        self.tiers.len()
    }

    /// True if the catalog has no tiers (never true for a constructed catalog).
    pub fn is_empty(&self) -> bool {
        self.tiers.is_empty()
    }

    /// Iterate over `(TierId, &Tier)` pairs in order of increasing latency.
    pub fn iter(&self) -> impl Iterator<Item = (TierId, &Tier)> {
        self.tiers.iter().enumerate().map(|(i, t)| (TierId(i), t))
    }

    /// All tier ids in catalog order.
    pub fn tier_ids(&self) -> Vec<TierId> {
        (0..self.tiers.len()).map(TierId).collect()
    }

    /// Look up a tier by id.
    pub fn tier(&self, id: TierId) -> Result<&Tier, CloudSimError> {
        self.tiers
            .get(id.0)
            .ok_or_else(|| CloudSimError::UnknownTier(format!("{id}")))
    }

    /// Look up a tier id by (case-sensitive) name. O(1): resolved through
    /// the interned index built at construction, not a scan of the ladder —
    /// merged multi-provider catalogs resolve `provider:tier` names at the
    /// same constant cost as a four-tier ladder.
    pub fn tier_id(&self, name: &str) -> Result<TierId, CloudSimError> {
        self.name_index
            .get(name)
            .map(|&i| TierId(i))
            .ok_or_else(|| CloudSimError::UnknownTier(name.to_string()))
    }

    /// Apply a capacity reservation (in GB) to the named tier.
    ///
    /// This models "storage reservations on tiers" — the `S_l` bound of the
    /// OPTASSIGN capacity constraint.
    pub fn set_capacity(&mut self, name: &str, capacity_gb: f64) -> Result<(), CloudSimError> {
        if !capacity_gb.is_finite() || capacity_gb < 0.0 {
            return Err(CloudSimError::InvalidParameter {
                name: "capacity_gb",
                value: capacity_gb,
            });
        }
        let id = self.tier_id(name)?;
        self.tiers[id.0].capacity_gb = Some(capacity_gb);
        Ok(())
    }

    /// Remove all capacity reservations (the unbounded-capacity special case
    /// of §IV-B.2 where the greedy algorithm is optimal).
    pub fn clear_capacities(&mut self) {
        for t in &mut self.tiers {
            t.capacity_gb = None;
        }
    }

    /// The archival tier id (highest index), if the catalog has more than
    /// one tier.
    pub fn archive_tier(&self) -> TierId {
        TierId(self.tiers.len() - 1)
    }

    /// The lowest-latency tier id (index 0).
    pub fn fastest_tier(&self) -> TierId {
        TierId(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn azure_catalog_matches_paper_table1_and_table12() {
        let c = TierCatalog::azure_adls_gen2();
        assert_eq!(c.len(), 4);
        let premium = c.tier(c.tier_id("Premium").unwrap()).unwrap();
        let hot = c.tier(c.tier_id("Hot").unwrap()).unwrap();
        let cool = c.tier(c.tier_id("Cool").unwrap()).unwrap();
        let archive = c.tier(c.tier_id("Archive").unwrap()).unwrap();

        assert_eq!(premium.storage_cost_cents_per_gb_month, 15.0);
        assert_eq!(hot.storage_cost_cents_per_gb_month, 2.08);
        assert_eq!(cool.storage_cost_cents_per_gb_month, 1.52);
        assert_eq!(archive.storage_cost_cents_per_gb_month, 0.099);

        assert_eq!(premium.read_cost_cents_per_gb, 0.004659);
        assert_eq!(hot.read_cost_cents_per_gb, 0.01331);
        assert_eq!(cool.read_cost_cents_per_gb, 0.0333);
        assert_eq!(archive.read_cost_cents_per_gb, 16.64);

        assert_eq!(premium.ttfb_seconds, 0.0053);
        assert_eq!(archive.ttfb_seconds, 3600.0);
        assert_eq!(c.compute_cost_cents_per_second, 0.001);
    }

    #[test]
    fn tier_ordering_trades_storage_for_read_cost() {
        // The defining property of the tier ladder: as storage gets cheaper,
        // reads get more expensive and latency grows.
        let c = TierCatalog::azure_adls_gen2();
        let tiers: Vec<&Tier> = c.iter().map(|(_, t)| t).collect();
        for w in tiers.windows(2) {
            assert!(w[0].storage_cost_cents_per_gb_month > w[1].storage_cost_cents_per_gb_month);
            assert!(w[0].read_cost_cents_per_gb <= w[1].read_cost_cents_per_gb);
            assert!(w[0].ttfb_seconds <= w[1].ttfb_seconds);
        }
    }

    #[test]
    fn tier_id_lookup_and_unknown_tier() {
        let c = TierCatalog::azure_adls_gen2();
        assert_eq!(c.tier_id("Hot").unwrap(), TierId(1));
        assert!(matches!(
            c.tier_id("Glacier"),
            Err(CloudSimError::UnknownTier(_))
        ));
        assert!(matches!(
            c.tier(TierId(99)),
            Err(CloudSimError::UnknownTier(_))
        ));
    }

    #[test]
    fn restricted_catalogs_have_expected_tiers() {
        assert_eq!(TierCatalog::azure_hot_cool().len(), 2);
        assert_eq!(TierCatalog::azure_hot_cool_archive().len(), 3);
        assert_eq!(TierCatalog::azure_premium_hot_cool().len(), 3);
        assert!(TierCatalog::azure_premium_hot_cool()
            .tier_id("Archive")
            .is_err());
    }

    #[test]
    fn empty_catalog_rejected() {
        assert_eq!(
            TierCatalog::new(vec![]).unwrap_err(),
            CloudSimError::EmptyCatalog
        );
    }

    #[test]
    fn set_capacity_validates_and_applies() {
        let mut c = TierCatalog::azure_adls_gen2();
        c.set_capacity("Premium", 0.163).unwrap();
        let p = c.tier(c.tier_id("Premium").unwrap()).unwrap();
        assert_eq!(p.capacity_gb, Some(0.163));
        assert!(c.set_capacity("Premium", f64::NAN).is_err());
        assert!(c.set_capacity("Premium", -1.0).is_err());
        c.clear_capacities();
        assert!(c.iter().all(|(_, t)| t.capacity_gb.is_none()));
    }

    #[test]
    fn archive_and_fastest_helpers() {
        let c = TierCatalog::azure_adls_gen2();
        assert_eq!(c.fastest_tier(), TierId(0));
        assert_eq!(c.archive_tier(), TierId(3));
        assert_eq!(c.tier(c.archive_tier()).unwrap().name, "Archive");
    }

    #[test]
    fn s3_and_gcs_ladders_trade_storage_for_read_cost() {
        for catalog in [TierCatalog::aws_s3(), TierCatalog::gcp_gcs()] {
            assert_eq!(catalog.len(), 4);
            let tiers: Vec<&Tier> = catalog.iter().map(|(_, t)| t).collect();
            for w in tiers.windows(2) {
                assert!(
                    w[0].storage_cost_cents_per_gb_month > w[1].storage_cost_cents_per_gb_month
                );
                assert!(w[0].read_cost_cents_per_gb <= w[1].read_cost_cents_per_gb);
                assert!(w[0].ttfb_seconds <= w[1].ttfb_seconds);
                assert!(w[0].early_deletion_days <= w[1].early_deletion_days);
            }
        }
    }

    #[test]
    fn gcs_archive_is_fast_but_expensive_to_read() {
        let gcs = TierCatalog::gcp_gcs();
        let archive = gcs.tier(gcs.tier_id("Archive").unwrap()).unwrap();
        // The millisecond-latency archive is what makes cross-provider
        // placement interesting for latency-bounded cold data.
        assert!(archive.ttfb_seconds < 1.0);
        assert_eq!(archive.early_deletion_days, 365);
        let s3 = TierCatalog::aws_s3();
        let deep = s3.tier(s3.tier_id("Deep-Archive").unwrap()).unwrap();
        assert!(deep.ttfb_seconds > 3600.0);
    }

    #[test]
    fn interned_tier_id_agrees_with_a_linear_scan_on_merged_catalogs() {
        // Regression: `tier_id` used to be an O(n) `Vec::position` scan; the
        // interned index must resolve every name — including the
        // `provider:tier` names of a merged catalog — to exactly the id the
        // scan would have found, and reject unknown names the same way.
        use crate::providers::ProviderCatalog;
        let merged = ProviderCatalog::azure_s3_gcs().merged_catalog();
        for (id, tier) in merged.iter() {
            let scanned = merged
                .iter()
                .position(|(_, t)| t.name == tier.name)
                .map(TierId)
                .unwrap();
            assert_eq!(merged.tier_id(&tier.name).unwrap(), scanned);
            assert_eq!(merged.tier_id(&tier.name).unwrap(), id);
        }
        assert!(matches!(
            merged.tier_id("azure:Glacier"),
            Err(CloudSimError::UnknownTier(_))
        ));
        // Unqualified names do not resolve in the merged space.
        assert!(merged.tier_id("Hot").is_err());
        // The index survives capacity mutation (names are untouched).
        let mut c = TierCatalog::azure_adls_gen2();
        c.set_capacity("Cool", 10.0).unwrap();
        c.clear_capacities();
        assert_eq!(c.tier_id("Cool").unwrap(), TierId(2));
    }

    #[test]
    fn early_deletion_periods() {
        let c = TierCatalog::azure_adls_gen2();
        assert_eq!(
            c.tier(c.tier_id("Hot").unwrap())
                .unwrap()
                .early_deletion_days,
            0
        );
        assert_eq!(
            c.tier(c.tier_id("Cool").unwrap())
                .unwrap()
                .early_deletion_days,
            30
        );
        assert_eq!(
            c.tier(c.tier_id("Archive").unwrap())
                .unwrap()
                .early_deletion_days,
            180
        );
    }
}
