//! Latency SLA policies.
//!
//! Every partition carries a latency threshold `T(P_n)`; the OPTASSIGN ILP
//! only allows assignments whose time-to-first-byte plus decompression time
//! stays under that threshold. [`SlaPolicy`] captures common threshold
//! choices and [`LatencyEstimate`] is the quantity compared against it.

use serde::{Deserialize, Serialize};

/// An estimated access latency for a candidate placement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyEstimate {
    /// Time to first byte of the chosen tier, seconds.
    pub ttfb_seconds: f64,
    /// Expected decompression time per access, seconds.
    pub decompression_seconds: f64,
}

impl LatencyEstimate {
    /// Total expected latency in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.ttfb_seconds + self.decompression_seconds
    }
}

/// Latency service-level agreement for a partition or dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum SlaPolicy {
    /// No latency requirement — any tier (including Archive) is acceptable.
    #[default]
    BestEffort,
    /// Interactive access: single-digit milliseconds. Effectively pins the
    /// data to the Premium tier in the Azure catalog.
    Interactive,
    /// Online analytics: sub-second first byte. Excludes Archive.
    Online,
    /// Batch analytics: latency up to the given number of seconds.
    MaxSeconds(f64),
}

impl SlaPolicy {
    /// Threshold in seconds that an access latency must not exceed.
    pub fn threshold_seconds(&self) -> f64 {
        match self {
            SlaPolicy::BestEffort => f64::INFINITY,
            SlaPolicy::Interactive => 0.010,
            SlaPolicy::Online => 1.0,
            SlaPolicy::MaxSeconds(s) => *s,
        }
    }

    /// Does the estimated latency satisfy this SLA?
    pub fn admits(&self, estimate: &LatencyEstimate) -> bool {
        estimate.total_seconds() <= self.threshold_seconds()
    }

    /// Relax the policy by a multiplicative factor. Used by the pipeline
    /// when the ILP is infeasible and the paper prescribes that "latency
    /// requirements need to be relaxed iteratively till a feasible solution
    /// is found".
    pub fn relaxed(&self, factor: f64) -> SlaPolicy {
        match self {
            SlaPolicy::BestEffort => SlaPolicy::BestEffort,
            other => SlaPolicy::MaxSeconds(other.threshold_seconds() * factor),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_are_ordered() {
        assert!(SlaPolicy::Interactive.threshold_seconds() < SlaPolicy::Online.threshold_seconds());
        assert!(SlaPolicy::Online.threshold_seconds() < SlaPolicy::BestEffort.threshold_seconds());
    }

    #[test]
    fn admits_compares_total_latency() {
        let est = LatencyEstimate {
            ttfb_seconds: 0.06,
            decompression_seconds: 0.5,
        };
        assert!(!SlaPolicy::Interactive.admits(&est));
        assert!(SlaPolicy::Online.admits(&est));
        assert!(SlaPolicy::BestEffort.admits(&est));
        assert!(!SlaPolicy::MaxSeconds(0.5).admits(&est));
        assert!(SlaPolicy::MaxSeconds(0.6).admits(&est));
    }

    #[test]
    fn relaxation_scales_threshold() {
        let sla = SlaPolicy::Online;
        let relaxed = sla.relaxed(10.0);
        assert_eq!(relaxed.threshold_seconds(), 10.0);
        // BestEffort stays unbounded.
        assert_eq!(
            SlaPolicy::BestEffort.relaxed(10.0).threshold_seconds(),
            f64::INFINITY
        );
    }

    #[test]
    fn archive_excluded_by_online_sla() {
        // An archive read has a 1 hour TTFB; the Online SLA must reject it.
        let est = LatencyEstimate {
            ttfb_seconds: 3600.0,
            decompression_seconds: 0.0,
        };
        assert!(!SlaPolicy::Online.admits(&est));
        assert!(SlaPolicy::BestEffort.admits(&est));
    }
}
