//! # scope-cloudsim
//!
//! Cloud storage tier catalog, cost model and billing simulator.
//!
//! This crate is the *substrate* that replaces the real cloud (Azure ADLS
//! Gen2 in the paper) for the SCOPe reproduction. The optimizer in
//! `scope-optassign` never talks to a real cloud provider — it only needs
//! the per-tier cost/latency parameters (paper Table I and Table XII) and a
//! way of accounting costs over a billing horizon. Both are provided here.
//!
//! The main entry points are:
//!
//! * [`TierCatalog`] — the set of storage tiers with their storage cost,
//!   read cost, write cost, time-to-first-byte and early-deletion period.
//!   [`TierCatalog::azure_adls_gen2`] reproduces the numbers of the paper.
//! * [`CostModel`] — computes storage / read / write / tier-change /
//!   decompression-compute costs for an object of a given size over a
//!   projection horizon, exactly mirroring the terms of the OPTASSIGN
//!   objective (Eq. 1 of the paper).
//! * [`BillingSimulator`] — a day-granular, event-driven billing engine: it
//!   replays a day-stamped access trace against per-object
//!   [`PlacementSchedule`]s (mid-horizon tier transitions allowed),
//!   pro-rates storage by days, charges tier changes in the billing period
//!   they occur, and bills early deletion for the exact days of unmet
//!   minimum residency. [`BillingSimulator::run`] is the month-aligned
//!   compatibility path that reproduces the legacy whole-month replay
//!   (and the "% cost benefit" numbers of Tables II and IV) exactly.
//! * [`timeline`] — the day-granular time axis: [`BillingEvent`],
//!   [`PlacementSchedule`], schedule segments and day/period arithmetic.
//! * [`ProviderCatalog`] — multi-provider tier catalogs: named providers,
//!   each with its own tier ladder and residency rules, plus a
//!   per-provider-pair egress cost matrix. Its merged tier space (and the
//!   [`ProviderTopology`] companion) lets the cost model, the billing
//!   engine ([`BillingSimulator::multi_provider`]) and every optimizer in
//!   `scope-optassign` price cross-provider placement honestly.
//!
//! ## Shipped provider catalogs ([`ProviderCatalog::azure_s3_gcs`])
//!
//! | Provider | Tiers (storage c/GB/mo)                                                       | Residency rules (min. days) |
//! |----------|-------------------------------------------------------------------------------|-----------------------------|
//! | `azure`  | Premium (15.0), Hot (2.08), Cool (1.52), Archive (0.099)                       | Cool 30, Archive 180        |
//! | `s3`     | Standard (2.3), Standard-IA (1.25), Glacier-IR (0.4), Deep-Archive (0.099)     | IA 30, GIR 90, Deep 180     |
//! | `gcs`    | Standard (2.0), Nearline (1.0), Coldline (0.4), Archive (0.12) — all ms-latency | NL 30, CL 90, Archive 365   |
//!
//! Egress matrix (cents/GB, discounted interconnect rates; scale with
//! [`ProviderCatalog::with_egress_scale`] — ×5 approximates the public
//! internet prices):
//!
//! | from \ to | azure | s3  | gcs |
//! |-----------|-------|-----|-----|
//! | azure     | 0     | 2.0 | 2.0 |
//! | s3        | 2.1   | 0   | 2.1 |
//! | gcs       | 2.5   | 2.5 | 0   |
//!
//! ```
//! use scope_cloudsim::{TierCatalog, CostModel, ObjectSpec};
//!
//! let catalog = TierCatalog::azure_adls_gen2();
//! let model = CostModel::new(catalog.clone());
//! let obj = ObjectSpec::new("dataset-42", 100.0); // 100 GB
//! let hot = catalog.tier_id("Hot").unwrap();
//! let cool = catalog.tier_id("Cool").unwrap();
//! // Storing 100 GB for 6 months is cheaper on Cool, but reads are more
//! // expensive there than on Hot.
//! let cost_hot = model.total_cost(&obj, hot, 6.0, 50.0, 1.0, 0.0);
//! let cost_cool = model.total_cost(&obj, cool, 6.0, 50.0, 1.0, 0.0);
//! assert!(cost_hot.storage > cost_cool.storage);
//! assert!(cost_hot.read < cost_cool.read);
//! ```

#![warn(missing_docs)]

pub mod billing;
pub mod cost;
pub mod error;
pub mod parallel;
pub mod providers;
pub mod reference;
pub mod sla;
pub mod tiers;
pub mod timeline;

pub use billing::{
    AccessEvent, AccessKind, BillingReport, BillingSimulator, MonthlyCost, Placement,
};
pub use cost::{CostBreakdown, CostModel, CostWeights, ObjectSpec};
pub use error::CloudSimError;
pub use parallel::{
    parallel_map, parallel_map_mut, parallel_map_mut_with_threads, parallel_map_with_threads,
};
pub use providers::{Provider, ProviderCatalog, ProviderId, ProviderTopology};
pub use sla::{LatencyEstimate, SlaPolicy};
pub use tiers::{Tier, TierCatalog, TierId};
pub use timeline::{
    events_from_monthly, BillingEvent, EventColumns, PlacementSchedule, ScheduleSegment,
    DAYS_PER_MONTH, UNKNOWN_OBJECT,
};
