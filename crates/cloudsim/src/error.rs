//! Error type for the cloud simulator.

use std::fmt;

/// Errors produced by the cloud storage simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum CloudSimError {
    /// A tier name or id was requested that does not exist in the catalog.
    UnknownTier(String),
    /// A provider name or id was requested that does not exist in the
    /// provider catalog.
    UnknownProvider(String),
    /// A provider catalog was constructed with a malformed egress matrix
    /// (wrong shape, negative/non-finite rate, or non-zero diagonal).
    InvalidEgressMatrix(String),
    /// A tier catalog was constructed with no tiers.
    EmptyCatalog,
    /// An object size, access count or horizon was negative or non-finite.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The value that was rejected.
        value: f64,
    },
    /// Capacity reservation on a tier was exceeded by a placement.
    CapacityExceeded {
        /// Tier whose reservation was exceeded.
        tier: String,
        /// Reserved capacity in GB.
        capacity_gb: f64,
        /// Requested placement volume in GB.
        requested_gb: f64,
    },
}

impl fmt::Display for CloudSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CloudSimError::UnknownTier(name) => write!(f, "unknown storage tier: {name}"),
            CloudSimError::UnknownProvider(name) => {
                write!(f, "unknown storage provider: {name}")
            }
            CloudSimError::InvalidEgressMatrix(why) => {
                write!(f, "invalid egress matrix: {why}")
            }
            CloudSimError::EmptyCatalog => write!(f, "tier catalog must contain at least one tier"),
            CloudSimError::InvalidParameter { name, value } => {
                write!(f, "invalid parameter {name}: {value}")
            }
            CloudSimError::CapacityExceeded {
                tier,
                capacity_gb,
                requested_gb,
            } => write!(
                f,
                "capacity exceeded on tier {tier}: reserved {capacity_gb} GB, requested {requested_gb} GB"
            ),
        }
    }
}

impl std::error::Error for CloudSimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_unknown_tier() {
        let e = CloudSimError::UnknownTier("Frozen".to_string());
        assert_eq!(e.to_string(), "unknown storage tier: Frozen");
    }

    #[test]
    fn display_capacity_exceeded_mentions_tier_and_sizes() {
        let e = CloudSimError::CapacityExceeded {
            tier: "Premium".to_string(),
            capacity_gb: 10.0,
            requested_gb: 12.5,
        };
        let s = e.to_string();
        assert!(s.contains("Premium"));
        assert!(s.contains("10"));
        assert!(s.contains("12.5"));
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> = Box::new(CloudSimError::EmptyCatalog);
        assert!(e.to_string().contains("at least one tier"));
    }
}
