//! Cost model mirroring the OPTASSIGN objective (Eq. 1 of the paper).
//!
//! For a partition `P_n` assigned to tier `l` with compression scheme `k`
//! the paper's objective charges
//!
//! ```text
//!   (alpha * C^s_l + gamma * Delta_{L(P_n),l}) * Sp(P_n) / R^k_n
//! + beta * rho(P_n) * (C^c * D^k_n + C^r_l * Sp(P_n) / R^k_n)
//! ```
//!
//! [`CostModel`] computes each of these terms; [`CostWeights`] carries the
//! `alpha`/`beta`/`gamma` hyper-parameters that the pipeline sweeps to obtain
//! the "latency focused" / "read+decompression focused" / "total cost
//! focused" variants of Tables IX–XI.

use crate::error::CloudSimError;
use crate::providers::ProviderTopology;
use crate::tiers::{Tier, TierCatalog, TierId};
use serde::{Deserialize, Serialize};

/// Sentinel returned by the pricing paths for a `TierId` minted by a
/// different catalog: every rate is NaN, so any cost computed against it
/// is NaN and fails the `<`/`is_finite` checks downstream instead of
/// silently pricing the plan — without panicking the serving loop.
static INVALID_TIER: Tier = Tier {
    name: String::new(),
    storage_cost_cents_per_gb_month: f64::NAN,
    read_cost_cents_per_gb: f64::NAN,
    write_cost_cents_per_gb: f64::NAN,
    ttfb_seconds: f64::NAN,
    early_deletion_days: 0,
    capacity_gb: None,
};

/// Description of a stored object (a data partition or whole dataset).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectSpec {
    /// Stable identifier used in reports.
    pub name: String,
    /// Uncompressed size in GB (`Sp(P_n)`).
    pub size_gb: f64,
    /// Tier the object currently lives on, if it already exists.
    /// `None` models newly-ingested data (the paper's `L(P_i) = -1`).
    pub current_tier: Option<TierId>,
    /// Days the object has already resided on `current_tier` before the
    /// billing horizon starts. Early-deletion penalties are pro-rated by
    /// this: only the *unmet* remainder of the tier's minimum residency
    /// period is charged when the object is moved away.
    pub residency_days: u32,
}

impl ObjectSpec {
    /// Create a new (not-yet-placed) object of `size_gb` gigabytes.
    pub fn new(name: impl Into<String>, size_gb: f64) -> Self {
        ObjectSpec {
            name: name.into(),
            size_gb,
            current_tier: None,
            residency_days: 0,
        }
    }

    /// Builder-style setter recording the tier the object currently occupies.
    pub fn on_tier(mut self, tier: TierId) -> Self {
        self.current_tier = Some(tier);
        self
    }

    /// Builder-style setter recording how many days the object has already
    /// served on its current tier (counts against the tier's minimum
    /// residency period).
    pub fn with_residency_days(mut self, days: u32) -> Self {
        self.residency_days = days;
        self
    }

    /// Validate that the size is finite and non-negative.
    pub fn validate(&self) -> Result<(), CloudSimError> {
        if !self.size_gb.is_finite() || self.size_gb < 0.0 {
            return Err(CloudSimError::InvalidParameter {
                name: "size_gb",
                value: self.size_gb,
            });
        }
        Ok(())
    }
}

/// The `alpha`, `beta`, `gamma` weights of the OPTASSIGN objective.
///
/// * `alpha` scales the storage cost term,
/// * `beta` scales the (read + decompression-compute) term,
/// * `gamma` scales the tier-change / write cost term.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostWeights {
    /// Weight on storage cost.
    pub alpha: f64,
    /// Weight on read + decompression cost.
    pub beta: f64,
    /// Weight on tier-change (write) cost.
    pub gamma: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        CostWeights {
            alpha: 1.0,
            beta: 1.0,
            gamma: 1.0,
        }
    }
}

impl CostWeights {
    /// Equal weights — the "total cost focused" configuration.
    pub fn total_cost_focused() -> Self {
        Self::default()
    }

    /// Latency-time focused configuration (`alpha = 0`): storage cost is
    /// ignored and the optimizer minimizes read + decompression latency
    /// cost, the adaptation of HCompress used as a baseline in the paper.
    pub fn latency_focused() -> Self {
        CostWeights {
            alpha: 0.0,
            beta: 1.0,
            gamma: 0.0,
        }
    }

    /// Read + decompression cost focused configuration: the read/compute
    /// term dominates but storage still carries a small weight so that ties
    /// break towards cheaper storage.
    pub fn read_decomp_focused() -> Self {
        CostWeights {
            alpha: 0.05,
            beta: 1.0,
            gamma: 0.05,
        }
    }

    /// Custom weights.
    pub fn new(alpha: f64, beta: f64, gamma: f64) -> Self {
        CostWeights { alpha, beta, gamma }
    }
}

/// Breakdown of the cost of one placement decision (all values in cents).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Storage cost over the projection horizon.
    pub storage: f64,
    /// Read cost (per-GB read charges times expected volume read).
    pub read: f64,
    /// Write / tier-change cost.
    pub write: f64,
    /// Decompression compute cost.
    pub decompression: f64,
    /// Inter-provider egress cost (zero in single-provider models).
    pub egress: f64,
}

impl CostBreakdown {
    /// Sum of all components.
    pub fn total(&self) -> f64 {
        self.storage + self.read + self.write + self.decompression + self.egress
    }

    /// Element-wise sum of two breakdowns.
    pub fn add(&self, other: &CostBreakdown) -> CostBreakdown {
        CostBreakdown {
            storage: self.storage + other.storage,
            read: self.read + other.read,
            write: self.write + other.write,
            decompression: self.decompression + other.decompression,
            egress: self.egress + other.egress,
        }
    }

    /// Accumulate `other` into `self`.
    pub fn accumulate(&mut self, other: &CostBreakdown) {
        self.storage += other.storage;
        self.read += other.read;
        self.write += other.write;
        self.decompression += other.decompression;
        self.egress += other.egress;
    }
}

/// Cost model over a [`TierCatalog`], optionally provider-aware.
///
/// With a [`ProviderTopology`] attached (via [`CostModel::with_topology`],
/// typically over a merged multi-provider catalog), tier changes that cross
/// providers additionally pay the egress rate of the source→destination
/// provider pair. Without one, every cost is identical to the historical
/// single-provider model.
#[derive(Debug, Clone)]
pub struct CostModel {
    catalog: TierCatalog,
    topology: Option<ProviderTopology>,
}

impl CostModel {
    /// Create a cost model for the given catalog (single-provider: no
    /// egress anywhere).
    pub fn new(catalog: TierCatalog) -> Self {
        CostModel {
            catalog,
            topology: None,
        }
    }

    /// Create a provider-aware cost model: `catalog` is a merged
    /// multi-provider catalog and `topology` its provider/egress companion
    /// (see [`ProviderCatalog`](crate::ProviderCatalog)).
    ///
    /// # Panics
    ///
    /// Panics if the topology does not cover the catalog tier-for-tier — a
    /// mismatched (catalog, topology) pair would otherwise silently price
    /// every uncovered tier's egress as zero.
    pub fn with_topology(catalog: TierCatalog, topology: ProviderTopology) -> Self {
        assert_eq!(
            topology.tier_count(),
            catalog.len(),
            "provider topology covers {} tiers but the catalog has {} — \
             catalog and topology must come from the same ProviderCatalog",
            topology.tier_count(),
            catalog.len()
        );
        CostModel {
            catalog,
            topology: Some(topology),
        }
    }

    /// The underlying tier catalog.
    pub fn catalog(&self) -> &TierCatalog {
        &self.catalog
    }

    /// The provider topology, if this model is provider-aware.
    pub fn topology(&self) -> Option<&ProviderTopology> {
        self.topology.as_ref()
    }

    /// The spec of `tier`, whose id the infallible pricing entry points
    /// below expect to come from this model's own catalog (the only
    /// `TierId`s in circulation are minted by a catalog). A foreign id
    /// prices as NaN — which every downstream comparison rejects — rather
    /// than panicking the serving loop on one malformed plan.
    fn tier_spec(&self, tier: TierId) -> &Tier {
        self.catalog.tier(tier).unwrap_or(&INVALID_TIER)
    }

    /// Storage cost (cents) of keeping `size_gb` gigabytes on `tier` for
    /// `months` months.
    pub fn storage_cost(&self, tier: TierId, size_gb: f64, months: f64) -> f64 {
        self.tier_spec(tier).storage_cost_cents_per_gb_month * size_gb * months
    }

    /// Read cost (cents) of reading `size_gb` gigabytes `accesses` times
    /// from `tier`.
    pub fn read_cost(&self, tier: TierId, size_gb: f64, accesses: f64) -> f64 {
        self.tier_spec(tier).read_cost_cents_per_gb * size_gb * accesses
    }

    /// Write cost (cents) of landing `size_gb` gigabytes on `tier`
    /// (`Delta_{-1,l}` — used both for new ingests and as the write half of
    /// a tier change).
    pub fn write_cost(&self, tier: TierId, size_gb: f64) -> f64 {
        self.tier_spec(tier).write_cost_cents_per_gb * size_gb
    }

    /// Inter-provider egress cost (cents) of moving `size_gb` GB from
    /// `from` to `to`: the source provider's egress rate towards the
    /// destination provider. Zero when the model has no topology, for new
    /// ingests (`from == None`), and for intra-provider moves.
    pub fn egress_cost(&self, from: Option<TierId>, to: TierId, size_gb: f64) -> f64 {
        match (&self.topology, from) {
            (Some(topo), Some(f)) if f != to => topo.tier_egress_rate(f, to) * size_gb,
            _ => 0.0,
        }
    }

    /// The intra-cloud half of a tier change: a read off the source tier
    /// plus a write onto the destination (no egress). Moving data to the
    /// tier it already occupies is free; newly ingested data
    /// (`from == None`) only pays the write. Callers that bill egress
    /// separately compose this with [`CostModel::egress_cost`] on the
    /// source-resident byte count, which can differ from `size_gb` when a
    /// move also changes compression.
    pub fn read_write_cost(&self, from: Option<TierId>, to: TierId, size_gb: f64) -> f64 {
        match from {
            Some(f) if f == to => 0.0,
            Some(f) => self.read_cost(f, size_gb, 1.0) + self.write_cost(to, size_gb),
            None => self.write_cost(to, size_gb),
        }
    }

    /// Tier change cost `Delta_{u,v}` for moving `size_gb` GB from `from` to
    /// `to`: a read from the source tier plus a write to the destination,
    /// plus — in a provider-aware model — the inter-provider egress charge.
    /// The single size covers both ends, so this is the right call for
    /// moves that keep the stored byte count (e.g. the uncompressed
    /// schedule DP); compression-changing moves should compose
    /// [`CostModel::read_write_cost`] and [`CostModel::egress_cost`] with
    /// their respective byte counts.
    pub fn tier_change_cost(&self, from: Option<TierId>, to: TierId, size_gb: f64) -> f64 {
        self.read_write_cost(from, to, size_gb) + self.egress_cost(from, to, size_gb)
    }

    /// Decompression compute cost (cents) for `accesses` accesses each
    /// paying `decompression_seconds` of CPU.
    pub fn decompression_cost(&self, decompression_seconds: f64, accesses: f64) -> f64 {
        self.catalog.compute_cost_cents_per_second * decompression_seconds * accesses
    }

    /// Early-deletion penalty (cents) for moving `size_gb` GB off `from`
    /// after `days_served` days of residency: the *unmet* remainder of the
    /// tier's minimum residency period, billed at the tier's storage rate
    /// (how Azure bills early deletion from Cool/Archive). Zero once the
    /// residency window is met. This is the single pricing rule shared by
    /// the billing engine, the OPTASSIGN objective and the schedule DP.
    pub fn early_deletion_penalty(
        &self,
        from: TierId,
        size_gb: f64,
        days_served: u32,
    ) -> Result<f64, CloudSimError> {
        let t = self.catalog.tier(from)?;
        if t.early_deletion_days > days_served {
            let unmet_days = t.early_deletion_days - days_served;
            Ok(t.storage_cost_cents_per_gb_month
                * size_gb
                * (unmet_days as f64 / crate::timeline::DAYS_PER_MONTH as f64))
        } else {
            Ok(0.0)
        }
    }

    /// Unweighted cost breakdown for placing `obj` on `tier` for `months`
    /// months with `accesses` expected full-object reads, stored at
    /// `compression_ratio` (>= 1, 1.0 = uncompressed) and paying
    /// `decompression_seconds` of CPU per access.
    pub fn total_cost(
        &self,
        obj: &ObjectSpec,
        tier: TierId,
        months: f64,
        accesses: f64,
        compression_ratio: f64,
        decompression_seconds: f64,
    ) -> CostBreakdown {
        let stored_gb = obj.size_gb / compression_ratio.max(f64::MIN_POSITIVE);
        let write = self.read_write_cost(obj.current_tier, tier, stored_gb);
        CostBreakdown {
            storage: self.storage_cost(tier, stored_gb, months),
            read: self.read_cost(tier, stored_gb, accesses),
            write,
            decompression: self.decompression_cost(decompression_seconds, accesses),
            // Egress covers the bytes leaving the source tier — the
            // object's current (uncompressed) size — matching how the
            // billing engine charges the move.
            egress: self.egress_cost(obj.current_tier, tier, obj.size_gb),
        }
    }

    /// The OPTASSIGN objective value (Eq. 1) for a single placement, i.e.
    /// the weighted combination of the breakdown computed by
    /// [`CostModel::total_cost`].
    #[allow(clippy::too_many_arguments)]
    pub fn objective(
        &self,
        obj: &ObjectSpec,
        tier: TierId,
        months: f64,
        accesses: f64,
        compression_ratio: f64,
        decompression_seconds: f64,
        weights: &CostWeights,
    ) -> f64 {
        let b = self.total_cost(
            obj,
            tier,
            months,
            accesses,
            compression_ratio,
            decompression_seconds,
        );
        weights.alpha * b.storage
            + weights.gamma * (b.write + b.egress)
            + weights.beta * (b.read + b.decompression)
    }

    /// Expected access latency (seconds) of one read of `obj` from `tier`
    /// when `decompression_seconds` of CPU are needed before the data is
    /// usable: TTFB plus decompression. This is the quantity bounded by the
    /// per-partition latency threshold `T(P_n)` in the ILP.
    pub fn access_latency_seconds(&self, tier: TierId, decompression_seconds: f64) -> f64 {
        self.tier_spec(tier).ttfb_seconds + decompression_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::new(TierCatalog::azure_adls_gen2())
    }

    #[test]
    fn storage_cost_is_linear_in_size_and_months() {
        let m = model();
        let hot = m.catalog().tier_id("Hot").unwrap();
        let c1 = m.storage_cost(hot, 10.0, 1.0);
        let c2 = m.storage_cost(hot, 20.0, 1.0);
        let c3 = m.storage_cost(hot, 10.0, 3.0);
        assert!((c2 - 2.0 * c1).abs() < 1e-12);
        assert!((c3 - 3.0 * c1).abs() < 1e-12);
        assert!((c1 - 20.8).abs() < 1e-9); // 10 GB * 2.08 c/GB/mo
    }

    #[test]
    fn read_cost_uses_per_tier_rate() {
        let m = model();
        let premium = m.catalog().tier_id("Premium").unwrap();
        let archive = m.catalog().tier_id("Archive").unwrap();
        // Reading 1 GB once.
        assert!(m.read_cost(premium, 1.0, 1.0) < m.read_cost(archive, 1.0, 1.0));
        assert!((m.read_cost(archive, 1.0, 1.0) - 16.64).abs() < 1e-9);
    }

    #[test]
    fn foreign_tier_ids_price_as_nan_instead_of_panicking() {
        let m = model();
        let foreign = TierId(m.catalog().len() + 7);
        assert!(m.storage_cost(foreign, 10.0, 1.0).is_nan());
        assert!(m.read_cost(foreign, 1.0, 2.0).is_nan());
        assert!(m.write_cost(foreign, 1.0).is_nan());
        // A NaN price loses every `<` comparison, so no placement ever
        // selects the phantom tier.
        let hot = m.catalog().tier_id("Hot").unwrap();
        assert!(!(m.storage_cost(foreign, 10.0, 1.0) < m.storage_cost(hot, 10.0, 1.0)));
    }

    #[test]
    fn tier_change_cost_same_tier_is_free_and_new_data_only_writes() {
        let m = model();
        let hot = m.catalog().tier_id("Hot").unwrap();
        let cool = m.catalog().tier_id("Cool").unwrap();
        assert_eq!(m.tier_change_cost(Some(hot), hot, 100.0), 0.0);
        let new_ingest = m.tier_change_cost(None, cool, 100.0);
        assert!((new_ingest - m.write_cost(cool, 100.0)).abs() < 1e-12);
        let change = m.tier_change_cost(Some(hot), cool, 100.0);
        assert!(change > new_ingest, "a move pays a read plus the write");
    }

    #[test]
    fn compression_reduces_storage_and_read_but_adds_compute() {
        let m = model();
        let hot = m.catalog().tier_id("Hot").unwrap();
        let obj = ObjectSpec::new("d", 100.0);
        let plain = m.total_cost(&obj, hot, 6.0, 10.0, 1.0, 0.0);
        let compressed = m.total_cost(&obj, hot, 6.0, 10.0, 4.0, 2.0);
        assert!(compressed.storage < plain.storage);
        assert!(compressed.read < plain.read);
        assert_eq!(plain.decompression, 0.0);
        assert!(compressed.decompression > 0.0);
        assert!((compressed.storage * 4.0 - plain.storage).abs() < 1e-9);
    }

    #[test]
    fn objective_respects_weights() {
        let m = model();
        let hot = m.catalog().tier_id("Hot").unwrap();
        let obj = ObjectSpec::new("d", 50.0);
        let storage_only = m.objective(
            &obj,
            hot,
            6.0,
            10.0,
            1.0,
            0.0,
            &CostWeights::new(1.0, 0.0, 0.0),
        );
        let read_only = m.objective(
            &obj,
            hot,
            6.0,
            10.0,
            1.0,
            0.0,
            &CostWeights::new(0.0, 1.0, 0.0),
        );
        let b = m.total_cost(&obj, hot, 6.0, 10.0, 1.0, 0.0);
        assert!((storage_only - b.storage).abs() < 1e-12);
        assert!((read_only - (b.read + b.decompression)).abs() < 1e-12);
    }

    #[test]
    fn latency_is_ttfb_plus_decompression() {
        let m = model();
        let archive = m.catalog().tier_id("Archive").unwrap();
        let lat = m.access_latency_seconds(archive, 12.0);
        assert!((lat - 3612.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_total_and_accumulate() {
        let a = CostBreakdown {
            storage: 1.0,
            read: 2.0,
            write: 3.0,
            decompression: 4.0,
            egress: 5.0,
        };
        let b = CostBreakdown {
            storage: 0.5,
            read: 0.5,
            write: 0.5,
            decompression: 0.5,
            egress: 0.5,
        };
        assert_eq!(a.total(), 15.0);
        let mut acc = a;
        acc.accumulate(&b);
        assert_eq!(acc.total(), 17.5);
        assert_eq!(a.add(&b).total(), 17.5);
    }

    #[test]
    #[should_panic(expected = "must come from the same ProviderCatalog")]
    fn mismatched_topology_is_rejected_at_construction() {
        use crate::providers::ProviderCatalog;
        // A topology for the 12-tier merged catalog paired with the 4-tier
        // azure catalog would silently price egress as zero for every tier
        // it does not cover; the constructor refuses the pair instead.
        let providers = ProviderCatalog::azure_s3_gcs();
        let _ = CostModel::with_topology(TierCatalog::azure_adls_gen2(), providers.topology());
    }

    #[test]
    fn topology_adds_egress_to_cross_provider_moves_only() {
        use crate::providers::ProviderCatalog;
        let providers = ProviderCatalog::azure_s3_gcs();
        let m = CostModel::with_topology(providers.merged_catalog(), providers.topology());
        let azure_hot = m.catalog().tier_id("azure:Hot").unwrap();
        let azure_cool = m.catalog().tier_id("azure:Cool").unwrap();
        let s3_ia = m.catalog().tier_id("s3:Standard-IA").unwrap();

        // Intra-provider: same as the topology-free model.
        let single = CostModel::new(TierCatalog::azure_adls_gen2());
        let hot = single.catalog().tier_id("Hot").unwrap();
        let cool = single.catalog().tier_id("Cool").unwrap();
        assert_eq!(
            m.tier_change_cost(Some(azure_hot), azure_cool, 100.0),
            single.tier_change_cost(Some(hot), cool, 100.0)
        );
        assert_eq!(m.egress_cost(Some(azure_hot), azure_cool, 100.0), 0.0);

        // Cross-provider: the azure→s3 rate (2.0 c/GB) on top of read+write.
        let rw = m.read_write_cost(Some(azure_hot), s3_ia, 100.0);
        let eg = m.egress_cost(Some(azure_hot), s3_ia, 100.0);
        assert!((eg - 2.0 * 100.0).abs() < 1e-9);
        assert!((m.tier_change_cost(Some(azure_hot), s3_ia, 100.0) - (rw + eg)).abs() < 1e-12);
        // New ingests and stay-put moves never pay egress.
        assert_eq!(m.egress_cost(None, s3_ia, 100.0), 0.0);
        assert_eq!(m.egress_cost(Some(s3_ia), s3_ia, 100.0), 0.0);

        // The breakdown splits egress out of the write term, and the
        // objective charges it under gamma.
        let obj = ObjectSpec::new("d", 100.0).on_tier(azure_hot);
        let b = m.total_cost(&obj, s3_ia, 6.0, 0.0, 1.0, 0.0);
        assert!((b.egress - 200.0).abs() < 1e-9);
        assert!((b.write - rw).abs() < 1e-12);
        let gamma_only = m.objective(
            &obj,
            s3_ia,
            6.0,
            0.0,
            1.0,
            0.0,
            &CostWeights::new(0.0, 0.0, 1.0),
        );
        assert!((gamma_only - (b.write + b.egress)).abs() < 1e-12);
    }

    #[test]
    fn early_deletion_penalty_prorates_unmet_days() {
        let m = model();
        let cool = m.catalog().tier_id("Cool").unwrap();
        let hot = m.catalog().tier_id("Hot").unwrap();
        // Cool: 30-day window at 1.52 c/GB/month.
        let full = m.early_deletion_penalty(cool, 100.0, 0).unwrap();
        assert!((full - 1.52 * 100.0).abs() < 1e-9);
        let partial = m.early_deletion_penalty(cool, 100.0, 20).unwrap();
        assert!((partial - 1.52 * 100.0 * (10.0 / 30.0)).abs() < 1e-9);
        assert_eq!(m.early_deletion_penalty(cool, 100.0, 30).unwrap(), 0.0);
        assert_eq!(m.early_deletion_penalty(cool, 100.0, 300).unwrap(), 0.0);
        // Hot has no residency window at all.
        assert_eq!(m.early_deletion_penalty(hot, 100.0, 0).unwrap(), 0.0);
        // Unknown tiers error instead of silently costing nothing.
        assert!(m.early_deletion_penalty(TierId(99), 100.0, 0).is_err());
    }

    #[test]
    fn object_spec_validation() {
        assert!(ObjectSpec::new("ok", 1.0).validate().is_ok());
        assert!(ObjectSpec::new("neg", -1.0).validate().is_err());
        assert!(ObjectSpec::new("nan", f64::NAN).validate().is_err());
    }

    #[test]
    fn cheapest_tier_depends_on_access_frequency() {
        // The core economic trade-off the paper exploits: rarely-read data is
        // cheaper on Cool/Archive, hot data is cheaper on Hot even though its
        // storage rate is higher.
        let m = model();
        let hot = m.catalog().tier_id("Hot").unwrap();
        let archive = m.catalog().tier_id("Archive").unwrap();
        let obj = ObjectSpec::new("d", 1000.0);
        // 0 accesses over 6 months: archive wins.
        let cold_hot = m.total_cost(&obj, hot, 6.0, 0.0, 1.0, 0.0).total();
        let cold_arch = m.total_cost(&obj, archive, 6.0, 0.0, 1.0, 0.0).total();
        assert!(cold_arch < cold_hot);
        // 100 full reads over 6 months: hot wins.
        let busy_hot = m.total_cost(&obj, hot, 6.0, 100.0, 1.0, 0.0).total();
        let busy_arch = m.total_cost(&obj, archive, 6.0, 100.0, 1.0, 0.0).total();
        assert!(busy_hot < busy_arch);
    }
}
