//! Multi-provider tier catalogs and the inter-provider egress cost matrix.
//!
//! The paper optimizes placement inside a single provider's tier ladder
//! (Azure ADLS Gen2, Tables I/XII). SkyStore-style cross-cloud placement
//! adds a second axis: each provider ships its own ladder (with its own
//! storage/read rates, latencies and minimum-residency rules), and moving
//! data *between* providers pays an egress charge per GB billed by the
//! source provider. [`ProviderCatalog`] models that world:
//!
//! * a named list of providers, each carrying a [`TierCatalog`],
//! * a dense per-provider-pair egress matrix in **cents/GB** (zero on the
//!   diagonal — intra-provider moves only pay the usual read+write),
//! * [`ProviderCatalog::merged_catalog`] — the flattened "merged tier
//!   space": one [`TierCatalog`] concatenating every provider's ladder
//!   with `provider:tier` qualified names, so every existing solver
//!   (greedy, matching, branch-and-bound, the schedule DP) can search
//!   across providers without modification,
//! * [`ProviderTopology`] — the companion mapping from merged [`TierId`]s
//!   back to providers plus the egress matrix; attached to a
//!   [`CostModel`](crate::CostModel) it makes `tier_change_cost` (and
//!   therefore the billing engine and the OPTASSIGN objective) egress
//!   aware.
//!
//! The shipped [`ProviderCatalog::azure_s3_gcs`] combines the Azure ladder
//! of Table I with the S3- and GCS-style ladders of
//! [`TierCatalog::aws_s3`] / [`TierCatalog::gcp_gcs`]. Its default egress
//! matrix models *discounted interconnect* rates (~2–2.5 cents/GB, the
//! committed-use / direct-peering pricing cross-cloud systems negotiate);
//! scale it with [`ProviderCatalog::with_egress_scale`] to study the
//! public-internet rates (~9–12 cents/GB, scale ≈ 5) where egress kills
//! most cross-provider moves.

use crate::error::CloudSimError;
use crate::tiers::{Tier, TierCatalog, TierId};
use serde::{Deserialize, Serialize};

/// Identifier of a provider inside a [`ProviderCatalog`] (dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProviderId(pub usize);

impl ProviderId {
    /// Index of this provider inside its catalog.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for ProviderId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "provider#{}", self.0)
    }
}

/// One cloud provider: a name and its tier ladder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Provider {
    /// Short provider name ("azure", "s3", "gcs", ...). Used as the prefix
    /// of qualified tier names in the merged catalog.
    pub name: String,
    /// The provider's tier ladder (ordered fastest to archival, like any
    /// [`TierCatalog`]).
    pub tiers: TierCatalog,
}

/// Provider identity for every tier of a merged catalog, plus the egress
/// matrix — everything a [`CostModel`](crate::CostModel) needs to price
/// cross-provider transitions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProviderTopology {
    /// Provider of each merged tier, indexed by `TierId::index()`.
    provider_of: Vec<ProviderId>,
    /// Provider names, indexed by `ProviderId::index()`.
    names: Vec<String>,
    /// Egress rates in cents/GB: `egress[from][to]`.
    egress_cents_per_gb: Vec<Vec<f64>>,
}

/// Shared egress lookup: zero within a provider, the matrix rate across,
/// and silently zero for out-of-range ids (callers validate ids at catalog
/// construction time).
fn egress_lookup(matrix: &[Vec<f64>], from: ProviderId, to: ProviderId) -> f64 {
    if from == to {
        return 0.0;
    }
    matrix
        .get(from.index())
        .and_then(|row| row.get(to.index()))
        .copied()
        .unwrap_or(0.0)
}

impl ProviderTopology {
    /// Number of merged tiers the topology covers — must equal the merged
    /// catalog's tier count for the pair to be used together.
    pub fn tier_count(&self) -> usize {
        self.provider_of.len()
    }

    /// The provider owning a merged tier, or `None` for out-of-range ids.
    pub fn provider_of(&self, tier: TierId) -> Option<ProviderId> {
        self.provider_of.get(tier.index()).copied()
    }

    /// Name of a provider.
    pub fn provider_name(&self, id: ProviderId) -> Option<&str> {
        self.names.get(id.index()).map(|s| s.as_str())
    }

    /// Number of providers.
    pub fn provider_count(&self) -> usize {
        self.names.len()
    }

    /// Egress rate (cents/GB) for moving data from `from` to `to`; zero
    /// within a provider or for unknown providers.
    pub fn egress_rate(&self, from: ProviderId, to: ProviderId) -> f64 {
        egress_lookup(&self.egress_cents_per_gb, from, to)
    }

    /// Egress rate (cents/GB) between the providers of two *merged tiers*;
    /// zero when both tiers belong to the same provider.
    pub fn tier_egress_rate(&self, from: TierId, to: TierId) -> f64 {
        match (self.provider_of(from), self.provider_of(to)) {
            (Some(f), Some(t)) => self.egress_rate(f, t),
            _ => 0.0,
        }
    }

    /// True if the two merged tiers belong to different providers.
    pub fn crosses_providers(&self, from: TierId, to: TierId) -> bool {
        match (self.provider_of(from), self.provider_of(to)) {
            (Some(f), Some(t)) => f != t,
            _ => false,
        }
    }
}

/// A catalog of named providers with an inter-provider egress cost matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProviderCatalog {
    providers: Vec<Provider>,
    /// `egress_cents_per_gb[from][to]`, zero diagonal.
    egress_cents_per_gb: Vec<Vec<f64>>,
}

impl ProviderCatalog {
    /// Build a provider catalog. `egress_cents_per_gb[from][to]` must be a
    /// square matrix matching the provider count, with finite non-negative
    /// rates and a zero diagonal. Every provider must quote the same
    /// `compute_cost_cents_per_second` — the merged catalog carries a
    /// single compute rate, and silently picking one provider's would
    /// misprice decompression on the others' tiers.
    pub fn new(
        providers: Vec<Provider>,
        egress_cents_per_gb: Vec<Vec<f64>>,
    ) -> Result<Self, CloudSimError> {
        if providers.is_empty() {
            return Err(CloudSimError::EmptyCatalog);
        }
        let compute = providers[0].tiers.compute_cost_cents_per_second;
        for p in &providers {
            if p.tiers.compute_cost_cents_per_second != compute {
                return Err(CloudSimError::InvalidParameter {
                    name: "compute_cost_cents_per_second",
                    value: p.tiers.compute_cost_cents_per_second,
                });
            }
        }
        let n = providers.len();
        if egress_cents_per_gb.len() != n {
            return Err(CloudSimError::InvalidEgressMatrix(format!(
                "expected {n} rows, got {}",
                egress_cents_per_gb.len()
            )));
        }
        for (i, row) in egress_cents_per_gb.iter().enumerate() {
            if row.len() != n {
                return Err(CloudSimError::InvalidEgressMatrix(format!(
                    "row {i} has {} entries, expected {n}",
                    row.len()
                )));
            }
            for (j, &rate) in row.iter().enumerate() {
                if !rate.is_finite() || rate < 0.0 {
                    return Err(CloudSimError::InvalidEgressMatrix(format!(
                        "rate [{i}][{j}] = {rate} is not a finite non-negative number"
                    )));
                }
                if i == j && rate != 0.0 {
                    return Err(CloudSimError::InvalidEgressMatrix(format!(
                        "diagonal entry [{i}][{i}] = {rate} must be zero"
                    )));
                }
            }
        }
        Ok(ProviderCatalog {
            providers,
            egress_cents_per_gb,
        })
    }

    /// The shipped three-provider catalog: the Azure ADLS Gen2 ladder of
    /// Table I plus the S3- and GCS-style ladders, with a discounted
    /// interconnect egress matrix (cents/GB):
    ///
    /// | from \ to | azure | s3  | gcs |
    /// |-----------|-------|-----|-----|
    /// | azure     | 0     | 2.0 | 2.0 |
    /// | s3        | 2.1   | 0   | 2.1 |
    /// | gcs       | 2.5   | 2.5 | 0   |
    pub fn azure_s3_gcs() -> Self {
        let providers = vec![
            Provider {
                name: "azure".to_string(),
                tiers: TierCatalog::azure_adls_gen2(),
            },
            Provider {
                name: "s3".to_string(),
                tiers: TierCatalog::aws_s3(),
            },
            Provider {
                name: "gcs".to_string(),
                tiers: TierCatalog::gcp_gcs(),
            },
        ];
        let egress = vec![
            vec![0.0, 2.0, 2.0],
            vec![2.1, 0.0, 2.1],
            vec![2.5, 2.5, 0.0],
        ];
        // Static data satisfying every `ProviderCatalog::new` invariant
        // (square egress matrix, zero diagonal, shared compute rate);
        // constructed directly so the shipped catalog is panic-free.
        ProviderCatalog {
            providers,
            egress_cents_per_gb: egress,
        }
    }

    /// Scale every egress rate by `scale` (>= 0). `scale = 0` models free
    /// interconnect, the default 1 the discounted rates, and ~5 the public
    /// internet egress prices.
    pub fn with_egress_scale(mut self, scale: f64) -> Result<Self, CloudSimError> {
        if !scale.is_finite() || scale < 0.0 {
            return Err(CloudSimError::InvalidParameter {
                name: "egress_scale",
                value: scale,
            });
        }
        for row in &mut self.egress_cents_per_gb {
            for rate in row.iter_mut() {
                *rate *= scale;
            }
        }
        Ok(self)
    }

    /// Number of providers.
    pub fn len(&self) -> usize {
        self.providers.len()
    }

    /// True if the catalog has no providers (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.providers.is_empty()
    }

    /// Iterate over `(ProviderId, &Provider)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ProviderId, &Provider)> {
        self.providers
            .iter()
            .enumerate()
            .map(|(i, p)| (ProviderId(i), p))
    }

    /// Look up a provider by id.
    pub fn provider(&self, id: ProviderId) -> Result<&Provider, CloudSimError> {
        self.providers
            .get(id.0)
            .ok_or_else(|| CloudSimError::UnknownProvider(format!("{id}")))
    }

    /// Look up a provider id by (case-sensitive) name.
    pub fn provider_id(&self, name: &str) -> Result<ProviderId, CloudSimError> {
        self.providers
            .iter()
            .position(|p| p.name == name)
            .map(ProviderId)
            .ok_or_else(|| CloudSimError::UnknownProvider(name.to_string()))
    }

    /// Egress rate (cents/GB) from one provider to another.
    pub fn egress_rate(&self, from: ProviderId, to: ProviderId) -> f64 {
        egress_lookup(&self.egress_cents_per_gb, from, to)
    }

    /// The merged tier space: every provider's ladder concatenated into one
    /// [`TierCatalog`], tiers renamed to `provider:tier` ("azure:Hot",
    /// "s3:Deep-Archive", ...). Merged [`TierId`]s are dense: provider 0's
    /// tiers come first in ladder order, then provider 1's, and so on — so
    /// for the home provider at index 0 the merged ids coincide with its
    /// local ids. The merged compute rate is the one shared by every
    /// provider (enforced by [`ProviderCatalog::new`]).
    pub fn merged_catalog(&self) -> TierCatalog {
        let mut tiers: Vec<Tier> = Vec::new();
        for p in &self.providers {
            for (_, t) in p.tiers.iter() {
                let mut t = t.clone();
                t.name = format!("{}:{}", p.name, t.name);
                tiers.push(t);
            }
        }
        // All providers share one compute rate, validated at construction —
        // which also guarantees non-empty ladders, so the merge is direct.
        let compute = self.providers[0].tiers.compute_cost_cents_per_second;
        let mut merged = TierCatalog::from_tiers(tiers);
        merged.compute_cost_cents_per_second = compute;
        merged
    }

    /// The provider identity + egress companion of [`Self::merged_catalog`].
    pub fn topology(&self) -> ProviderTopology {
        let mut provider_of = Vec::new();
        for (id, p) in self.iter() {
            provider_of.extend(std::iter::repeat(id).take(p.tiers.len()));
        }
        ProviderTopology {
            provider_of,
            names: self.providers.iter().map(|p| p.name.clone()).collect(),
            egress_cents_per_gb: self.egress_cents_per_gb.clone(),
        }
    }

    /// Index of a provider's first tier inside the merged catalog — the
    /// single source of truth for the "provider 0's tiers first, in ladder
    /// order" layout that [`Self::merged_catalog`] and [`Self::topology`]
    /// produce by concatenation.
    fn tier_offset(&self, id: ProviderId) -> Result<usize, CloudSimError> {
        if id.index() >= self.providers.len() {
            return Err(CloudSimError::UnknownProvider(format!("{id}")));
        }
        Ok(self.providers[..id.index()]
            .iter()
            .map(|p| p.tiers.len())
            .sum())
    }

    /// The merged [`TierId`]s belonging to one provider, in ladder order.
    pub fn provider_tier_ids(&self, id: ProviderId) -> Result<Vec<TierId>, CloudSimError> {
        let offset = self.tier_offset(id)?;
        let len = self.provider(id)?.tiers.len();
        Ok((offset..offset + len).map(TierId).collect())
    }

    /// The merged [`TierId`] of `tier_name` inside `provider_name`.
    pub fn merged_tier_id(
        &self,
        provider_name: &str,
        tier_name: &str,
    ) -> Result<TierId, CloudSimError> {
        let pid = self.provider_id(provider_name)?;
        let local = self.provider(pid)?.tiers.tier_id(tier_name)?;
        Ok(TierId(self.tier_offset(pid)? + local.index()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_catalog_merges_three_ladders() {
        let cat = ProviderCatalog::azure_s3_gcs();
        assert_eq!(cat.len(), 3);
        assert!(!cat.is_empty());
        let merged = cat.merged_catalog();
        assert_eq!(merged.len(), 12);
        // Qualified names resolve, and provider 0's merged ids coincide
        // with its local ids.
        assert_eq!(merged.tier_id("azure:Hot").unwrap(), TierId(1));
        assert_eq!(
            merged.tier_id("azure:Hot").unwrap(),
            cat.merged_tier_id("azure", "Hot").unwrap()
        );
        assert_eq!(
            merged.tier_id("s3:Deep-Archive").unwrap(),
            cat.merged_tier_id("s3", "Deep-Archive").unwrap()
        );
        assert_eq!(merged.tier_id("gcs:Archive").unwrap(), TierId(11));
        // Per-tier parameters survive the merge unchanged.
        let hot = merged.tier(TierId(1)).unwrap();
        assert_eq!(hot.storage_cost_cents_per_gb_month, 2.08);
        assert_eq!(merged.compute_cost_cents_per_second, 0.001);
    }

    #[test]
    fn topology_maps_merged_tiers_to_providers() {
        let cat = ProviderCatalog::azure_s3_gcs();
        let topo = cat.topology();
        assert_eq!(topo.provider_count(), 3);
        assert_eq!(topo.provider_of(TierId(0)), Some(ProviderId(0)));
        assert_eq!(topo.provider_of(TierId(3)), Some(ProviderId(0)));
        assert_eq!(topo.provider_of(TierId(4)), Some(ProviderId(1)));
        assert_eq!(topo.provider_of(TierId(11)), Some(ProviderId(2)));
        assert_eq!(topo.provider_of(TierId(12)), None);
        assert_eq!(topo.provider_name(ProviderId(1)), Some("s3"));
        // Egress: zero within a provider, the matrix rate across.
        assert_eq!(topo.tier_egress_rate(TierId(0), TierId(3)), 0.0);
        assert_eq!(topo.tier_egress_rate(TierId(1), TierId(4)), 2.0);
        assert_eq!(topo.tier_egress_rate(TierId(8), TierId(1)), 2.5);
        assert!(topo.crosses_providers(TierId(1), TierId(4)));
        assert!(!topo.crosses_providers(TierId(1), TierId(2)));
    }

    #[test]
    fn provider_tier_ids_partition_the_merged_space() {
        let cat = ProviderCatalog::azure_s3_gcs();
        let mut all: Vec<TierId> = Vec::new();
        for (id, _) in cat.iter() {
            all.extend(cat.provider_tier_ids(id).unwrap());
        }
        assert_eq!(all, cat.merged_catalog().tier_ids());
        assert!(cat.provider_tier_ids(ProviderId(9)).is_err());
    }

    #[test]
    fn name_lookups_and_unknown_names() {
        let cat = ProviderCatalog::azure_s3_gcs();
        assert_eq!(cat.provider_id("gcs").unwrap(), ProviderId(2));
        assert_eq!(cat.provider(ProviderId(0)).unwrap().name, "azure");
        assert!(matches!(
            cat.provider_id("oci"),
            Err(CloudSimError::UnknownProvider(_))
        ));
        assert!(cat.provider(ProviderId(7)).is_err());
        assert!(cat.merged_tier_id("azure", "Glacier-IR").is_err());
        assert!(cat.merged_tier_id("oci", "Hot").is_err());
    }

    #[test]
    fn egress_scaling() {
        let cat = ProviderCatalog::azure_s3_gcs();
        let scaled = cat.clone().with_egress_scale(5.0).unwrap();
        assert_eq!(
            scaled.egress_rate(ProviderId(0), ProviderId(1)),
            5.0 * cat.egress_rate(ProviderId(0), ProviderId(1))
        );
        assert_eq!(scaled.egress_rate(ProviderId(1), ProviderId(1)), 0.0);
        let free = cat.clone().with_egress_scale(0.0).unwrap();
        assert_eq!(free.egress_rate(ProviderId(2), ProviderId(0)), 0.0);
        assert!(cat.with_egress_scale(f64::NAN).is_err());
    }

    #[test]
    fn malformed_catalogs_rejected() {
        let one = vec![Provider {
            name: "a".to_string(),
            tiers: TierCatalog::azure_adls_gen2(),
        }];
        assert!(matches!(
            ProviderCatalog::new(vec![], vec![]),
            Err(CloudSimError::EmptyCatalog)
        ));
        // Wrong shape.
        assert!(matches!(
            ProviderCatalog::new(one.clone(), vec![]),
            Err(CloudSimError::InvalidEgressMatrix(_))
        ));
        assert!(matches!(
            ProviderCatalog::new(one.clone(), vec![vec![0.0, 1.0]]),
            Err(CloudSimError::InvalidEgressMatrix(_))
        ));
        // Non-zero diagonal and negative rates.
        assert!(matches!(
            ProviderCatalog::new(one.clone(), vec![vec![1.0]]),
            Err(CloudSimError::InvalidEgressMatrix(_))
        ));
        let two = vec![
            Provider {
                name: "a".to_string(),
                tiers: TierCatalog::azure_adls_gen2(),
            },
            Provider {
                name: "b".to_string(),
                tiers: TierCatalog::aws_s3(),
            },
        ];
        assert!(matches!(
            ProviderCatalog::new(two, vec![vec![0.0, -1.0], vec![1.0, 0.0]]),
            Err(CloudSimError::InvalidEgressMatrix(_))
        ));
        // A valid single-provider catalog works and has zero egress.
        let solo = ProviderCatalog::new(one, vec![vec![0.0]]).unwrap();
        assert_eq!(solo.egress_rate(ProviderId(0), ProviderId(0)), 0.0);
        assert_eq!(solo.merged_catalog().len(), 4);
    }

    #[test]
    fn mismatched_compute_rates_are_rejected() {
        let mut cheap_compute = TierCatalog::aws_s3();
        cheap_compute.compute_cost_cents_per_second = 0.0005;
        let providers = vec![
            Provider {
                name: "a".to_string(),
                tiers: TierCatalog::azure_adls_gen2(),
            },
            Provider {
                name: "b".to_string(),
                tiers: cheap_compute,
            },
        ];
        // The merged catalog carries a single compute rate; divergent
        // per-provider rates would silently misprice decompression.
        assert!(matches!(
            ProviderCatalog::new(providers, vec![vec![0.0, 1.0], vec![1.0, 0.0]]),
            Err(CloudSimError::InvalidParameter {
                name: "compute_cost_cents_per_second",
                ..
            })
        ));
    }
}
