//! Deterministic parallel fan-out over index ranges.
//!
//! The solvers and sweeps in the upper crates are embarrassingly parallel
//! over independent items (partitions of a cost table, datasets of a
//! schedule plan, configurations of a sweep), but their results must be
//! **bit-for-bit identical** to the sequential path: the optimizer output
//! feeds golden-pinned tables and differential oracles. This module
//! provides the one fan-out shape that guarantees it:
//!
//! * work is chunked by **index** into contiguous slices,
//! * each worker computes its slice with the shared closure,
//! * results are merged back **in index order**.
//!
//! Because every item's result is a pure function of `(index, item)` and
//! floating-point arithmetic is performed per item exactly as the
//! sequential loop would, the output is independent of the thread count —
//! [`parallel_map_with_threads`] with 1 thread *is* the sequential loop,
//! and the determinism proptests pin `threads = n` against it. No work
//! stealing, no reduction-order dependence, no rayon in the shims.

/// Upper bound on worker threads: fan-outs nest (a sweep over
/// configurations may build cost tables in parallel inside each
/// configuration), so each level stays modest instead of oversubscribing
/// quadratically.
const MAX_THREADS: usize = 8;

/// Number of hardware threads to fan out over, capped at [`MAX_THREADS`].
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_THREADS)
}

/// Map `f` over `items` in parallel with the default thread count,
/// returning results in index order. Bit-for-bit identical to
/// `items.iter().enumerate().map(|(i, t)| f(i, t)).collect()`.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_with_threads(items, default_threads(), f)
}

/// [`parallel_map`] with an explicit thread count (1 = plain sequential
/// loop). The thread count affects only wall-clock time, never the output:
/// chunks are contiguous index ranges and the merge concatenates them in
/// chunk order.
pub fn parallel_map_with_threads<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .enumerate()
            .map(|(ci, slice)| {
                let base = ci * chunk_len;
                scope.spawn(move || {
                    slice
                        .iter()
                        .enumerate()
                        .map(|(j, item)| f(base + j, item))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(chunk) => chunks.push(chunk),
                // Re-raise the worker's own panic payload on the caller
                // thread instead of wrapping it in a second panic.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    let mut out = Vec::with_capacity(items.len());
    for chunk in chunks {
        out.extend(chunk);
    }
    out
}

/// Map `f` over `items` in parallel **with mutable access to each item**,
/// returning results in index order — the in-place counterpart of
/// [`parallel_map`] for workers that update owned per-item state (e.g. the
/// serving engine patching each account shard's cost table) while the
/// merge stays deterministic. Bit-for-bit identical to
/// `items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect()`.
pub fn parallel_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    parallel_map_mut_with_threads(items, default_threads(), f)
}

/// [`parallel_map_mut`] with an explicit thread count (1 = plain
/// sequential loop). Items are chunked into contiguous disjoint
/// `chunks_mut` ranges, so each item is visited by exactly one worker and
/// the thread count affects only wall-clock time, never the output or the
/// final item states.
pub fn parallel_map_mut_with_threads<T, R, F>(items: &mut [T], threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let n = items.len();
    let mut chunks: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks_mut(chunk_len)
            .enumerate()
            .map(|(ci, slice)| {
                let base = ci * chunk_len;
                scope.spawn(move || {
                    slice
                        .iter_mut()
                        .enumerate()
                        .map(|(j, item)| f(base + j, item))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(chunk) => chunks.push(chunk),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    let mut out = Vec::with_capacity(n);
    for chunk in chunks {
        out.extend(chunk);
    }
    out
}

/// Fallible [`parallel_map`]: `f` returns `Result` per item and the whole
/// fan-out returns `Ok(results)` only when every item succeeded, else the
/// error of the **lowest-indexed** failing item — the same error a
/// sequential short-circuiting loop would surface, regardless of which
/// worker hit its error first. Workers always run their whole chunk (no
/// cross-thread cancellation), so the choice of surfaced error is a pure
/// index-order fold over per-item results and never racy.
pub fn try_parallel_map<T, R, E, F>(items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    try_parallel_map_with_threads(items, default_threads(), f)
}

/// [`try_parallel_map`] with an explicit thread count (1 = sequential
/// short-circuiting loop, except that later items are still evaluated; the
/// *returned* error is identical either way).
pub fn try_parallel_map_with_threads<T, R, E, F>(
    items: &[T],
    threads: usize,
    f: F,
) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    collect_first_error(parallel_map_with_threads(items, threads, f))
}

/// Fallible [`parallel_map_mut`]: every item is visited (each worker runs
/// its whole chunk, so all per-item state updates happen exactly as in the
/// infallible form), then the results fold to `Ok(all)` or the error of
/// the lowest-indexed failing item.
pub fn try_parallel_map_mut<T, R, E, F>(items: &mut [T], f: F) -> Result<Vec<R>, E>
where
    T: Send,
    R: Send,
    E: Send,
    F: Fn(usize, &mut T) -> Result<R, E> + Sync,
{
    try_parallel_map_mut_with_threads(items, default_threads(), f)
}

/// [`try_parallel_map_mut`] with an explicit thread count.
pub fn try_parallel_map_mut_with_threads<T, R, E, F>(
    items: &mut [T],
    threads: usize,
    f: F,
) -> Result<Vec<R>, E>
where
    T: Send,
    R: Send,
    E: Send,
    F: Fn(usize, &mut T) -> Result<R, E> + Sync,
{
    collect_first_error(parallel_map_mut_with_threads(items, threads, f))
}

/// Fold per-item `Result`s in index order: all-`Ok` collects, otherwise
/// the first (lowest-index) error wins deterministically.
fn collect_first_error<R, E>(results: Vec<Result<R, E>>) -> Result<Vec<R>, E> {
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        out.push(r?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, |_, &x: &u32| x * 2).is_empty());
        assert_eq!(parallel_map(&[7u32], |i, &x| (i, x)), vec![(0, 7)]);
    }

    #[test]
    fn results_arrive_in_index_order_for_every_thread_count() {
        let items: Vec<u64> = (0..103).collect();
        let expected: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, x)| i as u64 + x)
            .collect();
        for threads in 1..=11 {
            let got = parallel_map_with_threads(&items, threads, |i, &x| i as u64 + x);
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn float_results_are_bit_identical_across_thread_counts() {
        // Accumulating arithmetic per item: the merge must never change the
        // per-item value, only the wall-clock.
        let items: Vec<f64> = (0..257).map(|i| 0.1 * i as f64 + 0.037).collect();
        let f = |i: usize, &x: &f64| (x * 1.0001 + i as f64 / 3.0).sin() * x;
        let sequential = parallel_map_with_threads(&items, 1, f);
        for threads in [2, 3, 5, 8, 13] {
            let parallel = parallel_map_with_threads(&items, threads, f);
            for (a, b) in sequential.iter().zip(&parallel) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads = {threads}");
            }
        }
    }

    #[test]
    fn mutable_fan_out_is_thread_count_independent() {
        let seed: Vec<f64> = (0..131).map(|i| 0.3 * i as f64 + 0.011).collect();
        let f = |i: usize, x: &mut f64| {
            *x = (*x * 1.0001 + i as f64 / 7.0).cos() * *x;
            x.to_bits()
        };
        let mut sequential = seed.clone();
        let expected = parallel_map_mut_with_threads(&mut sequential, 1, f);
        for threads in [2, 3, 5, 8, 13] {
            let mut items = seed.clone();
            let got = parallel_map_mut_with_threads(&mut items, threads, f);
            assert_eq!(got, expected, "results diverged at threads = {threads}");
            for (a, b) in sequential.iter().zip(&items) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "state diverged at threads = {threads}"
                );
            }
        }
        let mut empty: Vec<u32> = Vec::new();
        assert!(parallel_map_mut(&mut empty, |_, x: &mut u32| *x).is_empty());
    }

    #[test]
    fn fallible_fan_out_surfaces_the_lowest_indexed_error_for_every_thread_count() {
        // Items 37 and 5 both fail; index order says 5 must win no matter
        // which worker finished first.
        let items: Vec<u32> = (0..100).collect();
        for threads in [1usize, 2, 3, 8, 13] {
            let got = try_parallel_map_with_threads(&items, threads, |_, &x| {
                if x == 5 || x == 37 {
                    Err(format!("item {x} failed"))
                } else {
                    Ok(x * 2)
                }
            });
            assert_eq!(got, Err("item 5 failed".to_string()), "threads = {threads}");
            let ok =
                try_parallel_map_with_threads(&items, threads, |_, &x| Ok::<u32, String>(x * 2))
                    .unwrap();
            assert_eq!(ok, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn fallible_mutable_fan_out_still_visits_every_item() {
        // Even when an early item errors, later items' state updates must
        // happen (workers run whole chunks) so that error handling does not
        // depend on the thread count.
        for threads in [1usize, 2, 4, 8] {
            let mut items: Vec<u64> = (0..50).collect();
            let got = try_parallel_map_mut_with_threads(&mut items, threads, |_, x| {
                *x += 1;
                if *x == 8 {
                    Err("boom")
                } else {
                    Ok(*x)
                }
            });
            assert_eq!(got, Err("boom"), "threads = {threads}");
            let expected: Vec<u64> = (1..=50).collect();
            assert_eq!(items, expected, "threads = {threads}");
        }
    }

    #[test]
    fn thread_count_is_clamped_to_item_count() {
        // More threads than items must not panic or drop items.
        let items = [1, 2, 3];
        assert_eq!(
            parallel_map_with_threads(&items, 64, |_, &x| x),
            vec![1, 2, 3]
        );
        assert!(default_threads() >= 1);
    }
}
