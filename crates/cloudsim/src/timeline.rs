//! Day-granular billing timeline: day-stamped events and per-object
//! placement schedules with mid-horizon tier transitions.
//!
//! The legacy simulator replayed *monthly aggregated* events against a
//! placement frozen for the whole horizon. Real providers bill at a finer
//! granularity: storage is pro-rated by days, tier changes are charged in
//! the billing period they occur, and leaving Cool/Archive before the
//! minimum residency period is billed for exactly the *days* of unmet
//! residency (this is how Azure bills early deletion). This module provides
//! the day-granular time axis the rebuilt [`BillingSimulator`] engine runs
//! on:
//!
//! * [`BillingEvent`] — an access stamped with the **day** (0-based) it
//!   happens on; [`events_from_monthly`] lifts a legacy monthly trace onto
//!   the day axis (each month `m` maps to day `m * DAYS_PER_MONTH`, the
//!   first day of the corresponding billing period, so period totals are
//!   preserved).
//! * [`PlacementSchedule`] — the placement of one object *over time*: an
//!   initial [`Placement`] plus day-stamped transitions. A schedule with no
//!   transitions reproduces the legacy frozen placement.
//! * [`ScheduleSegment`] — one maximal `[start_day, end_day)` span during
//!   which the placement is constant; [`PlacementSchedule::segments`]
//!   decomposes a schedule over a horizon into these spans, which is what
//!   the billing engine streams over.
//!
//! A billing **period** is the fixed [`DAYS_PER_MONTH`]-day window the
//! provider invoices on; [`period_of_day`] maps a day to its period. The
//! whole-month convention (30 days) matches the `early_deletion_days / 30`
//! arithmetic the tier catalog and the paper's Table I use.
//!
//! [`BillingSimulator`]: crate::billing::BillingSimulator

use crate::billing::{AccessEvent, AccessKind, Placement};
use serde::{Deserialize, Serialize};

/// Days per billing period ("month"). All month-denominated rates
/// (`storage_cost_cents_per_gb_month`, `early_deletion_days / 30`) are
/// pro-rated against this length.
pub const DAYS_PER_MONTH: u32 = 30;

/// First day of billing period `month` (0-based).
pub fn first_day_of_month(month: u32) -> u32 {
    month * DAYS_PER_MONTH
}

/// Billing period (0-based) containing `day`.
pub fn period_of_day(day: u32) -> u32 {
    day / DAYS_PER_MONTH
}

/// One access to an object, stamped with the day it happens on.
///
/// The day-granular counterpart of [`AccessEvent`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BillingEvent {
    /// Name of the object being accessed (must match an `ObjectSpec`).
    pub object: String,
    /// Day index (0-based) within the billing horizon.
    pub day: u32,
    /// Read or write.
    pub kind: AccessKind,
    /// Volume touched by this access in GB.
    pub volume_gb: f64,
}

impl BillingEvent {
    /// Convenience constructor for a read event.
    pub fn read(object: impl Into<String>, day: u32, volume_gb: f64) -> Self {
        BillingEvent {
            object: object.into(),
            day,
            kind: AccessKind::Read,
            volume_gb,
        }
    }

    /// Convenience constructor for a write event.
    pub fn write(object: impl Into<String>, day: u32, volume_gb: f64) -> Self {
        BillingEvent {
            object: object.into(),
            day,
            kind: AccessKind::Write,
            volume_gb,
        }
    }

    /// Lift a monthly event onto the day axis: month `m` becomes day
    /// `m * DAYS_PER_MONTH`, i.e. the first day of the same billing period.
    pub fn from_monthly(ev: &AccessEvent) -> Self {
        BillingEvent {
            object: ev.object.clone(),
            day: first_day_of_month(ev.month),
            kind: ev.kind,
            volume_gb: ev.volume_gb,
        }
    }
}

/// Lift a legacy monthly trace onto the day axis, preserving event order
/// (and therefore the exact floating-point accumulation order of the
/// legacy replay).
pub fn events_from_monthly(events: &[AccessEvent]) -> Vec<BillingEvent> {
    events.iter().map(BillingEvent::from_monthly).collect()
}

/// Sentinel id in [`EventColumns::object_ids`] for events naming an object
/// the resolver does not know (such accesses are ignored by the billing
/// engine, matching the historical behaviour).
pub const UNKNOWN_OBJECT: u32 = u32::MAX;

/// An access trace in struct-of-arrays layout: one parallel column per
/// event field, in trace order.
///
/// The billing replay loop touches four narrow fields per event (day,
/// object id, kind, volume); storing them as parallel `Vec`s instead of a
/// `Vec` of [`BillingEvent`] structs removes the per-event `String` from
/// the hot cache lines entirely and lets the engine stream each column
/// sequentially. Object names are resolved to interned ids and days are
/// bucketed into billing periods **once**, at column-build time — the
/// replay itself (`BillingSimulator::run_columns`) never hashes a name or
/// divides a day again.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventColumns {
    /// Day stamp of each event (0-based).
    pub days: Vec<u32>,
    /// Billing period of each event (`day / DAYS_PER_MONTH`, precomputed).
    pub periods: Vec<u32>,
    /// Interned object id of each event, or [`UNKNOWN_OBJECT`].
    pub object_ids: Vec<u32>,
    /// Read or write.
    pub kinds: Vec<AccessKind>,
    /// Volume touched in GB.
    pub volumes: Vec<f64>,
}

impl EventColumns {
    /// Build columns from a day-stamped trace, resolving each object name
    /// with `resolve` (typically the simulator's intern table). Unresolved
    /// names get [`UNKNOWN_OBJECT`].
    pub fn from_events(
        events: &[BillingEvent],
        mut resolve: impl FnMut(&str) -> Option<u32>,
    ) -> Self {
        let n = events.len();
        let mut cols = EventColumns {
            days: Vec::with_capacity(n),
            periods: Vec::with_capacity(n),
            object_ids: Vec::with_capacity(n),
            kinds: Vec::with_capacity(n),
            volumes: Vec::with_capacity(n),
        };
        for ev in events {
            cols.days.push(ev.day);
            cols.periods.push(period_of_day(ev.day));
            cols.object_ids
                .push(resolve(&ev.object).unwrap_or(UNKNOWN_OBJECT));
            cols.kinds.push(ev.kind);
            cols.volumes.push(ev.volume_gb);
        }
        cols
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.days.len()
    }

    /// True if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.days.is_empty()
    }

    /// Append one already-resolved event, preserving trace order — the
    /// streaming counterpart of [`EventColumns::from_events`] for callers
    /// (like the serving engine's ingestion path) that accumulate batches
    /// incrementally instead of materializing a `Vec<BillingEvent>` first.
    pub fn push_resolved(&mut self, day: u32, object_id: u32, kind: AccessKind, volume_gb: f64) {
        self.days.push(day);
        self.periods.push(period_of_day(day));
        self.object_ids.push(object_id);
        self.kinds.push(kind);
        self.volumes.push(volume_gb);
    }

    /// Append every event of `other` after this trace's events, preserving
    /// both traces' internal order (batch concatenation).
    pub fn extend_from(&mut self, other: &EventColumns) {
        self.days.extend_from_slice(&other.days);
        self.periods.extend_from_slice(&other.periods);
        self.object_ids.extend_from_slice(&other.object_ids);
        self.kinds.extend_from_slice(&other.kinds);
        self.volumes.extend_from_slice(&other.volumes);
    }

    /// The sub-trace of events with `start_day <= day < end_day`, in the
    /// original trace order — the epoch-batching primitive: a day log is
    /// sliced into `[epoch_start, epoch_end)` windows that are fed to the
    /// serving engine one batch at a time.
    pub fn filter_day_range(&self, start_day: u32, end_day: u32) -> EventColumns {
        let mut out = EventColumns::default();
        for i in 0..self.len() {
            let day = self.days[i];
            if day >= start_day && day < end_day {
                out.days.push(day);
                out.periods.push(self.periods[i]);
                out.object_ids.push(self.object_ids[i]);
                out.kinds.push(self.kinds[i]);
                out.volumes.push(self.volumes[i]);
            }
        }
        out
    }
}

/// The placement of one object over the billing horizon: an initial
/// [`Placement`] (in force from day 0) plus day-stamped transitions.
///
/// Transitions are kept sorted by strictly increasing day; a transition on a
/// day that already has one replaces it, and a transition on day 0 replaces
/// the initial placement. Each transition takes effect at the *start* of its
/// day: accesses on the transition day are billed against the new placement,
/// and the old placement's last billed day is `day - 1`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementSchedule {
    initial: Placement,
    transitions: Vec<(u32, Placement)>,
}

/// One maximal span of a [`PlacementSchedule`] during which the placement
/// is constant: the object is on `placement` for days
/// `[start_day, end_day)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleSegment {
    /// First day (inclusive) of the span.
    pub start_day: u32,
    /// First day *after* the span (exclusive).
    pub end_day: u32,
    /// The placement in force during the span.
    pub placement: Placement,
}

impl ScheduleSegment {
    /// Number of days the span covers.
    pub fn days(&self) -> u32 {
        self.end_day - self.start_day
    }
}

impl PlacementSchedule {
    /// A schedule that keeps `placement` for the whole horizon (the legacy
    /// frozen-placement behaviour).
    pub fn constant(placement: Placement) -> Self {
        PlacementSchedule {
            initial: placement,
            transitions: Vec::new(),
        }
    }

    /// Builder-style addition of a transition: from `day` onwards the object
    /// is on `placement`. A transition on day 0 replaces the initial
    /// placement; a transition on an already-scheduled day replaces it.
    pub fn with_transition(mut self, day: u32, placement: Placement) -> Self {
        if day == 0 {
            self.initial = placement;
            return self;
        }
        match self.transitions.binary_search_by_key(&day, |&(d, _)| d) {
            Ok(i) => self.transitions[i].1 = placement,
            Err(i) => self.transitions.insert(i, (day, placement)),
        }
        self
    }

    /// The placement in force from day 0.
    pub fn initial(&self) -> &Placement {
        &self.initial
    }

    /// The day-stamped transitions, sorted by strictly increasing day.
    pub fn transitions(&self) -> &[(u32, Placement)] {
        &self.transitions
    }

    /// True if the schedule never changes placement.
    pub fn is_constant(&self) -> bool {
        self.transitions.is_empty()
    }

    /// Every placement the schedule ever uses (initial + transitions), in
    /// chronological order. Used to validate tiers against a catalog.
    pub fn placements(&self) -> impl Iterator<Item = &Placement> {
        std::iter::once(&self.initial).chain(self.transitions.iter().map(|(_, p)| p))
    }

    /// The placement in force on `day`.
    pub fn placement_at(&self, day: u32) -> &Placement {
        // Number of transitions with transition day <= day.
        let n = self.transitions.partition_point(|&(d, _)| d <= day);
        if n == 0 {
            &self.initial
        } else {
            &self.transitions[n - 1].1
        }
    }

    /// Decompose the schedule over `[0, horizon_days)` into maximal
    /// constant-placement segments. Transitions at or after the horizon are
    /// ignored. Returns an empty vector for a zero-day horizon.
    pub fn segments(&self, horizon_days: u32) -> Vec<ScheduleSegment> {
        let mut segments = Vec::with_capacity(self.transitions.len() + 1);
        if horizon_days == 0 {
            return segments;
        }
        let mut current = self.initial;
        let mut start = 0u32;
        for &(day, placement) in &self.transitions {
            if day >= horizon_days {
                break;
            }
            segments.push(ScheduleSegment {
                start_day: start,
                end_day: day,
                placement: current,
            });
            current = placement;
            start = day;
        }
        segments.push(ScheduleSegment {
            start_day: start,
            end_day: horizon_days,
            placement: current,
        });
        segments
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiers::TierId;

    fn placement(tier: usize) -> Placement {
        Placement::uncompressed(TierId(tier))
    }

    #[test]
    fn day_period_arithmetic() {
        assert_eq!(first_day_of_month(0), 0);
        assert_eq!(first_day_of_month(3), 90);
        assert_eq!(period_of_day(0), 0);
        assert_eq!(period_of_day(29), 0);
        assert_eq!(period_of_day(30), 1);
        assert_eq!(period_of_day(89), 2);
    }

    #[test]
    fn monthly_events_land_on_period_start_days() {
        let monthly = vec![
            AccessEvent::read("a", 0, 1.0),
            AccessEvent::write("a", 2, 0.5),
        ];
        let daily = events_from_monthly(&monthly);
        assert_eq!(daily.len(), 2);
        assert_eq!(daily[0].day, 0);
        assert_eq!(daily[1].day, 60);
        assert_eq!(daily[1].kind, AccessKind::Write);
        assert_eq!(period_of_day(daily[1].day), 2);
    }

    #[test]
    fn constant_schedule_is_one_segment() {
        let s = PlacementSchedule::constant(placement(1));
        assert!(s.is_constant());
        let segs = s.segments(90);
        assert_eq!(segs.len(), 1);
        assert_eq!((segs[0].start_day, segs[0].end_day), (0, 90));
        assert_eq!(segs[0].days(), 90);
        assert_eq!(s.placement_at(0).tier, TierId(1));
        assert_eq!(s.placement_at(89).tier, TierId(1));
    }

    #[test]
    fn transitions_split_the_horizon() {
        let s = PlacementSchedule::constant(placement(0))
            .with_transition(30, placement(1))
            .with_transition(75, placement(2));
        let segs = s.segments(120);
        assert_eq!(segs.len(), 3);
        assert_eq!((segs[0].start_day, segs[0].end_day), (0, 30));
        assert_eq!((segs[1].start_day, segs[1].end_day), (30, 75));
        assert_eq!((segs[2].start_day, segs[2].end_day), (75, 120));
        assert_eq!(segs[0].placement.tier, TierId(0));
        assert_eq!(segs[1].placement.tier, TierId(1));
        assert_eq!(segs[2].placement.tier, TierId(2));
        // A transition takes effect at the start of its day.
        assert_eq!(s.placement_at(29).tier, TierId(0));
        assert_eq!(s.placement_at(30).tier, TierId(1));
        assert_eq!(s.placement_at(74).tier, TierId(1));
        assert_eq!(s.placement_at(75).tier, TierId(2));
    }

    #[test]
    fn transitions_stay_sorted_regardless_of_insertion_order() {
        let s = PlacementSchedule::constant(placement(0))
            .with_transition(75, placement(2))
            .with_transition(30, placement(1));
        let days: Vec<u32> = s.transitions().iter().map(|&(d, _)| d).collect();
        assert_eq!(days, vec![30, 75]);
        assert_eq!(s.placement_at(40).tier, TierId(1));
    }

    #[test]
    fn day_zero_and_duplicate_transitions_replace() {
        let s = PlacementSchedule::constant(placement(0))
            .with_transition(0, placement(3))
            .with_transition(10, placement(1))
            .with_transition(10, placement(2));
        assert_eq!(s.initial().tier, TierId(3));
        assert_eq!(s.transitions().len(), 1);
        assert_eq!(s.placement_at(10).tier, TierId(2));
    }

    #[test]
    fn transitions_beyond_the_horizon_are_ignored() {
        let s = PlacementSchedule::constant(placement(0)).with_transition(100, placement(1));
        let segs = s.segments(60);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].placement.tier, TierId(0));
        assert!(s.segments(0).is_empty());
    }

    #[test]
    fn event_columns_preserve_trace_order_and_resolve_names() {
        let events = vec![
            BillingEvent::read("a", 0, 1.5),
            BillingEvent::write("b", 31, 2.0),
            BillingEvent::read("ghost", 65, 0.5),
        ];
        let cols = EventColumns::from_events(&events, |name| match name {
            "a" => Some(0),
            "b" => Some(1),
            _ => None,
        });
        assert_eq!(cols.len(), 3);
        assert!(!cols.is_empty());
        assert_eq!(cols.days, vec![0, 31, 65]);
        assert_eq!(cols.periods, vec![0, 1, 2]);
        assert_eq!(cols.object_ids, vec![0, 1, UNKNOWN_OBJECT]);
        assert_eq!(cols.kinds[1], AccessKind::Write);
        assert_eq!(cols.volumes, vec![1.5, 2.0, 0.5]);
        assert!(EventColumns::from_events(&[], |_| None).is_empty());
    }

    #[test]
    fn event_columns_batch_api_appends_and_slices_in_trace_order() {
        let events = vec![
            BillingEvent::read("a", 0, 1.5),
            BillingEvent::write("b", 31, 2.0),
            BillingEvent::read("a", 31, 0.25),
            BillingEvent::read("b", 65, 0.5),
        ];
        let resolve = |name: &str| match name {
            "a" => Some(0),
            "b" => Some(1),
            _ => None,
        };
        let cols = EventColumns::from_events(&events, resolve);

        // push_resolved rebuilds the same columns one event at a time.
        let mut streamed = EventColumns::default();
        for ev in &events {
            streamed.push_resolved(
                ev.day,
                resolve(&ev.object).unwrap_or(UNKNOWN_OBJECT),
                ev.kind,
                ev.volume_gb,
            );
        }
        assert_eq!(streamed, cols);

        // Slicing by day windows preserves order, and re-concatenating the
        // epoch batches reproduces the full trace exactly.
        let early = cols.filter_day_range(0, 32);
        assert_eq!(early.days, vec![0, 31, 31]);
        assert_eq!(early.object_ids, vec![0, 1, 0]);
        assert_eq!(early.periods, vec![0, 1, 1]);
        let late = cols.filter_day_range(32, 90);
        assert_eq!(late.days, vec![65]);
        assert!(cols.filter_day_range(90, 300).is_empty());
        let mut rejoined = EventColumns::default();
        rejoined.extend_from(&early);
        rejoined.extend_from(&late);
        assert_eq!(rejoined, cols);
    }

    #[test]
    fn placements_iterates_every_placement() {
        let s = PlacementSchedule::constant(placement(0)).with_transition(10, placement(2));
        let tiers: Vec<usize> = s.placements().map(|p| p.tier.index()).collect();
        assert_eq!(tiers, vec![0, 2]);
    }
}
