//! The preserved sequential billing engine, kept as the differential
//! oracle for the sharded column engine.
//!
//! [`run_days_reference`] is the pre-sharding `BillingSimulator::run_days`
//! body, verbatim: one thread, `String`-keyed event resolution per event,
//! accumulating directly onto the shared monthly/per-object accumulators in
//! a single pass. The sharded engine
//! ([`crate::billing::BillingSimulator::run_columns_with_threads`]) must
//! produce **bit-for-bit identical** reports (including error values and
//! `dropped_events`) for every thread count — that is what the workspace
//! `differential_billing` suite pins against this module.

use crate::billing::{AccessKind, BillingReport, BillingSimulator, MonthlyCost};
use crate::error::CloudSimError;
use crate::timeline::{BillingEvent, DAYS_PER_MONTH};

/// Day-granular sequential replay: the original single-threaded engine.
///
/// Mirrors [`crate::billing::BillingSimulator::run_days`] semantics exactly;
/// see that method for the billing rules. This copy exists so the sharded
/// engine has a byte-stable oracle that cannot drift with it.
pub fn run_days_reference(
    sim: &BillingSimulator,
    horizon_days: u32,
    events: &[BillingEvent],
) -> Result<BillingReport, CloudSimError> {
    if horizon_days == 0 {
        return Err(CloudSimError::InvalidParameter {
            name: "horizon_days",
            value: 0.0,
        });
    }
    let n_periods = horizon_days.div_ceil(DAYS_PER_MONTH);
    let mut months: Vec<MonthlyCost> = (0..n_periods)
        .map(|m| MonthlyCost {
            month: m,
            ..Default::default()
        })
        .collect();
    // Per-object totals are accumulated in a flat vector indexed by the
    // interned name ids — the map is only rematerialized once, in the
    // final report.
    let mut totals: Vec<f64> = vec![0.0; sim.names.len()];

    // Storage + transition + residency-penalty costs, per object, by
    // streaming over its constant-placement segments.
    for (obj, &id) in sim.objects.iter().zip(&sim.object_ids) {
        let schedule = &sim.schedules[id as usize];
        let mut obj_total = 0.0;
        // Where the object is coming from and how long it has been
        // there: seeds the early-deletion accounting of the first (and
        // every later) transition.
        let mut prev_tier = obj.current_tier;
        let mut prev_days_served = obj.residency_days;
        let mut prev_stored_gb = obj.size_gb;
        for seg in schedule.segments(horizon_days) {
            let stored_gb = obj.size_gb / seg.placement.compression_ratio.max(f64::MIN_POSITIVE);

            // Pro-rated storage in every billing period the segment
            // overlaps.
            for p in seg.start_day / DAYS_PER_MONTH..=(seg.end_day - 1) / DAYS_PER_MONTH {
                let period_start = p * DAYS_PER_MONTH;
                let days = seg.end_day.min(period_start + DAYS_PER_MONTH)
                    - seg.start_day.max(period_start);
                let c = sim.model.storage_cost(
                    seg.placement.tier,
                    stored_gb,
                    days as f64 / DAYS_PER_MONTH as f64,
                );
                months[p as usize].breakdown.storage += c;
                obj_total += c;
            }

            // The move onto this segment's placement, charged in the
            // period the transition day falls in. A same-tier
            // recompression is still a physical rewrite: it pays a read
            // of the old bytes plus a write of the new ones.
            let period = (seg.start_day / DAYS_PER_MONTH) as usize;
            let (change, egress) = if prev_tier != Some(seg.placement.tier) {
                if let (true, Some(from)) = (seg.start_day > 0, prev_tier) {
                    // Mid-horizon move: the read off the old tier (and
                    // the egress, billed by the source provider) cover
                    // the bytes actually resident there.
                    (
                        sim.model.read_cost(from, prev_stored_gb, 1.0)
                            + sim.model.write_cost(seg.placement.tier, stored_gb),
                        sim.model
                            .egress_cost(prev_tier, seg.placement.tier, prev_stored_gb),
                    )
                } else {
                    // Initial move at day 0: read+write priced on the
                    // destination's stored size, egress on the bytes
                    // leaving the source.
                    (
                        sim.model
                            .read_write_cost(prev_tier, seg.placement.tier, stored_gb),
                        sim.model
                            .egress_cost(prev_tier, seg.placement.tier, prev_stored_gb),
                    )
                }
            } else if seg.start_day > 0 && stored_gb != prev_stored_gb {
                (
                    sim.model.read_cost(seg.placement.tier, prev_stored_gb, 1.0)
                        + sim.model.write_cost(seg.placement.tier, stored_gb),
                    0.0,
                )
            } else {
                (0.0, 0.0)
            };
            months[period].breakdown.write += change;
            months[period].breakdown.egress += egress;
            obj_total += change + egress;

            // Early-deletion penalty, pro-rated by the days already
            // served on the tier being left.
            if let Some(from) = prev_tier {
                if from != seg.placement.tier {
                    let penalty =
                        sim.model
                            .early_deletion_penalty(from, prev_stored_gb, prev_days_served)?;
                    months[period].early_deletion_penalty += penalty;
                    obj_total += penalty;
                }
            }

            // Residency accumulates across consecutive segments on the
            // same tier (e.g. a recompression that stays put).
            if prev_tier == Some(seg.placement.tier) {
                prev_days_served += seg.days();
            } else {
                prev_days_served = seg.days();
            }
            prev_tier = Some(seg.placement.tier);
            prev_stored_gb = stored_gb;
        }
        // Assignment (not +=) matches the historical insert-overwrite
        // semantics when several objects share a name.
        totals[id as usize] = obj_total;
    }

    // Access costs, streamed in trace order against the placement in
    // force on each event's day.
    let mut dropped_events: u64 = 0;
    for ev in events {
        if ev.day >= horizon_days {
            dropped_events += 1; // outside the billed horizon
            continue;
        }
        if !ev.volume_gb.is_finite() || ev.volume_gb < 0.0 {
            // Rejected before name resolution: a corrupt volume is a
            // corrupt trace even when it names an unknown object.
            return Err(CloudSimError::InvalidParameter {
                name: "volume_gb",
                value: ev.volume_gb,
            });
        }
        let Some(&id) = sim.name_ids.get(ev.object.as_str()) else {
            continue; // accesses to unknown objects are ignored
        };
        let placement = sim.schedules[id as usize].placement_at(ev.day);
        let effective_gb = ev.volume_gb / placement.compression_ratio.max(f64::MIN_POSITIVE);
        let m = &mut months[(ev.day / DAYS_PER_MONTH) as usize];
        let cost = match ev.kind {
            AccessKind::Read => {
                let read = sim.model.read_cost(placement.tier, effective_gb, 1.0);
                let decomp = sim
                    .model
                    .decompression_cost(placement.decompression_seconds, 1.0);
                m.breakdown.read += read;
                m.breakdown.decompression += decomp;
                read + decomp
            }
            AccessKind::Write => {
                let w = sim.model.write_cost(placement.tier, effective_gb);
                m.breakdown.write += w;
                w
            }
        };
        totals[id as usize] += cost;
    }

    Ok(BillingReport {
        months,
        per_object: sim.names.iter().cloned().zip(totals).collect(),
        dropped_events,
    })
}
