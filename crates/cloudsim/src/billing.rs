//! Billing simulator: replays an access trace against a tier placement and
//! accrues the real costs the cloud provider would charge.
//!
//! The optimizer works with *projected* accesses; the billing simulator is
//! what we use to evaluate a placement against the accesses that actually
//! happen, exactly as the paper computes "% cost benefit compared to the
//! platform baseline" for Tables II and IV.
//!
//! The engine is **day-granular** ([`BillingSimulator::run_days`]): objects
//! follow a [`PlacementSchedule`] that may change tier mid-horizon, storage
//! is pro-rated by the days actually spent on each tier, tier changes are
//! charged in the billing period they occur, and moving an object off a
//! tier before its minimum residency period is billed for exactly the days
//! of unmet residency (how Azure bills early deletion from Cool/Archive,
//! and one of the reasons the paper recommends per-billing-period tier
//! changes). [`BillingSimulator::run`] is the month-aligned compatibility
//! path: it lifts a legacy monthly trace onto the day axis and produces
//! totals identical to the historical whole-month replay.

use crate::cost::{CostBreakdown, CostModel, ObjectSpec};
use crate::error::CloudSimError;
use crate::parallel;
use crate::providers::ProviderCatalog;
use crate::tiers::{TierCatalog, TierId};
use crate::timeline::{
    events_from_monthly, BillingEvent, EventColumns, PlacementSchedule, DAYS_PER_MONTH,
    UNKNOWN_OBJECT,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// The kind of an access event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessKind {
    /// A read of (part of) the object.
    Read,
    /// A write / append to the object.
    Write,
}

/// One access to an object during the billed horizon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccessEvent {
    /// Name of the object being accessed (must match an [`ObjectSpec`]).
    pub object: String,
    /// Month index (0-based) within the billing horizon.
    pub month: u32,
    /// Read or write.
    pub kind: AccessKind,
    /// Volume touched by this access in GB. For full-object scans this is
    /// the object size; selective queries touch less.
    pub volume_gb: f64,
}

impl AccessEvent {
    /// Convenience constructor for a read event.
    pub fn read(object: impl Into<String>, month: u32, volume_gb: f64) -> Self {
        AccessEvent {
            object: object.into(),
            month,
            kind: AccessKind::Read,
            volume_gb,
        }
    }

    /// Convenience constructor for a write event.
    pub fn write(object: impl Into<String>, month: u32, volume_gb: f64) -> Self {
        AccessEvent {
            object: object.into(),
            month,
            kind: AccessKind::Write,
            volume_gb,
        }
    }
}

/// Cost accrued in a single month of the simulated horizon.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MonthlyCost {
    /// Month index (0-based).
    pub month: u32,
    /// Cost breakdown for the month, cents.
    pub breakdown: CostBreakdown,
    /// Early-deletion penalties charged this month, cents.
    pub early_deletion_penalty: f64,
}

impl MonthlyCost {
    /// Total cost of the month including penalties.
    pub fn total(&self) -> f64 {
        self.breakdown.total() + self.early_deletion_penalty
    }
}

/// Result of a billing simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BillingReport {
    /// Per-billing-period costs, indexed by period (a period is a
    /// [`DAYS_PER_MONTH`]-day "month"; the last period of a day-granular
    /// run may be partial).
    pub months: Vec<MonthlyCost>,
    /// Per-object totals in cents. A `BTreeMap` so consumers that iterate
    /// or fold the totals see a hash-seed-independent order. Keys are the
    /// simulator's interned `Arc<str>` names: building a report bumps one
    /// refcount per distinct object instead of allocating a `String` per
    /// row (`&str` lookups still work via `Borrow<str>`).
    pub per_object: std::collections::BTreeMap<Arc<str>, f64>,
    /// Number of access events that fell at or beyond the billed horizon
    /// and were therefore not charged. A non-zero value signals a
    /// trace/horizon mismatch.
    pub dropped_events: u64,
}

impl BillingReport {
    /// Grand total over the horizon, cents.
    pub fn total(&self) -> f64 {
        self.months.iter().map(|m| m.total()).sum()
    }

    /// Total of one cost component over the horizon.
    pub fn total_breakdown(&self) -> CostBreakdown {
        let mut acc = CostBreakdown::default();
        for m in &self.months {
            acc.accumulate(&m.breakdown);
        }
        acc
    }

    /// Percentage benefit of this report relative to a baseline report:
    /// `100 * (baseline - this) / baseline`. This is the "% cost benefit"
    /// reported in Tables II and IV.
    pub fn percent_benefit_vs(&self, baseline: &BillingReport) -> f64 {
        let b = baseline.total();
        if b <= 0.0 {
            return 0.0;
        }
        100.0 * (b - self.total()) / b
    }
}

/// A placement decision for one object over the billed horizon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Tier the object is stored on for the horizon.
    pub tier: TierId,
    /// Compression ratio the object is stored at (1.0 = uncompressed).
    pub compression_ratio: f64,
    /// Decompression seconds paid per read access.
    pub decompression_seconds: f64,
}

impl Placement {
    /// Uncompressed placement on `tier`.
    pub fn uncompressed(tier: TierId) -> Self {
        Placement {
            tier,
            compression_ratio: 1.0,
            decompression_seconds: 0.0,
        }
    }
}

/// Replays accesses against placement schedules and accrues per-period
/// costs on a day-granular time axis.
///
/// Object names are **interned at placement time** into dense `u32` ids:
/// the streaming loop of [`BillingSimulator::run_days`] accounts storage,
/// transitions and per-event access costs into flat `Vec`s indexed by those
/// ids — no `String` clone and no allocation per event — and the final
/// [`BillingReport`] rematerializes the `String`-keyed per-object map once
/// at the end.
#[derive(Debug, Clone)]
pub struct BillingSimulator {
    pub(crate) model: CostModel,
    pub(crate) objects: Vec<ObjectSpec>,
    /// Interned name id of each placed object (parallel to `objects`).
    pub(crate) object_ids: Vec<u32>,
    /// Distinct object names; index = interned id. `Arc<str>` so reports
    /// can rematerialize string keys with a refcount bump per object
    /// instead of an allocation per row.
    pub(crate) names: Vec<Arc<str>>,
    /// Name → interned id lookup.
    pub(crate) name_ids: HashMap<Arc<str>, u32>,
    /// Schedule per interned name id (re-placing a name replaces its
    /// schedule, matching the historical `HashMap::insert` semantics).
    pub(crate) schedules: Vec<PlacementSchedule>,
}

impl BillingSimulator {
    /// Create a simulator over the given catalog.
    pub fn new(catalog: TierCatalog) -> Self {
        Self::with_model(CostModel::new(catalog))
    }

    /// Create a simulator over a multi-provider catalog: placements use
    /// merged [`TierId`]s (see
    /// [`ProviderCatalog::merged_catalog`]) and schedule segments that
    /// cross providers are charged the egress rate of the provider pair in
    /// addition to the usual read+write transfer.
    pub fn multi_provider(providers: &ProviderCatalog) -> Self {
        Self::with_model(CostModel::with_topology(
            providers.merged_catalog(),
            providers.topology(),
        ))
    }

    fn with_model(model: CostModel) -> Self {
        BillingSimulator {
            model,
            objects: Vec::new(),
            object_ids: Vec::new(),
            names: Vec::new(),
            name_ids: HashMap::new(),
            schedules: Vec::new(),
        }
    }

    /// The cost model the simulator bills with.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Register an object with a placement frozen for the whole horizon.
    pub fn place(&mut self, obj: ObjectSpec, placement: Placement) -> Result<(), CloudSimError> {
        self.place_scheduled(obj, PlacementSchedule::constant(placement))
    }

    /// Register an object with a full placement schedule (mid-horizon tier
    /// transitions allowed).
    pub fn place_scheduled(
        &mut self,
        obj: ObjectSpec,
        schedule: PlacementSchedule,
    ) -> Result<(), CloudSimError> {
        obj.validate()?;
        // Validate every tier the schedule ever uses exists in the catalog.
        for placement in schedule.placements() {
            self.model.catalog().tier(placement.tier)?;
        }
        let id = match self.name_ids.get(obj.name.as_str()) {
            Some(&id) => {
                self.schedules[id as usize] = schedule;
                id
            }
            None => {
                let id = self.names.len() as u32;
                let name: Arc<str> = Arc::from(obj.name.as_str());
                self.name_ids.insert(name.clone(), id);
                self.names.push(name);
                self.schedules.push(schedule);
                id
            }
        };
        self.object_ids.push(id);
        self.objects.push(obj);
        Ok(())
    }

    /// Number of placed objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Month-aligned compatibility path: run the simulation over
    /// `horizon_months` whole billing periods with a monthly aggregated
    /// trace. Events of month `m` are lifted to day `m * 30` (same billing
    /// period) and the day-granular engine does the rest; for constant
    /// schedules the resulting totals are identical to the historical
    /// whole-month replay.
    pub fn run(
        &self,
        horizon_months: u32,
        accesses: &[AccessEvent],
    ) -> Result<BillingReport, CloudSimError> {
        if horizon_months == 0 {
            return Err(CloudSimError::InvalidParameter {
                name: "horizon_months",
                value: 0.0,
            });
        }
        let events = events_from_monthly(accesses);
        self.run_days(horizon_months * DAYS_PER_MONTH, &events)
    }

    /// Run the day-granular engine over `horizon_days` days with a
    /// day-stamped access trace.
    ///
    /// The engine streams over each object's schedule segments and the
    /// event trace:
    ///
    /// * **Storage** is pro-rated: each constant-placement segment charges
    ///   `rate * stored_gb * days / 30` into every billing period it
    ///   overlaps.
    /// * **Tier changes** (including the initial move off
    ///   [`ObjectSpec::current_tier`] at day 0) are charged in the period
    ///   the transition day falls in. In a multi-provider simulator
    ///   ([`BillingSimulator::multi_provider`]) a change whose source and
    ///   destination tiers belong to different providers additionally
    ///   books the provider-pair egress charge into
    ///   [`CostBreakdown::egress`].
    /// * **Early deletion** is exact to the day: moving an object off a
    ///   tier with a minimum residency period charges the *unmet* days —
    ///   the residency period minus the days actually served on that tier
    ///   (pre-horizon days count via [`ObjectSpec::residency_days`]) — at
    ///   the old tier's storage rate, in the period of the move.
    /// * **Reads/writes** are billed against the placement in force on
    ///   their day, into their day's billing period.
    ///
    /// Events at or beyond `horizon_days` are not charged but counted in
    /// [`BillingReport::dropped_events`]; events naming unknown objects are
    /// ignored, as before.
    ///
    /// Internally this builds [`EventColumns`] from the trace and runs the
    /// sharded column engine ([`BillingSimulator::run_columns`]) with the
    /// default thread count; totals are bit-for-bit identical for any
    /// thread count, and to the preserved sequential engine
    /// [`crate::reference::run_days_reference`].
    pub fn run_days(
        &self,
        horizon_days: u32,
        events: &[BillingEvent],
    ) -> Result<BillingReport, CloudSimError> {
        self.run_days_with_threads(horizon_days, events, parallel::default_threads())
    }

    /// [`BillingSimulator::run_days`] with an explicit worker thread count
    /// (1 = plain sequential replay). The thread count only affects
    /// wall-clock time, never the report.
    pub fn run_days_with_threads(
        &self,
        horizon_days: u32,
        events: &[BillingEvent],
        threads: usize,
    ) -> Result<BillingReport, CloudSimError> {
        let columns = self.build_columns(events);
        self.run_columns_with_threads(horizon_days, &columns, threads)
    }

    /// Resolve a day-stamped trace into struct-of-arrays [`EventColumns`]
    /// against this simulator's intern table: one name-hash and one
    /// day-to-period division per event, paid **once**. The columns can be
    /// replayed any number of times with
    /// [`BillingSimulator::run_columns`] without touching a `String` again.
    pub fn build_columns(&self, events: &[BillingEvent]) -> EventColumns {
        EventColumns::from_events(events, |name| self.name_ids.get(name).copied())
    }

    /// Replay prebuilt [`EventColumns`] with the default thread count. See
    /// [`BillingSimulator::run_columns_with_threads`].
    pub fn run_columns(
        &self,
        horizon_days: u32,
        columns: &EventColumns,
    ) -> Result<BillingReport, CloudSimError> {
        self.run_columns_with_threads(horizon_days, columns, parallel::default_threads())
    }

    /// The sharded day-granular engine.
    ///
    /// **Phase 1 — timeline costs, sharded by object.** Each placed object
    /// is an independent worker under [`parallel_map_with_threads`]: it
    /// streams its schedule segments exactly as the sequential engine does
    /// and emits an ordered ledger of (period, component, amount) postings
    /// plus its own running total. The merge applies ledgers in placement
    /// order, so every `f64` lands on the monthly accumulators in the exact
    /// sequence the sequential loop would produce — bit-for-bit identical
    /// totals for any thread count.
    ///
    /// **Phase 2 — access costs, sharded over the trace.** Each event's
    /// cost is a pure function of its columns row (placement in force on
    /// its day, compression-adjusted volume), so workers compute per-event
    /// outcomes over contiguous index ranges and the merge accumulates them
    /// in trace order. Dropped-event counting, unknown-object skipping and
    /// the first-invalid-volume error all key off the merge's trace-order
    /// walk, preserving the sequential engine's exact semantics (an invalid
    /// volume *after* an earlier invalid one is never reported, just as the
    /// sequential loop would have stopped at the first).
    ///
    /// [`parallel_map_with_threads`]: crate::parallel::parallel_map_with_threads
    pub fn run_columns_with_threads(
        &self,
        horizon_days: u32,
        columns: &EventColumns,
        threads: usize,
    ) -> Result<BillingReport, CloudSimError> {
        if horizon_days == 0 {
            return Err(CloudSimError::InvalidParameter {
                name: "horizon_days",
                value: 0.0,
            });
        }
        let n_periods = horizon_days.div_ceil(DAYS_PER_MONTH);
        let mut months: Vec<MonthlyCost> = (0..n_periods)
            .map(|m| MonthlyCost {
                month: m,
                ..Default::default()
            })
            .collect();
        // Per-object totals are accumulated in a flat vector indexed by the
        // interned name ids — the Arc<str>-keyed map is only rematerialized
        // once, in the final report.
        let mut totals: Vec<f64> = vec![0.0; self.names.len()];

        // Phase 1: per-object ledgers, computed in parallel, merged in
        // placement order.
        let ledgers = parallel::try_parallel_map_with_threads(&self.objects, threads, |i, obj| {
            self.object_ledger(obj, self.object_ids[i], horizon_days)
        })?;
        for ledger in ledgers {
            for &(period, component, amount) in &ledger.postings {
                let m = &mut months[period as usize];
                match component {
                    Component::Storage => m.breakdown.storage += amount,
                    Component::Change => m.breakdown.write += amount,
                    Component::Egress => m.breakdown.egress += amount,
                    Component::Penalty => m.early_deletion_penalty += amount,
                }
            }
            // Assignment (not +=) matches the historical insert-overwrite
            // semantics when several objects share a name.
            totals[ledger.id as usize] = ledger.total;
        }

        // Phase 2: pure per-event outcomes, merged in trace order. The
        // per-object schedules are first flattened into one contiguous
        // segment-rate table (with a per-object offset index) so the
        // per-event work is one binary search over a flat slice plus a
        // couple of multiplies — no catalog lookup, no per-object pointer
        // chase. The stored values are the *exact* f64 expressions the
        // cost model evaluates, so flattening cannot perturb a bit.
        let rates = self.flat_rates(horizon_days);
        let mut dropped_events: u64 = 0;
        if threads <= 1 {
            // Sequential fast path: compute and merge fused, skipping the
            // outcome buffer entirely (the accumulation order is the same
            // statement sequence either way), with all five columns
            // streamed through one zipped iterator (no per-column bounds
            // checks).
            // Hand-fused copy of `outcome_of` + `apply_outcome` (the
            // parallel branch below composes the same two functions; the
            // differential suites pin both branches against the sequential
            // reference bit for bit). `day / DAYS_PER_MONTH` equals
            // `columns.periods[i]` — it was precomputed from the same
            // expression, and the constant division is cheaper than
            // streaming the column.
            let rows = columns
                .days
                .iter()
                .zip(&columns.object_ids)
                .zip(&columns.kinds)
                .zip(&columns.volumes);
            for (((&day, &id), &kind), &volume_gb) in rows {
                if day >= horizon_days {
                    dropped_events += 1; // outside the billed horizon
                    continue;
                }
                if !volume_gb.is_finite() || volume_gb < 0.0 {
                    // Malformed volumes are rejected before object
                    // resolution: an in-horizon NaN/negative volume is a
                    // corrupt trace even when it names an unknown object.
                    return Err(CloudSimError::InvalidParameter {
                        name: "volume_gb",
                        value: volume_gb,
                    });
                }
                if id == UNKNOWN_OBJECT {
                    continue; // accesses to unknown objects are ignored
                }
                let (lo, hi) = rates.spans[id as usize];
                let table = &rates.entries[lo as usize..hi as usize];
                let n = table.partition_point(|s| s.start_day <= day);
                let seg = &table[n - 1];
                let effective_gb = volume_gb / seg.ratio_max;
                let m = &mut months[(day / DAYS_PER_MONTH) as usize];
                match kind {
                    AccessKind::Read => {
                        let read = seg.read_rate * effective_gb * 1.0;
                        m.breakdown.read += read;
                        m.breakdown.decompression += seg.decomp_cost;
                        totals[id as usize] += read + seg.decomp_cost;
                    }
                    AccessKind::Write => {
                        let write = rates.write_rates[lo as usize + n - 1] * effective_gb;
                        m.breakdown.write += write;
                        totals[id as usize] += write;
                    }
                }
            }
        } else {
            let outcomes =
                parallel::parallel_map_with_threads(&columns.days, threads, |i, &day| {
                    outcome_of(
                        day,
                        columns.object_ids[i],
                        columns.kinds[i],
                        columns.volumes[i],
                        horizon_days,
                        &rates,
                    )
                });
            for (i, &outcome) in outcomes.iter().enumerate() {
                apply_outcome(
                    columns.periods[i],
                    columns.object_ids[i],
                    outcome,
                    &mut months,
                    &mut totals,
                    &mut dropped_events,
                )?;
            }
        }

        Ok(BillingReport {
            months,
            per_object: self.names.iter().cloned().zip(totals).collect(),
            dropped_events,
        })
    }

    /// Phase-1 worker: the timeline costs of one object, as an ordered
    /// posting ledger. The arithmetic and its order are copied verbatim
    /// from the sequential engine (preserved as
    /// [`crate::reference::run_days_reference`]); only the destination of
    /// each `+=` changed from the shared accumulators to the ledger.
    fn object_ledger(
        &self,
        obj: &ObjectSpec,
        id: u32,
        horizon_days: u32,
    ) -> Result<ObjectLedger, CloudSimError> {
        let schedule = &self.schedules[id as usize];
        let mut ledger = ObjectLedger {
            id,
            postings: Vec::new(),
            total: 0.0,
        };
        // Where the object is coming from and how long it has been there:
        // seeds the early-deletion accounting of the first (and every
        // later) transition.
        let mut prev_tier = obj.current_tier;
        let mut prev_days_served = obj.residency_days;
        let mut prev_stored_gb = obj.size_gb;
        for seg in schedule.segments(horizon_days) {
            let stored_gb = obj.size_gb / seg.placement.compression_ratio.max(f64::MIN_POSITIVE);

            // Pro-rated storage in every billing period the segment
            // overlaps.
            for p in seg.start_day / DAYS_PER_MONTH..=(seg.end_day - 1) / DAYS_PER_MONTH {
                let period_start = p * DAYS_PER_MONTH;
                let days = seg.end_day.min(period_start + DAYS_PER_MONTH)
                    - seg.start_day.max(period_start);
                let c = self.model.storage_cost(
                    seg.placement.tier,
                    stored_gb,
                    days as f64 / DAYS_PER_MONTH as f64,
                );
                ledger.postings.push((p, Component::Storage, c));
                ledger.total += c;
            }

            // The move onto this segment's placement, charged in the
            // period the transition day falls in. A same-tier
            // recompression is still a physical rewrite: it pays a read
            // of the old bytes plus a write of the new ones. (The
            // initial segment on the object's current tier charges
            // nothing, as before: the pre-horizon compression state is
            // unknown.)
            let period = seg.start_day / DAYS_PER_MONTH;
            let (change, egress) = if prev_tier != Some(seg.placement.tier) {
                if let (true, Some(from)) = (seg.start_day > 0, prev_tier) {
                    // Mid-horizon move: the read off the old tier (and
                    // the egress, billed by the source provider) cover
                    // the bytes actually resident there, which a
                    // simultaneous recompression can make different
                    // from the new stored size.
                    (
                        self.model.read_cost(from, prev_stored_gb, 1.0)
                            + self.model.write_cost(seg.placement.tier, stored_gb),
                        self.model
                            .egress_cost(prev_tier, seg.placement.tier, prev_stored_gb),
                    )
                } else {
                    // Initial move at day 0: the pre-horizon
                    // compression state is unknown, so the legacy
                    // convention prices the read+write on the
                    // destination's stored size — but egress (new in
                    // the provider layer, no legacy constraint)
                    // covers the bytes leaving the source, same as
                    // the mid-horizon rule above.
                    (
                        self.model
                            .read_write_cost(prev_tier, seg.placement.tier, stored_gb),
                        self.model
                            .egress_cost(prev_tier, seg.placement.tier, prev_stored_gb),
                    )
                }
            } else if seg.start_day > 0 && stored_gb != prev_stored_gb {
                (
                    self.model
                        .read_cost(seg.placement.tier, prev_stored_gb, 1.0)
                        + self.model.write_cost(seg.placement.tier, stored_gb),
                    0.0,
                )
            } else {
                (0.0, 0.0)
            };
            // Posted unconditionally (even when 0.0), mirroring the
            // sequential engine's unconditional `+=`.
            ledger.postings.push((period, Component::Change, change));
            ledger.postings.push((period, Component::Egress, egress));
            ledger.total += change + egress;

            // Early-deletion penalty, pro-rated by the days already
            // served on the tier being left.
            if let Some(from) = prev_tier {
                if from != seg.placement.tier {
                    let penalty = self.model.early_deletion_penalty(
                        from,
                        prev_stored_gb,
                        prev_days_served,
                    )?;
                    ledger.postings.push((period, Component::Penalty, penalty));
                    ledger.total += penalty;
                }
            }

            // Residency accumulates across consecutive segments on the
            // same tier (e.g. a recompression that stays put).
            if prev_tier == Some(seg.placement.tier) {
                prev_days_served += seg.days();
            } else {
                prev_days_served = seg.days();
            }
            prev_tier = Some(seg.placement.tier);
            prev_stored_gb = stored_gb;
        }
        Ok(ledger)
    }

    /// Flatten every schedule over `[0, horizon_days)` into one contiguous
    /// segment-rate table for the phase-2 hot loop, with `spans[id]`
    /// delimiting object `id`'s entries. Every stored f64
    /// is computed by the same cost-model expression the per-event path
    /// used to evaluate, so replaying from the table is bit-identical:
    ///
    /// * `ratio_max` is `compression_ratio.max(f64::MIN_POSITIVE)` — the
    ///   event path still divides by it.
    /// * `read_rate` / `write_rate` are the tier's per-GB cents rates,
    ///   extracted by evaluating the model at 1.0 GB (multiplying a rate
    ///   by 1.0 is a bitwise identity, so these are the exact tier
    ///   constants); the event path multiplies exactly as
    ///   [`CostModel::read_cost`] / [`CostModel::write_cost`] do.
    /// * `decomp_cost` is the full per-access
    ///   [`CostModel::decompression_cost`] (volume-independent, so it can
    ///   be taken whole).
    fn flat_rates(&self, horizon_days: u32) -> FlatRates {
        let mut spans = Vec::with_capacity(self.schedules.len());
        let mut entries = Vec::with_capacity(self.schedules.len() * 2);
        let mut write_rates = Vec::with_capacity(self.schedules.len() * 2);
        for schedule in &self.schedules {
            let lo = entries.len() as u32;
            for seg in schedule.segments(horizon_days) {
                entries.push(SegmentRates {
                    start_day: seg.start_day,
                    ratio_max: seg.placement.compression_ratio.max(f64::MIN_POSITIVE),
                    read_rate: self.model.read_cost(seg.placement.tier, 1.0, 1.0),
                    decomp_cost: self
                        .model
                        .decompression_cost(seg.placement.decompression_seconds, 1.0),
                });
                write_rates.push(self.model.write_cost(seg.placement.tier, 1.0));
            }
            spans.push((lo, entries.len() as u32));
        }
        FlatRates {
            spans,
            entries,
            write_rates,
        }
    }
}

/// Phase-2 worker: the billing outcome of one event — a pure function of
/// its columns row and the flattened rate tables, safe to compute on any
/// shard.
#[inline]
fn outcome_of(
    day: u32,
    id: u32,
    kind: AccessKind,
    volume_gb: f64,
    horizon_days: u32,
    rates: &FlatRates,
) -> EventOutcome {
    if day >= horizon_days {
        return EventOutcome::Dropped;
    }
    if !volume_gb.is_finite() || volume_gb < 0.0 {
        // Checked before the unknown-object skip: a corrupt volume is a
        // corrupt trace regardless of whether its name resolved.
        return EventOutcome::Invalid(volume_gb);
    }
    if id == UNKNOWN_OBJECT {
        return EventOutcome::Unknown;
    }
    // The segment in force on `day`: the last entry starting at or before
    // it. Segments tile [0, horizon) and day < horizon, so the search
    // always lands on one.
    let (lo, hi) = rates.spans[id as usize];
    let (lo, hi) = (lo as usize, hi as usize);
    let table = &rates.entries[lo..hi];
    let n = table.partition_point(|s| s.start_day <= day);
    let seg = &table[n - 1];
    let effective_gb = volume_gb / seg.ratio_max;
    match kind {
        AccessKind::Read => EventOutcome::Read {
            read: seg.read_rate * effective_gb * 1.0,
            decomp: seg.decomp_cost,
        },
        AccessKind::Write => EventOutcome::Write {
            write: rates.write_rates[lo + n - 1] * effective_gb,
        },
    }
}

/// Merge one phase-2 outcome onto the shared accumulators, in trace order
/// — the exact statement sequence of the sequential engine's event loop.
#[inline]
fn apply_outcome(
    period: u32,
    id: u32,
    outcome: EventOutcome,
    months: &mut [MonthlyCost],
    totals: &mut [f64],
    dropped_events: &mut u64,
) -> Result<(), CloudSimError> {
    match outcome {
        EventOutcome::Dropped => *dropped_events += 1, // outside the billed horizon
        EventOutcome::Unknown => {}                    // accesses to unknown objects are ignored
        EventOutcome::Invalid(value) => {
            return Err(CloudSimError::InvalidParameter {
                name: "volume_gb",
                value,
            });
        }
        EventOutcome::Read { read, decomp } => {
            let m = &mut months[period as usize];
            m.breakdown.read += read;
            m.breakdown.decompression += decomp;
            totals[id as usize] += read + decomp;
        }
        EventOutcome::Write { write } => {
            let m = &mut months[period as usize];
            m.breakdown.write += write;
            totals[id as usize] += write;
        }
    }
    Ok(())
}

/// One flattened schedule segment for the phase-2 hot loop: the placement's
/// compression divisor plus the read-path rates. Exactly 32 bytes, so the
/// read-dominated hot loop touches a single cache line per lookup; the
/// write rate (needed for ~1 event in 10) lives in a parallel array.
#[derive(Debug, Clone, Copy)]
struct SegmentRates {
    start_day: u32,
    ratio_max: f64,
    read_rate: f64,
    decomp_cost: f64,
}

/// All objects' [`SegmentRates`] in one contiguous allocation, delimited by
/// per-object `(lo, hi)` spans (one 8-byte load per lookup), with the cold
/// write rates in a parallel array sharing the same entry indices.
#[derive(Debug)]
struct FlatRates {
    spans: Vec<(u32, u32)>,
    entries: Vec<SegmentRates>,
    write_rates: Vec<f64>,
}

/// Which monthly accumulator a phase-1 posting lands on.
#[derive(Debug, Clone, Copy)]
enum Component {
    /// Pro-rated segment storage → [`CostBreakdown::storage`].
    Storage,
    /// Tier-change / recompression transfer → [`CostBreakdown::write`].
    Change,
    /// Cross-provider move → [`CostBreakdown::egress`].
    Egress,
    /// Unmet-residency charge → [`MonthlyCost::early_deletion_penalty`].
    Penalty,
}

/// Phase-1 worker output: one object's ordered postings and total.
#[derive(Debug)]
struct ObjectLedger {
    id: u32,
    postings: Vec<(u32, Component, f64)>,
    total: f64,
}

/// Phase-2 worker output: the billing outcome of one event.
#[derive(Debug, Clone, Copy)]
enum EventOutcome {
    /// At or beyond the horizon: counted, not charged.
    Dropped,
    /// Names no placed object: ignored.
    Unknown,
    /// Non-finite or negative volume: the replay fails at the first such
    /// event in trace order, carrying the offending value.
    Invalid(f64),
    /// A read: access cost plus decompression compute.
    Read {
        /// Read transfer cost, cents.
        read: f64,
        /// Decompression compute cost, cents.
        decomp: f64,
    },
    /// A write: transfer cost only.
    Write {
        /// Write transfer cost, cents.
        write: f64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> BillingSimulator {
        BillingSimulator::new(TierCatalog::azure_adls_gen2())
    }

    #[test]
    fn storage_is_charged_every_month() {
        let mut s = sim();
        let hot = s.model.catalog().tier_id("Hot").unwrap();
        s.place(ObjectSpec::new("a", 10.0), Placement::uncompressed(hot))
            .unwrap();
        let report = s.run(6, &[]).unwrap();
        assert_eq!(report.months.len(), 6);
        let per_month = 10.0 * 2.08;
        for m in &report.months {
            assert!((m.breakdown.storage - per_month).abs() < 1e-9);
        }
        // Month 0 also carries the ingest write.
        assert!(report.months[0].breakdown.write > 0.0);
        assert!(report.months[1].breakdown.write == 0.0);
    }

    #[test]
    fn reads_are_charged_in_their_month() {
        let mut s = sim();
        let cool = s.model.catalog().tier_id("Cool").unwrap();
        s.place(ObjectSpec::new("a", 10.0), Placement::uncompressed(cool))
            .unwrap();
        let trace = vec![
            AccessEvent::read("a", 2, 10.0),
            AccessEvent::read("a", 2, 10.0),
        ];
        let report = s.run(4, &trace).unwrap();
        assert_eq!(report.months[0].breakdown.read, 0.0);
        assert!((report.months[2].breakdown.read - 2.0 * 10.0 * 0.0333).abs() < 1e-9);
    }

    #[test]
    fn early_deletion_penalty_applies_when_leaving_archive_early() {
        let catalog = TierCatalog::azure_adls_gen2();
        let archive = catalog.tier_id("Archive").unwrap();
        let hot = catalog.tier_id("Hot").unwrap();
        let mut s = BillingSimulator::new(catalog);
        s.place(
            ObjectSpec::new("a", 100.0).on_tier(archive),
            Placement::uncompressed(hot),
        )
        .unwrap();
        let report = s.run(2, &[]).unwrap();
        assert!(report.months[0].early_deletion_penalty > 0.0);
        // 180 days = 6 months at the archive storage rate.
        let expected = 0.099 * 100.0 * 6.0;
        assert!((report.months[0].early_deletion_penalty - expected).abs() < 1e-9);
    }

    #[test]
    fn no_penalty_when_staying_on_tier() {
        let catalog = TierCatalog::azure_adls_gen2();
        let archive = catalog.tier_id("Archive").unwrap();
        let mut s = BillingSimulator::new(catalog);
        s.place(
            ObjectSpec::new("a", 100.0).on_tier(archive),
            Placement::uncompressed(archive),
        )
        .unwrap();
        let report = s.run(2, &[]).unwrap();
        assert_eq!(report.months[0].early_deletion_penalty, 0.0);
        assert_eq!(report.months[0].breakdown.write, 0.0);
    }

    #[test]
    fn compression_reduces_billed_storage_and_read_volume() {
        let catalog = TierCatalog::azure_adls_gen2();
        let hot = catalog.tier_id("Hot").unwrap();
        let mut plain = BillingSimulator::new(catalog.clone());
        plain
            .place(ObjectSpec::new("a", 100.0), Placement::uncompressed(hot))
            .unwrap();
        let mut comp = BillingSimulator::new(catalog);
        comp.place(
            ObjectSpec::new("a", 100.0),
            Placement {
                tier: hot,
                compression_ratio: 5.0,
                decompression_seconds: 1.0,
            },
        )
        .unwrap();
        let trace = vec![AccessEvent::read("a", 0, 100.0)];
        let rp = plain.run(3, &trace).unwrap();
        let rc = comp.run(3, &trace).unwrap();
        assert!(rc.total_breakdown().storage < rp.total_breakdown().storage);
        assert!(rc.total_breakdown().read < rp.total_breakdown().read);
        assert!(rc.total_breakdown().decompression > 0.0);
    }

    #[test]
    fn percent_benefit_vs_baseline() {
        let catalog = TierCatalog::azure_adls_gen2();
        let hot = catalog.tier_id("Hot").unwrap();
        let cool = catalog.tier_id("Cool").unwrap();
        let mut base = BillingSimulator::new(catalog.clone());
        base.place(ObjectSpec::new("a", 1000.0), Placement::uncompressed(hot))
            .unwrap();
        let mut opt = BillingSimulator::new(catalog);
        opt.place(ObjectSpec::new("a", 1000.0), Placement::uncompressed(cool))
            .unwrap();
        let rb = base.run(6, &[]).unwrap();
        let ro = opt.run(6, &[]).unwrap();
        let benefit = ro.percent_benefit_vs(&rb);
        assert!(benefit > 0.0 && benefit < 100.0);
    }

    #[test]
    fn zero_horizon_and_bad_volume_are_rejected() {
        let mut s = sim();
        let hot = s.model.catalog().tier_id("Hot").unwrap();
        s.place(ObjectSpec::new("a", 1.0), Placement::uncompressed(hot))
            .unwrap();
        assert!(s.run(0, &[]).is_err());
        let bad = vec![AccessEvent::read("a", 0, f64::NAN)];
        assert!(s.run(1, &bad).is_err());
    }

    #[test]
    fn accesses_to_unknown_objects_or_outside_horizon_are_ignored() {
        let mut s = sim();
        let hot = s.model.catalog().tier_id("Hot").unwrap();
        s.place(ObjectSpec::new("a", 1.0), Placement::uncompressed(hot))
            .unwrap();
        let trace = vec![
            AccessEvent::read("nonexistent", 0, 1.0),
            AccessEvent::read("a", 99, 1.0),
        ];
        let report = s.run(2, &trace).unwrap();
        assert_eq!(report.total_breakdown().read, 0.0);
    }

    #[test]
    fn writes_are_charged_at_write_rate() {
        let mut s = sim();
        let hot = s.model.catalog().tier_id("Hot").unwrap();
        s.place(ObjectSpec::new("a", 10.0), Placement::uncompressed(hot))
            .unwrap();
        let trace = vec![AccessEvent::write("a", 1, 5.0)];
        let report = s.run(2, &trace).unwrap();
        assert!(report.months[1].breakdown.write > 0.0);
    }

    #[test]
    fn early_deletion_penalty_is_prorated_by_days_already_served() {
        // Regression test: the penalty once charged the *full* minimum
        // residency window no matter how long the object had already sat on
        // the source tier. An object 20 days into Cool's 30-day window owes
        // only the 10 unmet days.
        let catalog = TierCatalog::azure_adls_gen2();
        let cool = catalog.tier_id("Cool").unwrap();
        let hot = catalog.tier_id("Hot").unwrap();
        let mut s = BillingSimulator::new(catalog);
        s.place(
            ObjectSpec::new("a", 100.0)
                .on_tier(cool)
                .with_residency_days(20),
            Placement::uncompressed(hot),
        )
        .unwrap();
        let report = s.run(2, &[]).unwrap();
        let expected = 1.52 * 100.0 * (10.0 / 30.0);
        assert!((report.months[0].early_deletion_penalty - expected).abs() < 1e-9);
        // Residency at or beyond the window: no penalty at all.
        let catalog = TierCatalog::azure_adls_gen2();
        let mut s = BillingSimulator::new(catalog);
        s.place(
            ObjectSpec::new("a", 100.0)
                .on_tier(cool)
                .with_residency_days(30),
            Placement::uncompressed(hot),
        )
        .unwrap();
        let report = s.run(2, &[]).unwrap();
        assert_eq!(report.months[0].early_deletion_penalty, 0.0);
    }

    #[test]
    fn dropped_events_are_counted() {
        let mut s = sim();
        let hot = s.model.catalog().tier_id("Hot").unwrap();
        s.place(ObjectSpec::new("a", 1.0), Placement::uncompressed(hot))
            .unwrap();
        let trace = vec![
            AccessEvent::read("a", 0, 1.0),
            AccessEvent::read("a", 5, 1.0),
            AccessEvent::write("a", 7, 1.0),
            AccessEvent::read("nonexistent", 0, 1.0), // unknown, not "dropped"
        ];
        let report = s.run(2, &trace).unwrap();
        assert_eq!(report.dropped_events, 2);
        let clean = s.run(8, &trace).unwrap();
        assert_eq!(clean.dropped_events, 0);
    }

    #[test]
    fn mid_horizon_transition_prorates_storage_by_days() {
        // Hot for the first 45 days, Cool for the remaining 45 of a 90-day
        // horizon: period 0 is all-Hot, period 1 is half/half, period 2 is
        // all-Cool.
        let catalog = TierCatalog::azure_adls_gen2();
        let hot = catalog.tier_id("Hot").unwrap();
        let cool = catalog.tier_id("Cool").unwrap();
        let mut s = BillingSimulator::new(catalog);
        let schedule = PlacementSchedule::constant(Placement::uncompressed(hot))
            .with_transition(45, Placement::uncompressed(cool));
        s.place_scheduled(ObjectSpec::new("a", 10.0).on_tier(hot), schedule)
            .unwrap();
        let report = s.run_days(90, &[]).unwrap();
        assert_eq!(report.months.len(), 3);
        let hot_month = 10.0 * 2.08;
        let cool_month = 10.0 * 1.52;
        assert!((report.months[0].breakdown.storage - hot_month).abs() < 1e-9);
        assert!(
            (report.months[1].breakdown.storage - (hot_month * 0.5 + cool_month * 0.5)).abs()
                < 1e-9
        );
        assert!((report.months[2].breakdown.storage - cool_month).abs() < 1e-9);
        // The Hot→Cool move (a read + a write) lands in period 1.
        assert_eq!(report.months[0].breakdown.write, 0.0);
        assert!(report.months[1].breakdown.write > 0.0);
        assert_eq!(report.months[2].breakdown.write, 0.0);
    }

    #[test]
    fn mid_horizon_departure_charges_exact_unmet_residency_days() {
        // Onto Cool (30-day minimum residency) at day 0, away at day 12:
        // the penalty is exactly the 18 unmet days at Cool's storage rate,
        // booked in the period of the move.
        let catalog = TierCatalog::azure_adls_gen2();
        let hot = catalog.tier_id("Hot").unwrap();
        let cool = catalog.tier_id("Cool").unwrap();
        let mut s = BillingSimulator::new(catalog);
        let schedule = PlacementSchedule::constant(Placement::uncompressed(cool))
            .with_transition(12, Placement::uncompressed(hot));
        s.place_scheduled(ObjectSpec::new("a", 100.0), schedule)
            .unwrap();
        let report = s.run_days(60, &[]).unwrap();
        let expected = 1.52 * 100.0 * (18.0 / 30.0);
        assert!((report.months[0].early_deletion_penalty - expected).abs() < 1e-9);
        // Departing only after the residency window is met costs nothing.
        let catalog = TierCatalog::azure_adls_gen2();
        let mut s = BillingSimulator::new(catalog);
        let schedule = PlacementSchedule::constant(Placement::uncompressed(cool))
            .with_transition(30, Placement::uncompressed(hot));
        s.place_scheduled(ObjectSpec::new("a", 100.0), schedule)
            .unwrap();
        let report = s.run_days(60, &[]).unwrap();
        assert_eq!(report.months[0].early_deletion_penalty, 0.0);
        assert_eq!(report.months[1].early_deletion_penalty, 0.0);
    }

    #[test]
    fn residency_accumulates_across_same_tier_segments() {
        // A recompression at day 20 stays on Cool; the later departure at
        // day 40 has already served the full 30-day window across both
        // segments, so no penalty is due.
        let catalog = TierCatalog::azure_adls_gen2();
        let hot = catalog.tier_id("Hot").unwrap();
        let cool = catalog.tier_id("Cool").unwrap();
        let mut s = BillingSimulator::new(catalog);
        let schedule = PlacementSchedule::constant(Placement::uncompressed(cool))
            .with_transition(
                20,
                Placement {
                    tier: cool,
                    compression_ratio: 2.0,
                    decompression_seconds: 0.5,
                },
            )
            .with_transition(40, Placement::uncompressed(hot));
        s.place_scheduled(ObjectSpec::new("a", 100.0), schedule)
            .unwrap();
        let report = s.run_days(90, &[]).unwrap();
        for m in &report.months {
            assert_eq!(m.early_deletion_penalty, 0.0, "month {}", m.month);
        }
    }

    #[test]
    fn same_tier_recompression_pays_a_read_and_a_rewrite() {
        // Recompressing 4:1 on Hot at day 30: a read of the 100 GB stored
        // bytes plus a write of the 25 GB recompressed bytes, charged in
        // period 1; no tier change, so no early-deletion penalty.
        let catalog = TierCatalog::azure_adls_gen2();
        let hot = catalog.tier_id("Hot").unwrap();
        let mut s = BillingSimulator::new(catalog);
        let schedule = PlacementSchedule::constant(Placement::uncompressed(hot)).with_transition(
            30,
            Placement {
                tier: hot,
                compression_ratio: 4.0,
                decompression_seconds: 1.0,
            },
        );
        s.place_scheduled(ObjectSpec::new("a", 100.0).on_tier(hot), schedule)
            .unwrap();
        let report = s.run_days(60, &[]).unwrap();
        assert_eq!(report.months[0].breakdown.write, 0.0);
        let expected = 100.0 * 0.01331 + 25.0 * 0.01331;
        assert!((report.months[1].breakdown.write - expected).abs() < 1e-9);
        assert_eq!(report.months[1].early_deletion_penalty, 0.0);
        // And the recompressed month stores a quarter of the bytes.
        assert!(
            (report.months[1].breakdown.storage - 25.0 * 2.08).abs() < 1e-9,
            "storage {}",
            report.months[1].breakdown.storage
        );
    }

    #[test]
    fn events_bill_against_the_placement_in_force_on_their_day() {
        let catalog = TierCatalog::azure_adls_gen2();
        let hot = catalog.tier_id("Hot").unwrap();
        let cool = catalog.tier_id("Cool").unwrap();
        let mut s = BillingSimulator::new(catalog);
        let schedule = PlacementSchedule::constant(Placement::uncompressed(hot))
            .with_transition(15, Placement::uncompressed(cool));
        s.place_scheduled(ObjectSpec::new("a", 10.0), schedule)
            .unwrap();
        let trace = vec![
            BillingEvent::read("a", 14, 10.0), // still Hot
            BillingEvent::read("a", 15, 10.0), // Cool from day 15
        ];
        let report = s.run_days(30, &trace).unwrap();
        let expected = 10.0 * 0.01331 + 10.0 * 0.0333;
        assert!((report.months[0].breakdown.read - expected).abs() < 1e-9);
    }

    #[test]
    fn partial_final_period_prorates_storage() {
        let mut s = sim();
        let hot = s.model.catalog().tier_id("Hot").unwrap();
        s.place(ObjectSpec::new("a", 10.0), Placement::uncompressed(hot))
            .unwrap();
        let report = s.run_days(45, &[]).unwrap();
        assert_eq!(report.months.len(), 2);
        let month = 10.0 * 2.08;
        assert!((report.months[0].breakdown.storage - month).abs() < 1e-9);
        assert!((report.months[1].breakdown.storage - month * 0.5).abs() < 1e-9);
    }

    #[test]
    fn mid_horizon_move_with_recompression_reads_the_old_stored_bytes() {
        // Regression test: a tier change that also recompresses once priced
        // the source-tier read on the *destination's* stored size. 100 GB
        // uncompressed on Hot moving to Cool at 2:1 must read 100 GB off
        // Hot and write 50 GB onto Cool.
        let catalog = TierCatalog::azure_adls_gen2();
        let hot = catalog.tier_id("Hot").unwrap();
        let cool = catalog.tier_id("Cool").unwrap();
        let mut s = BillingSimulator::new(catalog);
        let schedule = PlacementSchedule::constant(Placement::uncompressed(hot)).with_transition(
            30,
            Placement {
                tier: cool,
                compression_ratio: 2.0,
                decompression_seconds: 0.5,
            },
        );
        s.place_scheduled(ObjectSpec::new("a", 100.0).on_tier(hot), schedule)
            .unwrap();
        let report = s.run_days(60, &[]).unwrap();
        let expected = 100.0 * 0.01331 + 50.0 * 0.02662;
        assert!(
            (report.months[1].breakdown.write - expected).abs() < 1e-9,
            "write {} expected {}",
            report.months[1].breakdown.write,
            expected
        );
        // And the egress of a cross-provider move covers the source bytes.
        let providers = ProviderCatalog::azure_s3_gcs();
        let merged = providers.merged_catalog();
        let azure_hot = merged.tier_id("azure:Hot").unwrap();
        let gcs_coldline = merged.tier_id("gcs:Coldline").unwrap();
        let mut s = BillingSimulator::multi_provider(&providers);
        let schedule = PlacementSchedule::constant(Placement::uncompressed(azure_hot))
            .with_transition(
                30,
                Placement {
                    tier: gcs_coldline,
                    compression_ratio: 2.0,
                    decompression_seconds: 0.5,
                },
            );
        s.place_scheduled(ObjectSpec::new("a", 100.0).on_tier(azure_hot), schedule)
            .unwrap();
        let report = s.run_days(60, &[]).unwrap();
        assert!(
            (report.months[1].breakdown.egress - 2.0 * 100.0).abs() < 1e-9,
            "egress {} should cover the 100 GB leaving azure",
            report.months[1].breakdown.egress
        );
        // The same migration performed at day 0 books the same egress: the
        // egress base is the source bytes regardless of when the move
        // happens or how the destination compresses.
        let mut s = BillingSimulator::multi_provider(&providers);
        s.place(
            ObjectSpec::new("a", 100.0).on_tier(azure_hot),
            Placement {
                tier: gcs_coldline,
                compression_ratio: 2.0,
                decompression_seconds: 0.5,
            },
        )
        .unwrap();
        let report = s.run_days(60, &[]).unwrap();
        assert!(
            (report.months[0].breakdown.egress - 2.0 * 100.0).abs() < 1e-9,
            "day-0 egress {} should also cover the 100 GB leaving azure",
            report.months[0].breakdown.egress
        );
    }

    #[test]
    fn cross_provider_segment_books_egress_in_the_period_of_the_move() {
        let providers = ProviderCatalog::azure_s3_gcs();
        let merged = providers.merged_catalog();
        let azure_hot = merged.tier_id("azure:Hot").unwrap();
        let gcs_coldline = merged.tier_id("gcs:Coldline").unwrap();
        let mut s = BillingSimulator::multi_provider(&providers);
        let schedule = PlacementSchedule::constant(Placement::uncompressed(azure_hot))
            .with_transition(30, Placement::uncompressed(gcs_coldline));
        s.place_scheduled(ObjectSpec::new("a", 100.0).on_tier(azure_hot), schedule)
            .unwrap();
        let report = s.run_days(90, &[]).unwrap();
        // The azure→gcs move (2.0 c/GB over 100 GB) lands in period 1.
        assert_eq!(report.months[0].breakdown.egress, 0.0);
        assert!((report.months[1].breakdown.egress - 200.0).abs() < 1e-9);
        assert_eq!(report.months[2].breakdown.egress, 0.0);
        // Read+write transfer is booked separately in the write term.
        assert!(report.months[1].breakdown.write > 0.0);
        // Per-object attribution carries the egress too.
        let total_months: f64 = report.months.iter().map(|m| m.total()).sum();
        assert!((report.per_object["a"] - total_months).abs() < 1e-9);
    }

    #[test]
    fn intra_provider_moves_in_a_multi_catalog_pay_no_egress() {
        let providers = ProviderCatalog::azure_s3_gcs();
        let merged = providers.merged_catalog();
        let hot = merged.tier_id("azure:Hot").unwrap();
        let cool = merged.tier_id("azure:Cool").unwrap();
        let mut s = BillingSimulator::multi_provider(&providers);
        let schedule = PlacementSchedule::constant(Placement::uncompressed(hot))
            .with_transition(30, Placement::uncompressed(cool));
        s.place_scheduled(ObjectSpec::new("a", 100.0).on_tier(hot), schedule)
            .unwrap();
        let report = s.run_days(60, &[]).unwrap();
        assert_eq!(report.total_breakdown().egress, 0.0);
        // And the totals match the plain single-provider simulator running
        // the same schedule (azure merged ids coincide with local ids).
        let single_cat = TierCatalog::azure_adls_gen2();
        let sh = single_cat.tier_id("Hot").unwrap();
        let sc = single_cat.tier_id("Cool").unwrap();
        let mut single = BillingSimulator::new(single_cat);
        let schedule = PlacementSchedule::constant(Placement::uncompressed(sh))
            .with_transition(30, Placement::uncompressed(sc));
        single
            .place_scheduled(ObjectSpec::new("a", 100.0).on_tier(sh), schedule)
            .unwrap();
        let reference = single.run_days(60, &[]).unwrap();
        assert_eq!(report, reference);
    }

    #[test]
    fn interned_accounting_keys_per_object_totals_by_name() {
        // The event loop accounts into interned-id vectors; the report must
        // still key per-object totals by the original names, cover every
        // placed object (accessed or not), and attribute event costs to the
        // right object.
        let mut s = sim();
        let hot = s.model.catalog().tier_id("Hot").unwrap();
        let cool = s.model.catalog().tier_id("Cool").unwrap();
        s.place(ObjectSpec::new("alpha", 10.0), Placement::uncompressed(hot))
            .unwrap();
        s.place(ObjectSpec::new("beta", 20.0), Placement::uncompressed(cool))
            .unwrap();
        let trace = vec![
            AccessEvent::read("alpha", 0, 10.0),
            AccessEvent::read("alpha", 1, 10.0),
            AccessEvent::write("beta", 0, 5.0),
        ];
        let report = s.run(2, &trace).unwrap();
        assert_eq!(report.per_object.len(), 2);
        let alpha_expected = 2.0 * (10.0 * 2.08) // storage
            + 10.0 * 0.01331 // ingest write
            + 2.0 * 10.0 * 0.01331; // two reads
        assert!((report.per_object["alpha"] - alpha_expected).abs() < 1e-9);
        // The per-object totals sum to the grand total.
        let sum: f64 = report.per_object.values().sum();
        assert!((sum - report.total()).abs() < 1e-9);
        // Re-placing the same name replaces its schedule rather than
        // double-billing under one key.
        let mut s = sim();
        s.place(ObjectSpec::new("alpha", 10.0), Placement::uncompressed(hot))
            .unwrap();
        s.place(
            ObjectSpec::new("alpha", 10.0),
            Placement::uncompressed(cool),
        )
        .unwrap();
        let report = s.run(1, &[]).unwrap();
        assert_eq!(report.per_object.len(), 1);
        assert_eq!(s.object_count(), 2);
    }

    #[test]
    fn month_aligned_schedule_matches_monthly_replay_exactly() {
        // The compatibility contract: a constant schedule driven through
        // the day engine with month-lifted events reproduces the legacy
        // whole-month replay bit-for-bit.
        let catalog = TierCatalog::azure_adls_gen2();
        let hot = catalog.tier_id("Hot").unwrap();
        let cool = catalog.tier_id("Cool").unwrap();
        let mut s = BillingSimulator::new(catalog);
        s.place(
            ObjectSpec::new("a", 123.0).on_tier(hot),
            Placement::uncompressed(cool),
        )
        .unwrap();
        s.place(
            ObjectSpec::new("b", 7.0),
            Placement {
                tier: hot,
                compression_ratio: 3.0,
                decompression_seconds: 0.25,
            },
        )
        .unwrap();
        let monthly = vec![
            AccessEvent::read("a", 1, 12.0),
            AccessEvent::write("b", 0, 2.0),
            AccessEvent::read("b", 3, 7.0),
        ];
        let via_months = s.run(4, &monthly).unwrap();
        let via_days = s
            .run_days(4 * DAYS_PER_MONTH, &events_from_monthly(&monthly))
            .unwrap();
        assert_eq!(via_months, via_days);
        assert_eq!(via_months.months.len(), 4);
    }

    /// A simulator exercising every phase-1 branch (mid-horizon moves,
    /// day-0 moves, same-tier recompression, penalties, cross-provider
    /// egress) plus a trace hitting every phase-2 branch (reads, writes,
    /// dropped events, unknown objects).
    fn differential_fixture() -> (BillingSimulator, Vec<BillingEvent>, u32) {
        let catalog = TierCatalog::azure_adls_gen2();
        let hot = catalog.tier_id("Hot").unwrap();
        let cool = catalog.tier_id("Cool").unwrap();
        let archive = catalog.tier_id("Archive").unwrap();
        let mut s = BillingSimulator::new(catalog);
        for i in 0..23u32 {
            let name = format!("obj-{i}");
            let spec = ObjectSpec::new(&name, 1.0 + i as f64 * 3.5).on_tier(hot);
            let schedule = match i % 4 {
                0 => PlacementSchedule::constant(Placement::uncompressed(hot)),
                1 => PlacementSchedule::constant(Placement::uncompressed(hot))
                    .with_transition(17 + i, Placement::uncompressed(cool)),
                2 => PlacementSchedule::constant(Placement::uncompressed(cool))
                    .with_transition(
                        40,
                        Placement {
                            tier: cool,
                            compression_ratio: 2.5,
                            decompression_seconds: 0.5,
                        },
                    )
                    .with_transition(80 + i, Placement::uncompressed(archive)),
                _ => PlacementSchedule::constant(Placement::uncompressed(archive)),
            };
            s.place_scheduled(spec, schedule).unwrap();
        }
        let horizon = 4 * DAYS_PER_MONTH;
        let mut events = Vec::new();
        for k in 0..400u32 {
            let day = (k * 7919) % (horizon + 10); // some past the horizon
            let name = if k % 13 == 0 {
                "nobody".to_string() // unknown object
            } else {
                format!("obj-{}", k % 23)
            };
            let volume = 0.25 + (k % 17) as f64 * 0.6;
            let ev = if k % 5 == 0 {
                BillingEvent::write(name, day, volume)
            } else {
                BillingEvent::read(name, day, volume)
            };
            events.push(ev);
        }
        (s, events, horizon)
    }

    #[test]
    fn sharded_engine_is_bit_identical_to_reference_for_any_thread_count() {
        let (s, events, horizon) = differential_fixture();
        let expected = crate::reference::run_days_reference(&s, horizon, &events).unwrap();
        assert!(expected.dropped_events > 0, "fixture must drop events");
        for threads in [1, 2, 7] {
            let got = s.run_days_with_threads(horizon, &events, threads).unwrap();
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn prebuilt_columns_replay_matches_event_replay() {
        let (s, events, horizon) = differential_fixture();
        let columns = s.build_columns(&events);
        assert_eq!(columns.len(), events.len());
        let via_events = s.run_days(horizon, &events).unwrap();
        for threads in [1, 2, 7] {
            let via_columns = s
                .run_columns_with_threads(horizon, &columns, threads)
                .unwrap();
            assert_eq!(via_columns, via_events, "threads={threads}");
        }
        assert_eq!(s.run_columns(horizon, &columns).unwrap(), via_events);
    }

    #[test]
    fn sharded_engine_reports_first_invalid_volume_in_trace_order() {
        let (s, mut events, horizon) = differential_fixture();
        // Two invalid volumes: the error must carry the first in trace
        // order, regardless of the shard that computed it.
        events[7] = BillingEvent::read("obj-1", 3, f64::NAN);
        events[300] = BillingEvent::read("obj-2", 3, -4.0);
        let expected = crate::reference::run_days_reference(&s, horizon, &events);
        for threads in [1, 2, 7] {
            let got = s.run_days_with_threads(horizon, &events, threads);
            // NaN payloads break PartialEq; compare the rendered error.
            assert_eq!(
                format!("{got:?}"),
                format!("{expected:?}"),
                "threads={threads}"
            );
            assert!(format!("{got:?}").contains("NaN"), "threads={threads}");
        }
    }

    #[test]
    fn invalid_volume_on_an_unknown_object_is_rejected_not_skipped() {
        // Regression: the invalid-volume check used to come after the
        // unknown-object skip, so corrupt events naming unregistered
        // objects were silently ignored instead of failing the replay.
        let (s, mut events, horizon) = differential_fixture();
        events[11] = BillingEvent::read("nobody-at-all", 2, f64::NAN);
        let expected = crate::reference::run_days_reference(&s, horizon, &events);
        assert!(
            format!("{expected:?}").contains("volume_gb"),
            "reference must reject the corrupt unknown-object event: {expected:?}"
        );
        for threads in [1, 2, 7] {
            let got = s.run_days_with_threads(horizon, &events, threads);
            assert_eq!(
                format!("{got:?}"),
                format!("{expected:?}"),
                "threads={threads}"
            );
        }
        // Negative volumes are typed errors too, on known and unknown names.
        for name in ["obj-1", "ghost-object"] {
            let mut events = events.clone();
            events[11] = BillingEvent::write(name, 2, -0.5);
            let got = s.run_days(horizon, &events);
            assert!(
                matches!(
                    got,
                    Err(CloudSimError::InvalidParameter {
                        name: "volume_gb",
                        value,
                    }) if value == -0.5
                ),
                "{name}: {got:?}"
            );
        }
    }

    #[test]
    fn out_of_horizon_invalid_volumes_still_count_as_dropped() {
        // Drop-ordering is unchanged: the horizon check precedes volume
        // validation, so a corrupt event past the horizon is dropped, not
        // an error — exactly the serving intake's quarantine ordering.
        let (s, mut events, horizon) = differential_fixture();
        events[11] = BillingEvent::read("obj-1", horizon + 3, f64::NAN);
        let expected = crate::reference::run_days_reference(&s, horizon, &events).unwrap();
        for threads in [1, 2, 7] {
            let got = s.run_days_with_threads(horizon, &events, threads).unwrap();
            assert_eq!(got, expected, "threads={threads}");
        }
        assert!(expected.dropped_events > 0);
    }
}
