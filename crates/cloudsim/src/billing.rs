//! Billing simulator: replays an access trace against a tier placement and
//! accrues the real monthly costs the cloud provider would charge.
//!
//! The optimizer works with *projected* accesses; the billing simulator is
//! what we use to evaluate a placement against the accesses that actually
//! happen, exactly as the paper computes "% cost benefit compared to the
//! platform baseline" for Tables II and IV. It also charges early-deletion
//! penalties when an object is moved off a tier before the tier's minimum
//! residency period, one of the reasons the paper recommends per-billing-
//! period (not ad-hoc) tier changes.

use crate::cost::{CostBreakdown, CostModel, ObjectSpec};
use crate::error::CloudSimError;
use crate::tiers::{TierCatalog, TierId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The kind of an access event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessKind {
    /// A read of (part of) the object.
    Read,
    /// A write / append to the object.
    Write,
}

/// One access to an object during the billed horizon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccessEvent {
    /// Name of the object being accessed (must match an [`ObjectSpec`]).
    pub object: String,
    /// Month index (0-based) within the billing horizon.
    pub month: u32,
    /// Read or write.
    pub kind: AccessKind,
    /// Volume touched by this access in GB. For full-object scans this is
    /// the object size; selective queries touch less.
    pub volume_gb: f64,
}

impl AccessEvent {
    /// Convenience constructor for a read event.
    pub fn read(object: impl Into<String>, month: u32, volume_gb: f64) -> Self {
        AccessEvent {
            object: object.into(),
            month,
            kind: AccessKind::Read,
            volume_gb,
        }
    }

    /// Convenience constructor for a write event.
    pub fn write(object: impl Into<String>, month: u32, volume_gb: f64) -> Self {
        AccessEvent {
            object: object.into(),
            month,
            kind: AccessKind::Write,
            volume_gb,
        }
    }
}

/// Cost accrued in a single month of the simulated horizon.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MonthlyCost {
    /// Month index (0-based).
    pub month: u32,
    /// Cost breakdown for the month, cents.
    pub breakdown: CostBreakdown,
    /// Early-deletion penalties charged this month, cents.
    pub early_deletion_penalty: f64,
}

impl MonthlyCost {
    /// Total cost of the month including penalties.
    pub fn total(&self) -> f64 {
        self.breakdown.total() + self.early_deletion_penalty
    }
}

/// Result of a billing simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BillingReport {
    /// Per-month costs, indexed by month.
    pub months: Vec<MonthlyCost>,
    /// Per-object totals in cents.
    pub per_object: HashMap<String, f64>,
}

impl BillingReport {
    /// Grand total over the horizon, cents.
    pub fn total(&self) -> f64 {
        self.months.iter().map(|m| m.total()).sum()
    }

    /// Total of one cost component over the horizon.
    pub fn total_breakdown(&self) -> CostBreakdown {
        let mut acc = CostBreakdown::default();
        for m in &self.months {
            acc.accumulate(&m.breakdown);
        }
        acc
    }

    /// Percentage benefit of this report relative to a baseline report:
    /// `100 * (baseline - this) / baseline`. This is the "% cost benefit"
    /// reported in Tables II and IV.
    pub fn percent_benefit_vs(&self, baseline: &BillingReport) -> f64 {
        let b = baseline.total();
        if b <= 0.0 {
            return 0.0;
        }
        100.0 * (b - self.total()) / b
    }
}

/// A placement decision for one object over the billed horizon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Tier the object is stored on for the horizon.
    pub tier: TierId,
    /// Compression ratio the object is stored at (1.0 = uncompressed).
    pub compression_ratio: f64,
    /// Decompression seconds paid per read access.
    pub decompression_seconds: f64,
}

impl Placement {
    /// Uncompressed placement on `tier`.
    pub fn uncompressed(tier: TierId) -> Self {
        Placement {
            tier,
            compression_ratio: 1.0,
            decompression_seconds: 0.0,
        }
    }
}

/// Replays accesses against placements and accrues monthly costs.
#[derive(Debug, Clone)]
pub struct BillingSimulator {
    model: CostModel,
    objects: Vec<ObjectSpec>,
    placements: HashMap<String, Placement>,
}

impl BillingSimulator {
    /// Create a simulator over the given catalog.
    pub fn new(catalog: TierCatalog) -> Self {
        BillingSimulator {
            model: CostModel::new(catalog),
            objects: Vec::new(),
            placements: HashMap::new(),
        }
    }

    /// Register an object and its placement for the horizon.
    pub fn place(&mut self, obj: ObjectSpec, placement: Placement) -> Result<(), CloudSimError> {
        obj.validate()?;
        // Validate the tier exists in the catalog.
        self.model.catalog().tier(placement.tier)?;
        self.placements.insert(obj.name.clone(), placement);
        self.objects.push(obj);
        Ok(())
    }

    /// Number of placed objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Run the simulation over `horizon_months` months with the given access
    /// trace. Storage is charged for every month of the horizon; the tier
    /// change (write) cost of moving each object from its `current_tier` to
    /// its placement tier is charged in month 0; reads and writes are
    /// charged in the month they occur.
    ///
    /// If an object's current tier has an early-deletion period and the
    /// object is moved away in month 0, the remaining months of the minimum
    /// residency are charged as a penalty at the old tier's storage rate
    /// (this is how Azure bills early deletion from Cool/Archive).
    pub fn run(
        &self,
        horizon_months: u32,
        accesses: &[AccessEvent],
    ) -> Result<BillingReport, CloudSimError> {
        if horizon_months == 0 {
            return Err(CloudSimError::InvalidParameter {
                name: "horizon_months",
                value: 0.0,
            });
        }
        let mut months: Vec<MonthlyCost> = (0..horizon_months)
            .map(|m| MonthlyCost {
                month: m,
                ..Default::default()
            })
            .collect();
        let mut per_object: HashMap<String, f64> = HashMap::with_capacity(self.objects.len());

        // Storage + migration costs.
        for obj in &self.objects {
            let placement = &self.placements[&obj.name];
            let stored_gb = obj.size_gb / placement.compression_ratio.max(f64::MIN_POSITIVE);
            let mut obj_total = 0.0;

            // Monthly storage.
            for m in months.iter_mut() {
                let c = self.model.storage_cost(placement.tier, stored_gb, 1.0);
                m.breakdown.storage += c;
                obj_total += c;
            }

            // One-time migration / ingest write in month 0.
            let change = self
                .model
                .tier_change_cost(obj.current_tier, placement.tier, stored_gb);
            months[0].breakdown.write += change;
            obj_total += change;

            // Early deletion penalty if moved off a tier with a minimum
            // residency period.
            if let Some(from) = obj.current_tier {
                if from != placement.tier {
                    let from_tier = self.model.catalog().tier(from)?;
                    if from_tier.early_deletion_days > 0 {
                        let remaining_months = from_tier.early_deletion_days as f64 / 30.0;
                        let penalty = from_tier.storage_cost_cents_per_gb_month
                            * obj.size_gb
                            * remaining_months;
                        months[0].early_deletion_penalty += penalty;
                        obj_total += penalty;
                    }
                }
            }

            per_object.insert(obj.name.clone(), obj_total);
        }

        // Access costs.
        for ev in accesses {
            if ev.month >= horizon_months {
                continue; // outside the billed horizon
            }
            let Some(placement) = self.placements.get(&ev.object) else {
                continue; // accesses to unknown objects are ignored
            };
            if !ev.volume_gb.is_finite() || ev.volume_gb < 0.0 {
                return Err(CloudSimError::InvalidParameter {
                    name: "volume_gb",
                    value: ev.volume_gb,
                });
            }
            let effective_gb = ev.volume_gb / placement.compression_ratio.max(f64::MIN_POSITIVE);
            let m = &mut months[ev.month as usize];
            let cost = match ev.kind {
                AccessKind::Read => {
                    let read = self.model.read_cost(placement.tier, effective_gb, 1.0);
                    let decomp = self
                        .model
                        .decompression_cost(placement.decompression_seconds, 1.0);
                    m.breakdown.read += read;
                    m.breakdown.decompression += decomp;
                    read + decomp
                }
                AccessKind::Write => {
                    let w = self.model.write_cost(placement.tier, effective_gb);
                    m.breakdown.write += w;
                    w
                }
            };
            *per_object.entry(ev.object.clone()).or_insert(0.0) += cost;
        }

        Ok(BillingReport { months, per_object })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> BillingSimulator {
        BillingSimulator::new(TierCatalog::azure_adls_gen2())
    }

    #[test]
    fn storage_is_charged_every_month() {
        let mut s = sim();
        let hot = s.model.catalog().tier_id("Hot").unwrap();
        s.place(ObjectSpec::new("a", 10.0), Placement::uncompressed(hot))
            .unwrap();
        let report = s.run(6, &[]).unwrap();
        assert_eq!(report.months.len(), 6);
        let per_month = 10.0 * 2.08;
        for m in &report.months {
            assert!((m.breakdown.storage - per_month).abs() < 1e-9);
        }
        // Month 0 also carries the ingest write.
        assert!(report.months[0].breakdown.write > 0.0);
        assert!(report.months[1].breakdown.write == 0.0);
    }

    #[test]
    fn reads_are_charged_in_their_month() {
        let mut s = sim();
        let cool = s.model.catalog().tier_id("Cool").unwrap();
        s.place(ObjectSpec::new("a", 10.0), Placement::uncompressed(cool))
            .unwrap();
        let trace = vec![AccessEvent::read("a", 2, 10.0), AccessEvent::read("a", 2, 10.0)];
        let report = s.run(4, &trace).unwrap();
        assert_eq!(report.months[0].breakdown.read, 0.0);
        assert!((report.months[2].breakdown.read - 2.0 * 10.0 * 0.0333).abs() < 1e-9);
    }

    #[test]
    fn early_deletion_penalty_applies_when_leaving_archive_early() {
        let catalog = TierCatalog::azure_adls_gen2();
        let archive = catalog.tier_id("Archive").unwrap();
        let hot = catalog.tier_id("Hot").unwrap();
        let mut s = BillingSimulator::new(catalog);
        s.place(
            ObjectSpec::new("a", 100.0).on_tier(archive),
            Placement::uncompressed(hot),
        )
        .unwrap();
        let report = s.run(2, &[]).unwrap();
        assert!(report.months[0].early_deletion_penalty > 0.0);
        // 180 days = 6 months at the archive storage rate.
        let expected = 0.099 * 100.0 * 6.0;
        assert!((report.months[0].early_deletion_penalty - expected).abs() < 1e-9);
    }

    #[test]
    fn no_penalty_when_staying_on_tier() {
        let catalog = TierCatalog::azure_adls_gen2();
        let archive = catalog.tier_id("Archive").unwrap();
        let mut s = BillingSimulator::new(catalog);
        s.place(
            ObjectSpec::new("a", 100.0).on_tier(archive),
            Placement::uncompressed(archive),
        )
        .unwrap();
        let report = s.run(2, &[]).unwrap();
        assert_eq!(report.months[0].early_deletion_penalty, 0.0);
        assert_eq!(report.months[0].breakdown.write, 0.0);
    }

    #[test]
    fn compression_reduces_billed_storage_and_read_volume() {
        let catalog = TierCatalog::azure_adls_gen2();
        let hot = catalog.tier_id("Hot").unwrap();
        let mut plain = BillingSimulator::new(catalog.clone());
        plain
            .place(ObjectSpec::new("a", 100.0), Placement::uncompressed(hot))
            .unwrap();
        let mut comp = BillingSimulator::new(catalog);
        comp.place(
            ObjectSpec::new("a", 100.0),
            Placement {
                tier: hot,
                compression_ratio: 5.0,
                decompression_seconds: 1.0,
            },
        )
        .unwrap();
        let trace = vec![AccessEvent::read("a", 0, 100.0)];
        let rp = plain.run(3, &trace).unwrap();
        let rc = comp.run(3, &trace).unwrap();
        assert!(rc.total_breakdown().storage < rp.total_breakdown().storage);
        assert!(rc.total_breakdown().read < rp.total_breakdown().read);
        assert!(rc.total_breakdown().decompression > 0.0);
    }

    #[test]
    fn percent_benefit_vs_baseline() {
        let catalog = TierCatalog::azure_adls_gen2();
        let hot = catalog.tier_id("Hot").unwrap();
        let cool = catalog.tier_id("Cool").unwrap();
        let mut base = BillingSimulator::new(catalog.clone());
        base.place(ObjectSpec::new("a", 1000.0), Placement::uncompressed(hot))
            .unwrap();
        let mut opt = BillingSimulator::new(catalog);
        opt.place(ObjectSpec::new("a", 1000.0), Placement::uncompressed(cool))
            .unwrap();
        let rb = base.run(6, &[]).unwrap();
        let ro = opt.run(6, &[]).unwrap();
        let benefit = ro.percent_benefit_vs(&rb);
        assert!(benefit > 0.0 && benefit < 100.0);
    }

    #[test]
    fn zero_horizon_and_bad_volume_are_rejected() {
        let mut s = sim();
        let hot = s.model.catalog().tier_id("Hot").unwrap();
        s.place(ObjectSpec::new("a", 1.0), Placement::uncompressed(hot))
            .unwrap();
        assert!(s.run(0, &[]).is_err());
        let bad = vec![AccessEvent::read("a", 0, f64::NAN)];
        assert!(s.run(1, &bad).is_err());
    }

    #[test]
    fn accesses_to_unknown_objects_or_outside_horizon_are_ignored() {
        let mut s = sim();
        let hot = s.model.catalog().tier_id("Hot").unwrap();
        s.place(ObjectSpec::new("a", 1.0), Placement::uncompressed(hot))
            .unwrap();
        let trace = vec![
            AccessEvent::read("nonexistent", 0, 1.0),
            AccessEvent::read("a", 99, 1.0),
        ];
        let report = s.run(2, &trace).unwrap();
        assert_eq!(report.total_breakdown().read, 0.0);
    }

    #[test]
    fn writes_are_charged_at_write_rate() {
        let mut s = sim();
        let hot = s.model.catalog().tier_id("Hot").unwrap();
        s.place(ObjectSpec::new("a", 10.0), Placement::uncompressed(hot))
            .unwrap();
        let trace = vec![AccessEvent::write("a", 1, 5.0)];
        let report = s.run(2, &trace).unwrap();
        assert!(report.months[1].breakdown.write > 0.0);
    }
}
