//! Canonical Huffman coding over byte symbols, with a bit-level writer and
//! reader. Used by [`crate::gzipish`] as the entropy-coding stage on top of
//! the LZ77 token stream.

use crate::error::CompressError;

/// Maximum code length permitted (enough for 256 symbols with any
/// distribution after length limiting).
const MAX_CODE_LEN: usize = 15;

/// A canonical Huffman code book for byte symbols 0..=255.
#[derive(Debug, Clone)]
pub struct HuffmanCode {
    /// Code length per symbol (0 = symbol absent).
    lengths: [u8; 256],
    /// Canonical code value per symbol.
    codes: [u16; 256],
}

impl HuffmanCode {
    /// Build a length-limited canonical Huffman code from symbol
    /// frequencies. Symbols with zero frequency get no code.
    pub fn from_frequencies(freq: &[u64; 256]) -> HuffmanCode {
        let mut lengths = [0u8; 256];
        let present: Vec<usize> = (0..256).filter(|&s| freq[s] > 0).collect();
        match present.len() {
            0 => {}
            1 => lengths[present[0]] = 1,
            _ => {
                assign_lengths(freq, &mut lengths);
                limit_lengths(&mut lengths, freq);
            }
        }
        let codes = canonical_codes(&lengths);
        HuffmanCode { lengths, codes }
    }

    /// Rebuild a code book from its per-symbol code lengths (the decoder
    /// side of the canonical construction).
    pub fn from_lengths(lengths: &[u8; 256]) -> HuffmanCode {
        let codes = canonical_codes(lengths);
        HuffmanCode {
            lengths: *lengths,
            codes,
        }
    }

    /// Per-symbol code lengths (what gets stored in the stream header).
    pub fn lengths(&self) -> &[u8; 256] {
        &self.lengths
    }

    /// Canonical code value assigned to `symbol` (0 if the symbol has no
    /// code — check [`HuffmanCode::lengths`] to distinguish).
    pub fn code_of(&self, symbol: u8) -> u16 {
        self.codes[symbol as usize]
    }

    /// Encode one symbol into the bit writer.
    pub fn encode(&self, writer: &mut BitWriter, symbol: u8) {
        let len = self.lengths[symbol as usize];
        debug_assert!(len > 0, "encoding a symbol with no code");
        writer.write_bits(self.codes[symbol as usize] as u32, len as u32);
    }

    /// Build a decoding table: per-length canonical ranges over a flat
    /// symbol array (the classic count/first-code/first-index layout).
    pub fn decoder(&self) -> HuffmanDecoder {
        let mut entries: Vec<(u8, u16, u8)> = (0..256)
            .filter(|&s| self.lengths[s] > 0)
            .map(|s| (self.lengths[s], self.codes[s], s as u8))
            .collect();
        entries.sort();
        // Canonical construction assigns consecutive code values within each
        // length (in symbol order), so every length's codes form one
        // contiguous range — a membership test replaces the binary search.
        let mut count = [0u32; MAX_CODE_LEN + 1];
        let mut first_code = [0u32; MAX_CODE_LEN + 1];
        let mut first_index = [0u32; MAX_CODE_LEN + 1];
        let mut symbols = Vec::with_capacity(entries.len());
        for (i, &(len, code, sym)) in entries.iter().enumerate() {
            let len = len as usize;
            if count[len] == 0 {
                first_code[len] = code as u32;
                first_index[len] = i as u32;
            }
            count[len] += 1;
            symbols.push(sym);
        }
        HuffmanDecoder {
            count,
            first_code,
            first_index,
            symbols,
        }
    }
}

/// Assign Huffman code lengths by building the tree over a min-heap.
fn assign_lengths(freq: &[u64; 256], lengths: &mut [u8; 256]) {
    #[derive(PartialEq, Eq)]
    struct Node {
        weight: u64,
        index: usize, // into the nodes arena
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            other
                .weight
                .cmp(&self.weight)
                .then_with(|| other.index.cmp(&self.index))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    // Arena of (left, right, symbol) — leaves have symbol = Some.
    let mut arena: Vec<(Option<usize>, Option<usize>, Option<usize>)> = Vec::new();
    let mut heap = std::collections::BinaryHeap::new();
    for (s, &weight) in freq.iter().enumerate() {
        if weight > 0 {
            arena.push((None, None, Some(s)));
            heap.push(Node {
                weight,
                index: arena.len() - 1,
            });
        }
    }
    while heap.len() > 1 {
        let a = heap.pop().expect("heap has >= 2 items");
        let b = heap.pop().expect("heap has >= 2 items");
        arena.push((Some(a.index), Some(b.index), None));
        heap.push(Node {
            weight: a.weight + b.weight,
            index: arena.len() - 1,
        });
    }
    let root = heap.pop().expect("non-empty symbol set").index;
    // Depth-first traversal assigning depths as code lengths.
    let mut stack = vec![(root, 0u8)];
    while let Some((node, depth)) = stack.pop() {
        let (l, r, sym) = arena[node];
        if let Some(s) = sym {
            lengths[s] = depth.max(1);
        } else {
            if let Some(l) = l {
                stack.push((l, depth + 1));
            }
            if let Some(r) = r {
                stack.push((r, depth + 1));
            }
        }
    }
}

/// Limit code lengths to MAX_CODE_LEN using the simple "push down" heuristic
/// and rebuild a valid Kraft-satisfying set of lengths.
fn limit_lengths(lengths: &mut [u8; 256], freq: &[u64; 256]) {
    if lengths.iter().all(|&l| (l as usize) <= MAX_CODE_LEN) {
        return;
    }
    // Fall back to a flat assignment ordered by frequency: give the most
    // frequent symbols the shortest codes subject to the Kraft inequality.
    let mut symbols: Vec<usize> = (0..256).filter(|&s| freq[s] > 0).collect();
    symbols.sort_by_key(|&s| std::cmp::Reverse(freq[s]));
    let n = symbols.len();
    let min_len = (n as f64).log2().ceil() as u8;
    for &s in &symbols {
        lengths[s] = min_len.clamp(1, MAX_CODE_LEN as u8);
    }
}

/// Compute canonical code values from code lengths.
fn canonical_codes(lengths: &[u8; 256]) -> [u16; 256] {
    let mut codes = [0u16; 256];
    // Count codes of each length.
    let mut bl_count = [0u16; MAX_CODE_LEN + 1];
    for &l in lengths.iter() {
        if l > 0 {
            bl_count[l as usize] += 1;
        }
    }
    // Smallest code for each length.
    let mut next_code = [0u16; MAX_CODE_LEN + 2];
    let mut code = 0u16;
    for bits in 1..=MAX_CODE_LEN {
        code = (code + bl_count[bits - 1]) << 1;
        next_code[bits] = code;
    }
    // Assign codes in symbol order (canonical).
    for s in 0..256 {
        let len = lengths[s] as usize;
        if len > 0 {
            codes[s] = next_code[len];
            next_code[len] += 1;
        }
    }
    codes
}

/// Decoder built from a canonical code book.
#[derive(Debug, Clone)]
pub struct HuffmanDecoder {
    /// Number of codes of each length.
    count: [u32; MAX_CODE_LEN + 1],
    /// Smallest code value of each length.
    first_code: [u32; MAX_CODE_LEN + 1],
    /// Index into `symbols` of the first code of each length.
    first_index: [u32; MAX_CODE_LEN + 1],
    /// Symbols sorted by (length, code).
    symbols: Vec<u8>,
}

impl HuffmanDecoder {
    /// Decode one symbol from the bit reader. Consumes exactly the bits of
    /// one code; errors with `Truncated` at the first missing bit and with
    /// `InvalidSymbol` after [`MAX_CODE_LEN`] unmatched bits (identical
    /// positions to the preserved binary-search decoder in
    /// [`crate::reference`]).
    pub fn decode(&self, reader: &mut BitReader) -> Result<u8, CompressError> {
        let mut code = 0u32;
        for len in 1..=MAX_CODE_LEN {
            code = (code << 1) | reader.read_bits(1)?;
            let n = self.count[len];
            let first = self.first_code[len];
            if n > 0 && code >= first && code - first < n {
                let idx = self.first_index[len] + (code - first);
                return Ok(self.symbols[idx as usize]);
            }
        }
        Err(CompressError::InvalidSymbol)
    }
}

/// MSB-first bit writer with a word accumulator: bits pile up in a `u64`
/// and drain a whole byte at a time, producing byte-for-byte the same
/// output as the preserved bit-at-a-time writer in [`crate::reference`]
/// (including the zero-padded final byte).
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Pending bits; only the low `nbits` are meaningful.
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write the low `count` bits of `value`, most significant bit first.
    pub fn write_bits(&mut self, value: u32, count: u32) {
        debug_assert!(count <= 32);
        // `nbits` stays < 8 between calls, so the shift below tops out at
        // 7 + 32 = 39 meaningful bits — no overflow. Stale bits above
        // `nbits` fall off the top of the accumulator harmlessly.
        let mask = if count == 32 {
            u32::MAX as u64
        } else {
            (1u64 << count) - 1
        };
        self.acc = (self.acc << count) | (value as u64 & mask);
        self.nbits += count;
        while self.nbits >= 8 {
            self.nbits -= 8;
            self.bytes.push((self.acc >> self.nbits) as u8);
        }
    }

    /// Finish writing and return the byte buffer, zero-padding the final
    /// partial byte (if any) on the right.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            let tail = (self.acc as u8) & ((1u16 << self.nbits) - 1) as u8;
            self.bytes.push(tail << (8 - self.nbits));
        }
        self.bytes
    }
}

/// MSB-first bit reader.
#[derive(Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    byte_pos: usize,
    bit_pos: u8,
}

impl<'a> BitReader<'a> {
    /// Create a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader {
            bytes,
            byte_pos: 0,
            bit_pos: 0,
        }
    }

    /// Read `count` bits (MSB first) as the low bits of the returned value.
    /// Consumes whatever remains of the current byte in one step rather than
    /// bit by bit; reader state after a `Truncated` error is the same as the
    /// per-bit loop's (all available bits consumed).
    pub fn read_bits(&mut self, count: u32) -> Result<u32, CompressError> {
        let mut value = 0u32;
        let mut remaining = count;
        while remaining > 0 {
            if self.byte_pos >= self.bytes.len() {
                return Err(CompressError::Truncated);
            }
            let avail = 8 - self.bit_pos as u32;
            let take = remaining.min(avail);
            let byte = self.bytes[self.byte_pos] as u32;
            let bits = (byte >> (avail - take)) & ((1u32 << take) - 1);
            value = (value << take) | bits;
            self.bit_pos += take as u8;
            if self.bit_pos == 8 {
                self.bit_pos = 0;
                self.byte_pos += 1;
            }
            remaining -= take;
        }
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frequencies(data: &[u8]) -> [u64; 256] {
        let mut f = [0u64; 256];
        for &b in data {
            f[b as usize] += 1;
        }
        f
    }

    #[test]
    fn bit_writer_reader_round_trip() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0b1111_0000, 8);
        w.write_bits(1, 1);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(8).unwrap(), 0b1111_0000);
        assert_eq!(r.read_bits(1).unwrap(), 1);
    }

    #[test]
    fn reader_detects_truncation() {
        let mut r = BitReader::new(&[0xFF]);
        assert!(r.read_bits(8).is_ok());
        assert_eq!(r.read_bits(1).unwrap_err(), CompressError::Truncated);
    }

    #[test]
    fn huffman_round_trips_text() {
        let data = b"compression ratios depend on repetition repetition repetition";
        let code = HuffmanCode::from_frequencies(&frequencies(data));
        let mut w = BitWriter::new();
        for &b in data.iter() {
            code.encode(&mut w, b);
        }
        let bytes = w.finish();
        let decoder = code.decoder();
        let mut r = BitReader::new(&bytes);
        let decoded: Vec<u8> = (0..data.len())
            .map(|_| decoder.decode(&mut r).unwrap())
            .collect();
        assert_eq!(decoded, data);
        // The entropy-coded form of skewed text must be smaller than raw.
        assert!(bytes.len() < data.len());
    }

    #[test]
    fn code_lengths_survive_canonical_reconstruction() {
        let data = b"aaaaaaaaaabbbbbcccdde";
        let code = HuffmanCode::from_frequencies(&frequencies(data));
        let rebuilt = HuffmanCode::from_lengths(code.lengths());
        let mut w1 = BitWriter::new();
        let mut w2 = BitWriter::new();
        for &b in data.iter() {
            code.encode(&mut w1, b);
            rebuilt.encode(&mut w2, b);
        }
        assert_eq!(w1.finish(), w2.finish());
    }

    #[test]
    fn frequent_symbols_get_shorter_codes() {
        let mut freq = [0u64; 256];
        freq[b'a' as usize] = 1000;
        freq[b'z' as usize] = 1;
        freq[b'q' as usize] = 1;
        freq[b'x' as usize] = 1;
        let code = HuffmanCode::from_frequencies(&freq);
        assert!(code.lengths()[b'a' as usize] <= code.lengths()[b'z' as usize]);
    }

    #[test]
    fn single_symbol_alphabet() {
        let mut freq = [0u64; 256];
        freq[42] = 17;
        let code = HuffmanCode::from_frequencies(&freq);
        assert_eq!(code.lengths()[42], 1);
        let mut w = BitWriter::new();
        for _ in 0..17 {
            code.encode(&mut w, 42);
        }
        let bytes = w.finish();
        let decoder = code.decoder();
        let mut r = BitReader::new(&bytes);
        for _ in 0..17 {
            assert_eq!(decoder.decode(&mut r).unwrap(), 42);
        }
    }

    #[test]
    fn all_256_symbols_round_trip() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let code = HuffmanCode::from_frequencies(&frequencies(&data));
        let mut w = BitWriter::new();
        for &b in &data {
            code.encode(&mut w, b);
        }
        let bytes = w.finish();
        let decoder = code.decoder();
        let mut r = BitReader::new(&bytes);
        for &b in &data {
            assert_eq!(decoder.decode(&mut r).unwrap(), b);
        }
    }
}
