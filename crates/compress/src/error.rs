//! Error type for the compression crate.

use std::fmt;

/// Errors produced when decompressing a corrupted or truncated stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressError {
    /// The stream ended before the declared length was decoded.
    Truncated,
    /// The stream's magic bytes or version tag were not recognised.
    BadHeader,
    /// A back-reference pointed before the start of the output.
    InvalidBackreference {
        /// Offset requested by the match token.
        offset: usize,
        /// Bytes decoded so far.
        decoded: usize,
    },
    /// A Huffman code or token tag was invalid.
    InvalidSymbol,
    /// The decoded length does not match the declared length.
    LengthMismatch {
        /// Length declared in the header.
        expected: usize,
        /// Length actually decoded.
        found: usize,
    },
}

impl fmt::Display for CompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressError::Truncated => write!(f, "compressed stream is truncated"),
            CompressError::BadHeader => write!(f, "unrecognised compressed stream header"),
            CompressError::InvalidBackreference { offset, decoded } => write!(
                f,
                "invalid back-reference: offset {offset} with only {decoded} bytes decoded"
            ),
            CompressError::InvalidSymbol => write!(f, "invalid symbol in compressed stream"),
            CompressError::LengthMismatch { expected, found } => write!(
                f,
                "decoded length {found} does not match declared length {expected}"
            ),
        }
    }
}

impl std::error::Error for CompressError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CompressError::Truncated.to_string().contains("truncated"));
        assert!(CompressError::BadHeader.to_string().contains("header"));
        assert!(CompressError::InvalidBackreference {
            offset: 10,
            decoded: 3
        }
        .to_string()
        .contains("10"));
        assert!(CompressError::LengthMismatch {
            expected: 5,
            found: 2
        }
        .to_string()
        .contains('5'));
    }
}
