//! Run-length encoding: the trivial baseline codec.
//!
//! Stream layout: magic `RLE1`, u64 original length, then (u8 run length,
//! u8 value) pairs. Only worthwhile on data with long byte runs (e.g.
//! constant columns); on text it typically *expands*, which makes it a
//! useful negative control in the codec-comparison experiments.

use crate::error::CompressError;
use crate::Codec;

const MAGIC: &[u8; 4] = b"RLE1";

/// Run-length encoding codec.
#[derive(Debug, Clone, Copy, Default)]
pub struct RleCodec;

impl Codec for RleCodec {
    fn name(&self) -> &'static str {
        "rle"
    }

    fn compress(&self, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len() / 2 + 16);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(data.len() as u64).to_le_bytes());
        let mut i = 0usize;
        while i < data.len() {
            let b = data[i];
            let mut run = 1usize;
            while i + run < data.len() && data[i + run] == b && run < 255 {
                run += 1;
            }
            out.push(run as u8);
            out.push(b);
            i += run;
        }
        out
    }

    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, CompressError> {
        if data.len() < 12 || &data[0..4] != MAGIC {
            return Err(CompressError::BadHeader);
        }
        let original_len = u64::from_le_bytes(data[4..12].try_into().expect("8 bytes")) as usize;
        let mut out = Vec::with_capacity(original_len);
        let body = &data[12..];
        if body.len() % 2 != 0 {
            return Err(CompressError::Truncated);
        }
        for pair in body.chunks_exact(2) {
            let run = pair[0] as usize;
            if run == 0 {
                return Err(CompressError::InvalidSymbol);
            }
            out.extend(std::iter::repeat(pair[1]).take(run));
        }
        if out.len() != original_len {
            return Err(CompressError::LengthMismatch {
                expected: original_len,
                found: out.len(),
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compresses_runs_and_round_trips() {
        let data = [vec![0u8; 1000], vec![7u8; 500], vec![1u8, 2, 3]].concat();
        let codec = RleCodec;
        let compressed = codec.compress(&data);
        assert!(compressed.len() < 50);
        assert_eq!(codec.decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn expands_non_repetitive_data_but_round_trips() {
        let data: Vec<u8> = (0..=255u8).collect();
        let codec = RleCodec;
        let compressed = codec.compress(&data);
        assert!(compressed.len() > data.len()); // negative control
        assert_eq!(codec.decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn empty_input_round_trips() {
        let codec = RleCodec;
        assert_eq!(
            codec.decompress(&codec.compress(b"")).unwrap(),
            Vec::<u8>::new()
        );
    }

    #[test]
    fn rejects_corrupted_streams() {
        let codec = RleCodec;
        assert_eq!(
            codec.decompress(b"xx").unwrap_err(),
            CompressError::BadHeader
        );
        let mut c = codec.compress(&[5u8; 100]);
        c.push(9); // odd body length
        assert!(codec.decompress(&c).is_err());
        // Zero-length run is invalid.
        let mut bad = b"RLE1".to_vec();
        bad.extend_from_slice(&1u64.to_le_bytes());
        bad.extend_from_slice(&[0, 42]);
        assert_eq!(
            codec.decompress(&bad).unwrap_err(),
            CompressError::InvalidSymbol
        );
    }
}
