//! Run-length encoding: the trivial baseline codec.
//!
//! Stream layout: magic `RLE1`, u64 original length, then (u8 run length,
//! u8 value) pairs. Only worthwhile on data with long byte runs (e.g.
//! constant columns); on text it typically *expands*, which makes it a
//! useful negative control in the codec-comparison experiments.
//!
//! Run detection compares eight bytes per step: the run byte is broadcast
//! into a `u64` and XORed against each input word, with `trailing_zeros`
//! locating the first mismatching byte (little-endian, so the low byte is
//! the earliest). The trailing sub-word region falls back to a byte loop.
//! Decompression expands each pair with one `Vec::resize` (a memset) per
//! run. Both paths are pinned byte-for-byte against the preserved
//! [`crate::reference`] implementations, including error values.

use crate::error::CompressError;
use crate::Codec;

const MAGIC: &[u8; 4] = b"RLE1";

#[inline]
fn read_u64_le(data: &[u8], at: usize) -> u64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&data[at..at + 8]);
    u64::from_le_bytes(buf)
}

/// Length of the run of `data[i]` starting at `i`, capped at 255 (the
/// largest run one pair can carry). Word-compare kernel with a byte tail.
#[inline]
fn run_len(data: &[u8], i: usize) -> usize {
    let n = data.len();
    let b = data[i];
    let broadcast = (b as u64) * 0x0101_0101_0101_0101;
    let mut run = 1usize;
    while run < 255 {
        if i + run + 8 <= n {
            let x = read_u64_le(data, i + run) ^ broadcast;
            if x == 0 {
                run += 8;
                continue;
            }
            run += (x.trailing_zeros() >> 3) as usize;
            return run.min(255);
        }
        // Fewer than 8 bytes left: finish byte by byte.
        while run < 255 && i + run < n && data[i + run] == b {
            run += 1;
        }
        break;
    }
    run.min(255)
}

/// Run-length encoding codec.
#[derive(Debug, Clone, Copy, Default)]
pub struct RleCodec;

impl Codec for RleCodec {
    fn name(&self) -> &'static str {
        "rle"
    }

    fn compress(&self, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len() / 2 + 16);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(data.len() as u64).to_le_bytes());
        let mut i = 0usize;
        while i < data.len() {
            let run = run_len(data, i);
            out.push(run as u8);
            out.push(data[i]);
            i += run;
        }
        out
    }

    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, CompressError> {
        if data.len() < 12 || &data[0..4] != MAGIC {
            return Err(CompressError::BadHeader);
        }
        let original_len = read_u64_le(data, 4) as usize;
        let mut out = Vec::with_capacity(original_len.min(1 << 20));
        let body = &data[12..];
        if body.len() % 2 != 0 {
            return Err(CompressError::Truncated);
        }
        for pair in body.chunks_exact(2) {
            let run = pair[0] as usize;
            if run == 0 {
                return Err(CompressError::InvalidSymbol);
            }
            // resize fills the grown region with the run byte — one memset
            // per pair instead of a push per byte.
            out.resize(out.len() + run, pair[1]);
        }
        if out.len() != original_len {
            return Err(CompressError::LengthMismatch {
                expected: original_len,
                found: out.len(),
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{rle_compress_reference, rle_decompress_reference};

    #[test]
    fn compresses_runs_and_round_trips() {
        let data = [vec![0u8; 1000], vec![7u8; 500], vec![1u8, 2, 3]].concat();
        let codec = RleCodec;
        let compressed = codec.compress(&data);
        assert!(compressed.len() < 50);
        assert_eq!(codec.decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn expands_non_repetitive_data_but_round_trips() {
        let data: Vec<u8> = (0..=255u8).collect();
        let codec = RleCodec;
        let compressed = codec.compress(&data);
        assert!(compressed.len() > data.len()); // negative control
        assert_eq!(codec.decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn empty_input_round_trips() {
        let codec = RleCodec;
        assert_eq!(
            codec.decompress(&codec.compress(b"")).unwrap(),
            Vec::<u8>::new()
        );
    }

    #[test]
    fn rejects_corrupted_streams() {
        let codec = RleCodec;
        assert_eq!(
            codec.decompress(b"xx").unwrap_err(),
            CompressError::BadHeader
        );
        let mut c = codec.compress(&[5u8; 100]);
        c.push(9); // odd body length
        assert!(codec.decompress(&c).is_err());
        // Zero-length run is invalid.
        let mut bad = b"RLE1".to_vec();
        bad.extend_from_slice(&1u64.to_le_bytes());
        bad.extend_from_slice(&[0, 42]);
        assert_eq!(
            codec.decompress(&bad).unwrap_err(),
            CompressError::InvalidSymbol
        );
    }

    #[test]
    fn word_kernel_matches_reference_bytes() {
        let codec = RleCodec;
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![9],
            vec![9; 7],            // shorter than one word
            vec![9; 8],            // exactly one word
            vec![9; 255],          // exactly one max run
            vec![9; 256],          // run cap straddle
            vec![9; 1021],         // several max runs + tail
            (0..=255u8).collect(), // all runs of 1
            [vec![1u8; 3], vec![2; 13], vec![3; 300], vec![4; 1]].concat(),
            b"abababababab".to_vec(),
        ];
        for data in &cases {
            let fast = codec.compress(data);
            let reference = rle_compress_reference(data);
            assert_eq!(fast, reference, "input len {}", data.len());
            assert_eq!(
                codec.decompress(&fast).unwrap(),
                rle_decompress_reference(&reference).unwrap()
            );
        }
        // Corrupted streams: identical error values.
        let good = codec.compress(&[5u8; 600]);
        for cut in [0, 5, 11, 13, good.len() - 1] {
            assert_eq!(
                codec.decompress(&good[..cut]).err(),
                rle_decompress_reference(&good[..cut]).err(),
                "cut {cut}"
            );
        }
    }
}
