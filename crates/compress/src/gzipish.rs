//! The gzip analogue: LZ77 matching + canonical Huffman entropy coding.
//!
//! Like DEFLATE, compression runs in two stages: a dictionary stage
//! (LZ77 with a deep-chain matcher) and an entropy-coding stage (canonical
//! Huffman over the byte-serialised token stream). The token stream uses
//! the same compact block format as [`crate::lz4ish`] — a token byte whose
//! nibbles carry the literal-run and match lengths, followed by the
//! literals and a 2-byte offset — so the Huffman stage starts from a
//! representation that is already as dense as LZ4's and only adds gains.
//!
//! Stream layout:
//!
//! ```text
//! magic "GZF2" | u64 original length | 256 bytes of Huffman code lengths |
//! u64 token-stream byte length | Huffman-coded token bytes
//! ```
//!
//! Two stages (dictionary + entropy coding) is what gives DEFLATE its
//! density advantage over LZ4 and Snappy, and the same holds for this codec
//! relative to [`crate::lz4ish`] and [`crate::snappyish`] — see the
//! comparative tests in `measure.rs`.

use crate::error::CompressError;
use crate::huffman::{BitReader, BitWriter, HuffmanCode};
use crate::lz4ish::Lz4ishCodec;
use crate::lz77::MatcherParams;
use crate::Codec;

const MAGIC: &[u8; 4] = b"GZF2";

#[inline]
fn read_u64_le(data: &[u8], at: usize) -> u64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&data[at..at + 8]);
    u64::from_le_bytes(buf)
}

/// The gzip-like codec.
#[derive(Debug, Clone)]
pub struct GzipishCodec {
    inner: Lz4ishCodec,
}

impl Default for GzipishCodec {
    fn default() -> Self {
        GzipishCodec {
            inner: Lz4ishCodec::with_params(MatcherParams::thorough()),
        }
    }
}

impl GzipishCodec {
    /// Create a codec with custom matcher parameters (used by tests and the
    /// ablation benches).
    pub fn with_params(params: MatcherParams) -> Self {
        GzipishCodec {
            inner: Lz4ishCodec::with_params(params),
        }
    }
}

impl Codec for GzipishCodec {
    fn name(&self) -> &'static str {
        "gzip"
    }

    fn compress(&self, data: &[u8]) -> Vec<u8> {
        // Stage 1: dictionary coding (thorough LZ77, block-serialised).
        let token_bytes = self.inner.compress(data);

        // Stage 2: canonical Huffman over the token bytes.
        let mut freq = [0u64; 256];
        for &b in &token_bytes {
            freq[b as usize] += 1;
        }
        let code = HuffmanCode::from_frequencies(&freq);
        let mut writer = BitWriter::new();
        for &b in &token_bytes {
            code.encode(&mut writer, b);
        }
        let coded = writer.finish();

        let mut out = Vec::with_capacity(coded.len() + 256 + 32);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(data.len() as u64).to_le_bytes());
        out.extend_from_slice(code.lengths());
        out.extend_from_slice(&(token_bytes.len() as u64).to_le_bytes());
        out.extend_from_slice(&coded);
        out
    }

    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, CompressError> {
        if data.len() < 4 + 8 + 256 + 8 || &data[0..4] != MAGIC {
            return Err(CompressError::BadHeader);
        }
        let original_len = read_u64_le(data, 4) as usize;
        let mut lengths = [0u8; 256];
        lengths.copy_from_slice(&data[12..268]);
        let token_len = read_u64_le(data, 268) as usize;
        let coded = &data[276..];

        let code = HuffmanCode::from_lengths(&lengths);
        let decoder = code.decoder();
        let mut reader = BitReader::new(coded);
        // Cap the *preallocation* (not the output): a corrupted header can
        // declare an absurd token count, but a real stream only carries
        // ~1 bit per token at minimum, so growth past the cap is organic.
        let mut token_bytes = Vec::with_capacity(token_len.min(1 << 20));
        for _ in 0..token_len {
            token_bytes.push(decoder.decode(&mut reader)?);
        }
        let out = self.inner.decompress(&token_bytes)?;
        if out.len() != original_len {
            return Err(CompressError::LengthMismatch {
                expected: original_len,
                found: out.len(),
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_text_and_compresses_it() {
        let data = b"select l_returnflag, l_linestatus, sum(l_quantity) from lineitem ".repeat(40);
        let codec = GzipishCodec::default();
        let compressed = codec.compress(&data);
        assert!(
            compressed.len() < data.len() / 2,
            "ratio too poor: {} vs {}",
            compressed.len(),
            data.len()
        );
        assert_eq!(codec.decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn entropy_stage_beats_plain_lz4_on_tabular_text() {
        let mut data = Vec::new();
        for i in 0..400 {
            data.extend_from_slice(
                format!(
                    "{i},Customer#{:09},AUTOMOBILE,1995-03-11,5-LOW,furiously final requests\n",
                    i % 997
                )
                .as_bytes(),
            );
        }
        let gz = GzipishCodec::default().compress(&data);
        let lz = crate::Lz4ishCodec::default().compress(&data);
        assert!(gz.len() < lz.len(), "gzip {} vs lz4 {}", gz.len(), lz.len());
    }

    #[test]
    fn round_trips_empty_and_tiny_inputs() {
        let codec = GzipishCodec::default();
        for data in [&b""[..], &b"x"[..], &b"ab"[..], &b"abcd"[..]] {
            let compressed = codec.compress(data);
            assert_eq!(codec.decompress(&compressed).unwrap(), data);
        }
    }

    #[test]
    fn rejects_corrupted_streams() {
        let codec = GzipishCodec::default();
        assert_eq!(
            codec.decompress(b"not a stream").unwrap_err(),
            CompressError::BadHeader
        );
        let mut compressed = codec.compress(b"hello hello hello hello hello");
        // Flip the declared original length.
        compressed[4] ^= 0xFF;
        assert!(codec.decompress(&compressed).is_err());
        // Truncate the body.
        let ok = codec.compress(b"hello hello hello hello hello");
        assert!(codec.decompress(&ok[..ok.len() - 3]).is_err());
    }

    #[test]
    fn two_stage_stream_matches_reference_bytes() {
        use crate::reference::{gzipish_compress_reference, gzipish_decompress_reference};
        let cases: Vec<Vec<u8>> = vec![
            b"l_orderkey|l_partkey|l_suppkey|l_quantity\n".repeat(80),
            vec![0u8; 2048],
            (0..1024u32).flat_map(|i| (i * i).to_le_bytes()).collect(),
            b"ab".to_vec(),
        ];
        for data in &cases {
            for params in [MatcherParams::thorough(), MatcherParams::fastest()] {
                let fast = GzipishCodec::with_params(params).compress(data);
                let reference = gzipish_compress_reference(data, &params);
                assert_eq!(fast, reference, "params {params:?}");
                assert_eq!(
                    GzipishCodec::with_params(params).decompress(&fast).unwrap(),
                    gzipish_decompress_reference(&reference).unwrap()
                );
            }
        }
        // Truncation anywhere in the entropy-coded body errors identically.
        let good = GzipishCodec::default().compress(&cases[0]);
        for cut in [0, 7, 270, 276, good.len() - 2] {
            assert_eq!(
                GzipishCodec::default().decompress(&good[..cut]).err(),
                gzipish_decompress_reference(&good[..cut]).err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn incompressible_data_still_round_trips() {
        let mut data = Vec::with_capacity(4096);
        let mut x: u64 = 99;
        for _ in 0..4096 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            data.push((x & 0xFF) as u8);
        }
        let codec = GzipishCodec::default();
        assert_eq!(codec.decompress(&codec.compress(&data)).unwrap(), data);
    }
}
