//! # scope-compress
//!
//! From-scratch compression codecs with measured compression ratios and
//! decompression timings.
//!
//! The paper's COMPREDICT module predicts the compression ratio and
//! decompression speed of gzip, snappy and lz4 on data partitions. The real
//! codecs are not in the allowed dependency set, so this crate implements
//! three codecs *from scratch* with the same qualitative profile:
//!
//! * [`GzipishCodec`] — LZ77 matching followed by canonical Huffman entropy
//!   coding. Densest output, slowest to decompress (an analogue of gzip /
//!   DEFLATE).
//! * [`Lz4ishCodec`] — byte-oriented LZ77 token stream without entropy
//!   coding, 64 KiB window. Fast, lighter compression (an analogue of LZ4).
//! * [`SnappyishCodec`] — byte-oriented LZ77 with a small window and greedy
//!   skipping. Fastest, lightest compression (an analogue of Snappy).
//! * [`RleCodec`] — run-length encoding, used as a trivial baseline and for
//!   the columnar layout's internal encodings.
//! * [`NoopCodec`] — "no compression", the `R = 1, D = 0` option the
//!   OPTASSIGN formulation always includes.
//!
//! What matters for the reproduction is that ratios and timings are *real
//! measurements on real bytes* that vary with the data's repetitiveness and
//! layout — which is exactly what the COMPREDICT features try to capture —
//! and that the orderings (gzip densest/slowest, snappy fastest/lightest)
//! match the real libraries, which they do (see the cross-codec tests in
//! [`measure`]).
//!
//! ## Block format
//!
//! The LZ-family codecs share one block-based wire format (see
//! [`lz4ish`]): after a 4-byte magic and a u64 little-endian original
//! length, the stream is a sequence of blocks, each holding one literal run
//! followed by at most one back-reference. A block opens with a token byte
//! — high nibble literal-run length, low nibble match length minus the
//! 4-byte minimum, both with 15 as a "more length bytes follow" escape
//! (LZ4's 255-byte continuation scheme) — then the literal bytes, then a
//! 2-byte little-endian match offset. The final block carries only
//! literals. [`gzipish`] wraps the same token stream in a canonical Huffman
//! entropy-coding layer; [`rle`] uses plain (run, value) byte pairs.
//!
//! ## Word-level kernels, without `unsafe`
//!
//! The hot loops move eight bytes at a time but contain no `unsafe`:
//!
//! * **Match extension** ([`lz77`]) loads two `u64`s via
//!   `copy_from_slice` into a stack array, XORs them, and converts
//!   `trailing_zeros` to a byte count (little-endian, so the lowest byte is
//!   the earliest position). Word loads only happen while `i + 8 <= len`;
//!   the final sub-word region is compared byte by byte, so every index is
//!   bounds-checked by the slice layer and short inputs never touch the
//!   word path.
//! * **Match copies** ([`lz4ish`] decompression) write whole words through
//!   `copy_from_slice` into a `Vec` that is always kept at least 8 bytes
//!   longer than the logical output, so a copy may overshoot the logical
//!   end by up to 7 bytes yet never reaches the buffer's real end.
//!   Overlapping copies (offset < 8) take a byte-at-a-time path because the
//!   word path would read bytes the copy itself has not produced yet.
//! * **Run detection** ([`rle`]) broadcasts the run byte into a `u64` and
//!   XOR-compares word-sized chunks, again switching to a byte loop for the
//!   sub-word tail.
//!
//! Every optimized path is pinned **byte-for-byte** (output bytes and error
//! values, not just round-trip success) against the preserved
//! byte-at-a-time implementations in [`reference`], both in unit tests and
//! in the workspace-level `differential_compress` proptest suite.
//!
//! ```
//! use scope_compress::{Codec, GzipishCodec, SnappyishCodec};
//!
//! let data = b"abcabcabcabcabcabcabcabcabcabc".repeat(20);
//! let gz = GzipishCodec::default();
//! let compressed = gz.compress(&data);
//! assert!(compressed.len() < data.len());
//! assert_eq!(gz.decompress(&compressed).unwrap(), data);
//!
//! // Snappyish trades ratio for speed: still round-trips, usually bigger.
//! let sn = SnappyishCodec::default();
//! assert_eq!(sn.decompress(&sn.compress(&data)).unwrap(), data);
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod gzipish;
pub mod huffman;
pub mod lz4ish;
pub mod lz77;
pub mod measure;
pub mod reference;
pub mod rle;
pub mod snappyish;

pub use error::CompressError;
pub use gzipish::GzipishCodec;
pub use lz4ish::Lz4ishCodec;
pub use measure::{measure, CompressionMeasurement};
pub use rle::RleCodec;
pub use snappyish::SnappyishCodec;

/// A lossless byte-stream compression codec.
pub trait Codec {
    /// Short name used in reports ("gzip", "snappy", "lz4", "none", ...).
    fn name(&self) -> &'static str;

    /// Compress `data` into a self-describing byte stream.
    fn compress(&self, data: &[u8]) -> Vec<u8>;

    /// Decompress a stream produced by [`Codec::compress`].
    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, CompressError>;
}

/// The identity codec ("no compression"): ratio exactly 1.0 and zero
/// decompression cost, always available as an OPTASSIGN option.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopCodec;

impl Codec for NoopCodec {
    fn name(&self) -> &'static str {
        "none"
    }

    fn compress(&self, data: &[u8]) -> Vec<u8> {
        data.to_vec()
    }

    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, CompressError> {
        Ok(data.to_vec())
    }
}

/// Enumeration of the compression schemes evaluated in the paper, in the
/// form the optimizer and predictor crates consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompressionScheme {
    /// No compression.
    None,
    /// The gzip analogue (LZ77 + Huffman).
    Gzip,
    /// The snappy analogue.
    Snappy,
    /// The lz4 analogue.
    Lz4,
    /// Run-length encoding.
    Rle,
}

impl CompressionScheme {
    /// All schemes, in a stable order.
    pub fn all() -> [CompressionScheme; 5] {
        [
            CompressionScheme::None,
            CompressionScheme::Gzip,
            CompressionScheme::Snappy,
            CompressionScheme::Lz4,
            CompressionScheme::Rle,
        ]
    }

    /// The schemes the paper's tables sweep (no compression, gzip, snappy,
    /// lz4).
    pub fn paper_schemes() -> [CompressionScheme; 4] {
        [
            CompressionScheme::None,
            CompressionScheme::Gzip,
            CompressionScheme::Snappy,
            CompressionScheme::Lz4,
        ]
    }

    /// Short name.
    pub fn name(&self) -> &'static str {
        match self {
            CompressionScheme::None => "none",
            CompressionScheme::Gzip => "gzip",
            CompressionScheme::Snappy => "snappy",
            CompressionScheme::Lz4 => "lz4",
            CompressionScheme::Rle => "rle",
        }
    }

    /// Instantiate the codec implementing this scheme.
    pub fn codec(&self) -> Box<dyn Codec> {
        match self {
            CompressionScheme::None => Box::new(NoopCodec),
            CompressionScheme::Gzip => Box::new(GzipishCodec::default()),
            CompressionScheme::Snappy => Box::new(SnappyishCodec::default()),
            CompressionScheme::Lz4 => Box::new(Lz4ishCodec::default()),
            CompressionScheme::Rle => Box::new(RleCodec),
        }
    }
}

impl std::fmt::Display for CompressionScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_codec_round_trips_and_is_identity() {
        let data = b"hello world".to_vec();
        let c = NoopCodec;
        assert_eq!(c.compress(&data), data);
        assert_eq!(c.decompress(&data).unwrap(), data);
        assert_eq!(c.name(), "none");
    }

    #[test]
    fn scheme_names_and_codecs() {
        assert_eq!(CompressionScheme::Gzip.name(), "gzip");
        assert_eq!(CompressionScheme::all().len(), 5);
        assert_eq!(CompressionScheme::paper_schemes().len(), 4);
        for scheme in CompressionScheme::all() {
            let codec = scheme.codec();
            assert_eq!(codec.name(), scheme.name());
            let data = b"some repetitive data data data data".to_vec();
            assert_eq!(codec.decompress(&codec.compress(&data)).unwrap(), data);
        }
        assert_eq!(format!("{}", CompressionScheme::Lz4), "lz4");
    }
}
