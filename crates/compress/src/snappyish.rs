//! The Snappy analogue: byte-oriented LZ77 with a small window and a single
//! match candidate per position — fastest compression and decompression,
//! lightest ratio.
//!
//! Stream layout and kernels are shared with [`crate::lz4ish`] — the
//! word-level match extension and wild-copy decode apply here unchanged;
//! what differs is the matcher effort (and therefore speed/ratio profile),
//! which is exactly how Snappy differs from LZ4/DEFLATE in practice.

use crate::error::CompressError;
use crate::lz4ish::Lz4ishCodec;
use crate::lz77::MatcherParams;
use crate::Codec;

/// The snappy-like codec.
#[derive(Debug, Clone)]
pub struct SnappyishCodec {
    inner: Lz4ishCodec,
}

impl Default for SnappyishCodec {
    fn default() -> Self {
        SnappyishCodec {
            inner: Lz4ishCodec::with_params(MatcherParams::fastest()),
        }
    }
}

impl Codec for SnappyishCodec {
    fn name(&self) -> &'static str {
        "snappy"
    }

    fn compress(&self, data: &[u8]) -> Vec<u8> {
        self.inner.compress(data)
    }

    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, CompressError> {
        self.inner.decompress(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GzipishCodec;

    #[test]
    fn round_trips_and_compresses_repetitive_data() {
        let data = b"status=SHIPPED;priority=HIGH;qty=10;".repeat(300);
        let codec = SnappyishCodec::default();
        let compressed = codec.compress(&data);
        assert!(compressed.len() < data.len());
        assert_eq!(codec.decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn snappy_is_lighter_than_gzip_on_text() {
        // The defining relationship the optimizer relies on: gzip compresses
        // harder than snappy on typical tabular text.
        let data =
            b"1024,Customer#000001024,AUTOMOBILE,1995-03-11,5-LOW,furiously final requests\n"
                .repeat(150);
        let gz = GzipishCodec::default().compress(&data);
        let sn = SnappyishCodec::default().compress(&data);
        assert!(
            gz.len() < sn.len(),
            "gzip {} vs snappy {}",
            gz.len(),
            sn.len()
        );
    }

    #[test]
    fn round_trips_incompressible_data() {
        let mut data = Vec::with_capacity(2000);
        let mut x: u64 = 7;
        for _ in 0..2000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            data.push((x & 0xFF) as u8);
        }
        let codec = SnappyishCodec::default();
        assert_eq!(codec.decompress(&codec.compress(&data)).unwrap(), data);
    }

    #[test]
    fn empty_input() {
        let codec = SnappyishCodec::default();
        assert_eq!(
            codec.decompress(&codec.compress(b"")).unwrap(),
            Vec::<u8>::new()
        );
    }
}
