//! Measurement of compression ratio and decompression speed.
//!
//! COMPREDICT's training targets are (compression ratio, decompression
//! seconds per GB) pairs obtained by actually compressing sampled data.
//! [`measure`] produces exactly those two numbers for any [`Codec`], timing
//! the decompression with enough repetitions that small inputs still get a
//! stable estimate.

use crate::Codec;
use std::time::Instant;

/// Result of measuring a codec on a byte buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionMeasurement {
    /// Uncompressed size in bytes.
    pub original_bytes: usize,
    /// Compressed size in bytes.
    pub compressed_bytes: usize,
    /// Compression ratio `original / compressed` (>= 0; > 1 means the codec
    /// actually shrank the data).
    pub ratio: f64,
    /// Wall-clock seconds taken by one decompression of the buffer.
    pub decompress_seconds: f64,
    /// Decompression speed normalised to seconds per GB of *uncompressed*
    /// data — the unit used in Table VIII.
    pub decompress_seconds_per_gb: f64,
    /// Wall-clock seconds taken by one compression of the buffer.
    pub compress_seconds: f64,
    /// Compression throughput in GB/s of uncompressed input (min-of-reps
    /// timing, so the max observed throughput).
    pub compress_gb_per_s: f64,
    /// Decompression throughput in GB/s of uncompressed output (min-of-reps
    /// timing, so the max observed throughput).
    pub decompress_gb_per_s: f64,
}

/// Measure `codec` on `data`.
///
/// Decompression is repeated (at least 3 times, until ~2 ms have elapsed or
/// 32 repetitions) and the **minimum** single-run time is reported: under
/// CPU contention (e.g. a parallel test run) the minimum tracks the true
/// cost of the work while an average is inflated by scheduler noise, and
/// inflated timings have flipped borderline optimizer decisions before.
/// Returns a measurement with ratio 1.0 and zero time for empty input.
pub fn measure(codec: &dyn Codec, data: &[u8]) -> CompressionMeasurement {
    if data.is_empty() {
        return CompressionMeasurement {
            original_bytes: 0,
            compressed_bytes: 0,
            ratio: 1.0,
            decompress_seconds: 0.0,
            decompress_seconds_per_gb: 0.0,
            compress_seconds: 0.0,
            compress_gb_per_s: 0.0,
            decompress_gb_per_s: 0.0,
        };
    }
    // Repeat compression, keeping the fastest observed run (and the output
    // of the first, which every run must reproduce byte for byte anyway).
    let mut compressed = Vec::new();
    let mut compress_seconds = f64::INFINITY;
    let mut reps = 0u32;
    let c_start = Instant::now();
    loop {
        let rep_start = Instant::now();
        let out = codec.compress(data);
        compress_seconds = compress_seconds.min(rep_start.elapsed().as_secs_f64());
        if reps == 0 {
            compressed = out;
        } else {
            debug_assert_eq!(out, compressed);
        }
        reps += 1;
        if reps >= 32 || (reps >= 3 && c_start.elapsed().as_secs_f64() > 0.002) {
            break;
        }
    }

    // Repeat decompression, keeping the fastest observed run.
    let mut reps = 0u32;
    let mut decompress_seconds = f64::INFINITY;
    let d_start = Instant::now();
    loop {
        let rep_start = Instant::now();
        let out = codec
            .decompress(&compressed)
            .expect("codec must round-trip its own output");
        decompress_seconds = decompress_seconds.min(rep_start.elapsed().as_secs_f64());
        debug_assert_eq!(out.len(), data.len());
        reps += 1;
        if reps >= 32 || (reps >= 3 && d_start.elapsed().as_secs_f64() > 0.002) {
            break;
        }
    }

    let gb = data.len() as f64 / 1e9;
    CompressionMeasurement {
        original_bytes: data.len(),
        compressed_bytes: compressed.len(),
        ratio: data.len() as f64 / compressed.len() as f64,
        decompress_seconds,
        decompress_seconds_per_gb: if gb > 0.0 {
            decompress_seconds / gb
        } else {
            0.0
        },
        compress_seconds,
        compress_gb_per_s: if compress_seconds > 0.0 {
            gb / compress_seconds
        } else {
            0.0
        },
        decompress_gb_per_s: if decompress_seconds > 0.0 {
            gb / decompress_seconds
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompressionScheme, GzipishCodec, Lz4ishCodec, NoopCodec, SnappyishCodec};

    fn tabular_text(rows: usize) -> Vec<u8> {
        let mut out = Vec::new();
        for i in 0..rows {
            out.extend_from_slice(
                format!(
                    "{},Customer#{:09},AUTOMOBILE,199{}-0{}-1{},{}-LOW,carefully final requests\n",
                    i,
                    i % 1000,
                    i % 8,
                    i % 9 + 1,
                    i % 9,
                    i % 5 + 1
                )
                .as_bytes(),
            );
        }
        out
    }

    #[test]
    fn ratio_ordering_matches_real_codecs() {
        // gzip >= lz4 >= snappy in compression ratio on tabular text — this
        // is the qualitative property the paper's optimizer and predictor
        // rely on.
        let data = tabular_text(400);
        let gz = measure(&GzipishCodec::default(), &data);
        let lz = measure(&Lz4ishCodec::default(), &data);
        let sn = measure(&SnappyishCodec::default(), &data);
        assert!(gz.ratio > 1.5, "gzip ratio = {}", gz.ratio);
        assert!(
            gz.ratio >= lz.ratio,
            "gzip {} vs lz4 {}",
            gz.ratio,
            lz.ratio
        );
        assert!(
            lz.ratio >= sn.ratio * 0.95,
            "lz4 {} vs snappy {}",
            lz.ratio,
            sn.ratio
        );
    }

    #[test]
    fn noop_has_ratio_one_and_fast_decompression() {
        let data = tabular_text(100);
        let m = measure(&NoopCodec, &data);
        assert!((m.ratio - 1.0).abs() < 1e-12);
        assert_eq!(m.original_bytes, m.compressed_bytes);
        assert!(m.decompress_seconds >= 0.0);
    }

    #[test]
    fn empty_input_measurement() {
        let m = measure(&GzipishCodec::default(), b"");
        assert_eq!(m.ratio, 1.0);
        assert_eq!(m.original_bytes, 0);
        assert_eq!(m.decompress_seconds_per_gb, 0.0);
    }

    #[test]
    fn repetitive_data_compresses_better_than_random() {
        let repetitive = b"AAAA-BBBB-CCCC-".repeat(500);
        let mut random = Vec::with_capacity(repetitive.len());
        let mut x: u64 = 3;
        for _ in 0..repetitive.len() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            random.push((x & 0xFF) as u8);
        }
        let codec = GzipishCodec::default();
        let r1 = measure(&codec, &repetitive);
        let r2 = measure(&codec, &random);
        assert!(r1.ratio > 3.0 * r2.ratio);
    }

    #[test]
    fn seconds_per_gb_scales_with_measured_time() {
        let data = tabular_text(200);
        let m = measure(&GzipishCodec::default(), &data);
        let expected = m.decompress_seconds / (data.len() as f64 / 1e9);
        assert!((m.decompress_seconds_per_gb - expected).abs() < 1e-9);
        assert!(m.decompress_seconds_per_gb > 0.0);
    }

    #[test]
    fn repeated_measurements_are_stable() {
        // Regression test: timings were once a single-sample average, so a
        // scheduler hiccup during one measurement could inflate a codec's
        // decompression time by orders of magnitude and flip optimizer
        // decisions downstream. With min-of-reps, two measurements of the
        // same buffer must agree to well within an order of magnitude.
        let data = tabular_text(300);
        let codec = GzipishCodec::default();
        let a = measure(&codec, &data);
        let b = measure(&codec, &data);
        assert!(a.decompress_seconds > 0.0);
        let ratio = a.decompress_seconds / b.decompress_seconds;
        assert!(
            (0.04..25.0).contains(&ratio),
            "unstable timing: {} vs {}",
            a.decompress_seconds,
            b.decompress_seconds
        );
    }

    #[test]
    fn all_schemes_produce_valid_measurements() {
        let data = tabular_text(100);
        for scheme in CompressionScheme::all() {
            let codec = scheme.codec();
            let m = measure(codec.as_ref(), &data);
            assert!(m.ratio > 0.0);
            assert!(m.compressed_bytes > 0);
            assert_eq!(m.original_bytes, data.len());
        }
    }

    #[test]
    fn throughput_fields_are_consistent_with_timings() {
        // Per the standing caveat, assertions on timings stay coarse: only
        // internal consistency and positivity, never absolute speeds.
        let data = tabular_text(300);
        let m = measure(&Lz4ishCodec::default(), &data);
        let gb = data.len() as f64 / 1e9;
        assert!(m.compress_gb_per_s > 0.0);
        assert!(m.decompress_gb_per_s > 0.0);
        assert!((m.compress_gb_per_s - gb / m.compress_seconds).abs() < 1e-9);
        assert!((m.decompress_gb_per_s - gb / m.decompress_seconds).abs() < 1e-9);
        let empty = measure(&Lz4ishCodec::default(), b"");
        assert_eq!(empty.compress_gb_per_s, 0.0);
        assert_eq!(empty.decompress_gb_per_s, 0.0);
    }
}
