//! Preserved byte-at-a-time codec paths: the differential oracles for the
//! word-level throughput kernels.
//!
//! Every function here is a behavioural snapshot of the pre-throughput
//! implementation of the corresponding production path: one byte compared,
//! copied or bit-shifted at a time, no hash-table reuse, no word loads. The
//! production kernels in [`crate::lz77`], [`crate::lz4ish`], [`crate::rle`],
//! [`crate::gzipish`] and [`crate::huffman`] must produce **identical output
//! bytes** (and identical [`CompressError`] values on corrupted streams),
//! which the `differential_compress` workspace tests and the
//! `throughput_bench` bin pin fast-vs-reference on every run.
//!
//! Nothing here is reachable from production code: the modules exist only to
//! keep the slow, obviously-correct paths alive as oracles.

use crate::error::CompressError;
use crate::huffman::HuffmanCode;
use crate::lz77::{MatcherParams, Token, MIN_MATCH};

const LZ4_MAGIC: &[u8; 4] = b"LZ4F";
const GZIP_MAGIC: &[u8; 4] = b"GZF2";
const RLE_MAGIC: &[u8; 4] = b"RLE1";

fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (v.wrapping_mul(2654435761) >> 16) as usize & 0xFFFF
}

fn read_u64_le(data: &[u8], at: usize) -> u64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&data[at..at + 8]);
    u64::from_le_bytes(buf)
}

/// The pre-throughput tokenizer: per-call `usize` hash chains and a
/// byte-at-a-time match-extension loop.
pub fn tokenize_reference(data: &[u8], params: &MatcherParams) -> Vec<Token> {
    let n = data.len();
    let mut tokens = Vec::with_capacity(n / 2 + 16);
    if n < MIN_MATCH {
        tokens.extend(data.iter().map(|&b| Token::Literal(b)));
        return tokens;
    }
    // head[h] = most recent position with hash h; prev[i] = previous position
    // with the same hash as i (hash chains).
    let mut head = vec![usize::MAX; 1 << 16];
    let mut prev = vec![usize::MAX; n];
    let mut i = 0usize;
    while i < n {
        if i + MIN_MATCH > n {
            tokens.push(Token::Literal(data[i]));
            i += 1;
            continue;
        }
        let h = hash4(data, i);
        // Walk the chain looking for the longest match within the window.
        let mut best_len = 0usize;
        let mut best_offset = 0usize;
        let mut candidate = head[h];
        let mut chain = 0usize;
        while candidate != usize::MAX && chain < params.max_chain && i - candidate <= params.window
        {
            let max_len = (n - i).min(params.max_match);
            let mut len = 0usize;
            while len < max_len && data[candidate + len] == data[i + len] {
                len += 1;
            }
            if len > best_len {
                best_len = len;
                best_offset = i - candidate;
                if len >= params.max_match {
                    break;
                }
            }
            candidate = prev[candidate];
            chain += 1;
        }
        // Insert the current position into the chain.
        prev[i] = head[h];
        head[h] = i;

        if best_len >= MIN_MATCH {
            tokens.push(Token::Match {
                offset: best_offset as u32,
                len: best_len as u32,
            });
            // Insert the skipped positions so later matches can reference them.
            let end = (i + best_len).min(n.saturating_sub(MIN_MATCH - 1));
            let mut j = i + 1;
            while j < end {
                let hj = hash4(data, j);
                prev[j] = head[hj];
                head[hj] = j;
                j += 1;
            }
            i += best_len;
        } else {
            tokens.push(Token::Literal(data[i]));
            i += 1;
        }
    }
    tokens
}

/// The pre-throughput detokenizer: one byte pushed per match position.
pub fn detokenize_reference(tokens: &[Token]) -> Option<Vec<u8>> {
    let mut out: Vec<u8> = Vec::with_capacity(tokens.len() * 2);
    for t in tokens {
        match *t {
            Token::Literal(b) => out.push(b),
            Token::Match { offset, len } => {
                let offset = offset as usize;
                if offset == 0 || offset > out.len() {
                    return None;
                }
                let start = out.len() - offset;
                for k in 0..len as usize {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    Some(out)
}

fn write_varlen(out: &mut Vec<u8>, mut value: usize) {
    while value >= 255 {
        out.push(255);
        value -= 255;
    }
    out.push(value as u8);
}

fn read_varlen(data: &[u8], pos: &mut usize) -> Result<usize, CompressError> {
    let mut value = 0usize;
    loop {
        let b = *data.get(*pos).ok_or(CompressError::Truncated)?;
        *pos += 1;
        value += b as usize;
        if b != 255 {
            return Ok(value);
        }
    }
}

/// The pre-throughput lz4ish serializer: tokenizes into an intermediate
/// `Vec<Token>`, then walks it grouping literal runs into blocks.
pub fn lz4ish_compress_reference(data: &[u8], params: &MatcherParams) -> Vec<u8> {
    let tokens = tokenize_reference(data, params);
    let mut out = Vec::with_capacity(data.len() / 2 + 32);
    out.extend_from_slice(LZ4_MAGIC);
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());

    // Walk tokens grouping literal runs followed by one match.
    let mut literals: Vec<u8> = Vec::new();
    let flush = |out: &mut Vec<u8>, literals: &mut Vec<u8>, m: Option<(u32, u32)>| {
        let lit_len = literals.len();
        let match_len = m.map(|(_, l)| l as usize - MIN_MATCH).unwrap_or(0);
        let token = (((lit_len.min(15)) as u8) << 4) | (match_len.min(15)) as u8;
        out.push(token);
        if lit_len >= 15 {
            write_varlen(out, lit_len - 15);
        }
        out.extend_from_slice(literals);
        literals.clear();
        if let Some((offset, len)) = m {
            out.extend_from_slice(&(offset as u16).to_le_bytes());
            let extra = len as usize - MIN_MATCH;
            if extra >= 15 {
                write_varlen(out, extra - 15);
            }
        }
    };
    for t in &tokens {
        match *t {
            Token::Literal(b) => literals.push(b),
            Token::Match { offset, len } => flush(&mut out, &mut literals, Some((offset, len))),
        }
    }
    // Trailing literal-only block (always emitted, possibly empty, so the
    // decoder knows the stream is complete).
    flush(&mut out, &mut literals, None);
    out
}

/// The pre-throughput lz4ish decoder: `Vec::push` per match byte.
pub fn lz4ish_decompress_reference(data: &[u8]) -> Result<Vec<u8>, CompressError> {
    if data.len() < 12 || &data[0..4] != LZ4_MAGIC {
        return Err(CompressError::BadHeader);
    }
    let original_len = read_u64_le(data, 4) as usize;
    // Cap the *preallocation* (not the output) so a corrupted length field
    // cannot request an absurd reservation; behavior is unchanged.
    let mut out = Vec::with_capacity(original_len.min(1 << 20));
    let mut pos = 12usize;
    while out.len() < original_len {
        let token = *data.get(pos).ok_or(CompressError::Truncated)?;
        pos += 1;
        let mut lit_len = (token >> 4) as usize;
        if lit_len == 15 {
            lit_len += read_varlen(data, &mut pos)?;
        }
        if pos + lit_len > data.len() {
            return Err(CompressError::Truncated);
        }
        out.extend_from_slice(&data[pos..pos + lit_len]);
        pos += lit_len;
        if out.len() >= original_len {
            break;
        }
        // Match part.
        if pos + 2 > data.len() {
            return Err(CompressError::Truncated);
        }
        let offset = u16::from_le_bytes([data[pos], data[pos + 1]]) as usize;
        pos += 2;
        let mut match_len = (token & 0x0F) as usize;
        if match_len == 15 {
            match_len += read_varlen(data, &mut pos)?;
        }
        match_len += MIN_MATCH;
        if offset == 0 || offset > out.len() {
            return Err(CompressError::InvalidBackreference {
                offset,
                decoded: out.len(),
            });
        }
        let start = out.len() - offset;
        for k in 0..match_len {
            let b = out[start + k];
            out.push(b);
        }
    }
    if out.len() != original_len {
        return Err(CompressError::LengthMismatch {
            expected: original_len,
            found: out.len(),
        });
    }
    Ok(out)
}

/// The pre-throughput RLE encoder: byte-at-a-time run detection.
pub fn rle_compress_reference(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    out.extend_from_slice(RLE_MAGIC);
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());
    let mut i = 0usize;
    while i < data.len() {
        let b = data[i];
        let mut run = 1usize;
        while i + run < data.len() && data[i + run] == b && run < 255 {
            run += 1;
        }
        out.push(run as u8);
        out.push(b);
        i += run;
    }
    out
}

/// The pre-throughput RLE decoder: `iter::repeat(..).take(..)` per pair.
pub fn rle_decompress_reference(data: &[u8]) -> Result<Vec<u8>, CompressError> {
    if data.len() < 12 || &data[0..4] != RLE_MAGIC {
        return Err(CompressError::BadHeader);
    }
    let original_len = read_u64_le(data, 4) as usize;
    // Preallocation capped like the fast path: capacity is not behavior.
    let mut out = Vec::with_capacity(original_len.min(1 << 20));
    let body = &data[12..];
    if body.len() % 2 != 0 {
        return Err(CompressError::Truncated);
    }
    for pair in body.chunks_exact(2) {
        let run = pair[0] as usize;
        if run == 0 {
            return Err(CompressError::InvalidSymbol);
        }
        out.extend(std::iter::repeat(pair[1]).take(run));
    }
    if out.len() != original_len {
        return Err(CompressError::LengthMismatch {
            expected: original_len,
            found: out.len(),
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Pre-throughput bit I/O (one bit per iteration) and the binary-search
// Huffman decoder, preserved so the gzipish oracle below is end-to-end
// independent of the production bit kernels.
// ---------------------------------------------------------------------------

#[derive(Default)]
struct BitWriterReference {
    bytes: Vec<u8>,
    bit_pos: u8,
}

impl BitWriterReference {
    fn write_bits(&mut self, value: u32, count: u32) {
        for i in (0..count).rev() {
            let bit = (value >> i) & 1;
            if self.bit_pos == 0 {
                self.bytes.push(0);
            }
            if let Some(last) = self.bytes.last_mut() {
                *last |= (bit as u8) << (7 - self.bit_pos);
            }
            self.bit_pos = (self.bit_pos + 1) % 8;
        }
    }
}

struct BitReaderReference<'a> {
    bytes: &'a [u8],
    byte_pos: usize,
    bit_pos: u8,
}

impl<'a> BitReaderReference<'a> {
    fn read_bit(&mut self) -> Result<u32, CompressError> {
        if self.byte_pos >= self.bytes.len() {
            return Err(CompressError::Truncated);
        }
        let bit = (self.bytes[self.byte_pos] >> (7 - self.bit_pos)) & 1;
        self.bit_pos += 1;
        if self.bit_pos == 8 {
            self.bit_pos = 0;
            self.byte_pos += 1;
        }
        Ok(bit as u32)
    }
}

const MAX_CODE_LEN: usize = 15;

/// Decode one symbol by binary search over sorted (length, code, symbol)
/// entries — the pre-throughput decoder loop.
fn decode_symbol_reference(
    entries: &[(u8, u16, u8)],
    reader: &mut BitReaderReference<'_>,
) -> Result<u8, CompressError> {
    let mut code = 0u16;
    for len in 1..=MAX_CODE_LEN as u8 {
        let bit = reader.read_bit()? as u16;
        code = (code << 1) | bit;
        if let Ok(idx) = entries.binary_search_by(|&(l, c, _)| (l, c).cmp(&(len, code))) {
            return Ok(entries[idx].2);
        }
    }
    Err(CompressError::InvalidSymbol)
}

/// The pre-throughput gzipish pipeline: reference LZ77 + reference
/// serializer + bit-at-a-time canonical Huffman writer.
pub fn gzipish_compress_reference(data: &[u8], params: &MatcherParams) -> Vec<u8> {
    // Stage 1: dictionary coding (reference LZ77, block-serialised).
    let token_bytes = lz4ish_compress_reference(data, params);

    // Stage 2: canonical Huffman over the token bytes.
    let mut freq = [0u64; 256];
    for &b in &token_bytes {
        freq[b as usize] += 1;
    }
    let code = HuffmanCode::from_frequencies(&freq);
    let mut writer = BitWriterReference::default();
    for &b in &token_bytes {
        let len = code.lengths()[b as usize];
        writer.write_bits(code.code_of(b) as u32, len as u32);
    }
    let coded = writer.bytes;

    let mut out = Vec::with_capacity(coded.len() + 256 + 32);
    out.extend_from_slice(GZIP_MAGIC);
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());
    out.extend_from_slice(code.lengths());
    out.extend_from_slice(&(token_bytes.len() as u64).to_le_bytes());
    out.extend_from_slice(&coded);
    out
}

/// The pre-throughput gzipish decoder: per-bit binary-search Huffman decode
/// feeding the reference lz4ish decoder.
pub fn gzipish_decompress_reference(data: &[u8]) -> Result<Vec<u8>, CompressError> {
    if data.len() < 4 + 8 + 256 + 8 || &data[0..4] != GZIP_MAGIC {
        return Err(CompressError::BadHeader);
    }
    let original_len = read_u64_le(data, 4) as usize;
    let mut lengths = [0u8; 256];
    lengths.copy_from_slice(&data[12..268]);
    let token_len = read_u64_le(data, 268) as usize;
    let coded = &data[276..];

    let code = HuffmanCode::from_lengths(&lengths);
    let mut entries: Vec<(u8, u16, u8)> = (0..256usize)
        .filter(|&s| code.lengths()[s] > 0)
        .map(|s| (code.lengths()[s], code.code_of(s as u8), s as u8))
        .collect();
    entries.sort();
    let mut reader = BitReaderReference {
        bytes: coded,
        byte_pos: 0,
        bit_pos: 0,
    };
    // Preallocation capped like the fast path: capacity is not behavior.
    let mut token_bytes = Vec::with_capacity(token_len.min(1 << 20));
    for _ in 0..token_len {
        token_bytes.push(decode_symbol_reference(&entries, &mut reader)?);
    }
    let out = lz4ish_decompress_reference(&token_bytes)?;
    if out.len() != original_len {
        return Err(CompressError::LengthMismatch {
            expected: original_len,
            found: out.len(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_search_decoder_matches_canonical_table_decoder() {
        // Pin `decode_symbol_reference` directly against the fast
        // canonical-table `HuffmanDecoder` on the same bit stream: every
        // decoded symbol and the error on a truncated stream must agree.
        let mut freq = [0u64; 256];
        for (i, f) in [900u64, 400, 220, 90, 31, 7, 3, 1].iter().enumerate() {
            freq[b'a' as usize + i] = *f;
        }
        let code = HuffmanCode::from_frequencies(&freq);
        let symbols: Vec<u8> = (0..500u32).map(|i| b'a' + (i * i % 8) as u8).collect();
        let mut writer = BitWriterReference::default();
        for &s in &symbols {
            writer.write_bits(code.code_of(s) as u32, code.lengths()[s as usize] as u32);
        }
        let coded = writer.bytes;

        let mut entries: Vec<(u8, u16, u8)> = (0..256usize)
            .filter(|&s| code.lengths()[s] > 0)
            .map(|s| (code.lengths()[s], code.code_of(s as u8), s as u8))
            .collect();
        entries.sort();
        let decoder = code.decoder();
        let mut slow = BitReaderReference {
            bytes: &coded,
            byte_pos: 0,
            bit_pos: 0,
        };
        let mut fast = crate::huffman::BitReader::new(&coded);
        for &expected in &symbols {
            let a = decode_symbol_reference(&entries, &mut slow).unwrap();
            let b = decoder.decode(&mut fast).unwrap();
            assert_eq!(a, expected);
            assert_eq!(b, expected);
        }
        // Truncation: both decoders fail identically on a cut stream.
        let cut = &coded[..coded.len() / 2];
        let mut slow = BitReaderReference {
            bytes: cut,
            byte_pos: 0,
            bit_pos: 0,
        };
        let mut fast = crate::huffman::BitReader::new(cut);
        loop {
            let last_slow = decode_symbol_reference(&entries, &mut slow);
            let last_fast = decoder.decode(&mut fast);
            assert_eq!(last_slow, last_fast);
            if last_slow.is_err() {
                assert_eq!(last_slow, Err(CompressError::Truncated));
                break;
            }
        }
    }

    #[test]
    fn reference_paths_round_trip() {
        let data = b"the quick brown fox jumps over the lazy dog. ".repeat(40);
        let params = MatcherParams::thorough();
        let tokens = tokenize_reference(&data, &params);
        assert_eq!(detokenize_reference(&tokens).as_deref(), Some(&data[..]));
        let lz = lz4ish_compress_reference(&data, &MatcherParams::fast());
        assert_eq!(lz4ish_decompress_reference(&lz).as_deref(), Ok(&data[..]));
        let gz = gzipish_compress_reference(&data, &params);
        assert_eq!(gzipish_decompress_reference(&gz).as_deref(), Ok(&data[..]));
        let rle = rle_compress_reference(&[vec![3u8; 700], vec![9u8; 3]].concat());
        assert_eq!(
            rle_decompress_reference(&rle).as_deref(),
            Ok(&[vec![3u8; 700], vec![9u8; 3]].concat()[..])
        );
    }
}
