//! Shared LZ77 matcher used by the gzip-, lz4- and snappy-style codecs.
//!
//! Matching uses a hash table over 4-byte prefixes with a configurable
//! search window and chain depth; the three codecs differ only in window
//! size, how hard they search and how they serialise the token stream.
//!
//! The matcher is built for throughput but pinned **token-for-token** to the
//! byte-at-a-time oracle in [`crate::reference`]:
//!
//! * the head/prev hash-chain table is a flattened pair of `u32` vectors
//!   owned by a reusable [`Tokenizer`], allocated once per compress call and
//!   reused across every block the serialiser emits;
//! * match extension compares eight bytes per step — a `u64` load from each
//!   side, XOR, and `trailing_zeros() / 8` to locate the first mismatching
//!   byte — with a byte-at-a-time tail for the last `< 8` bytes, so the
//!   computed length equals the byte loop's exactly;
//! * a one-byte probe at `data[candidate + best_len]` rejects chain
//!   candidates that cannot beat the current best match (any candidate
//!   differing there has length `<= best_len`), which skips the extension
//!   work without ever changing which candidate wins.
//!
//! Everything is safe Rust: word loads go through `copy_from_slice` into an
//! 8-byte array, and every load is bounds-guaranteed by the `len + 8 <=
//! max_len` loop condition (see the safety notes on [`match_len`]).

/// One LZ77 token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A literal byte copied verbatim.
    Literal(u8),
    /// A back-reference: copy `len` bytes starting `offset` bytes before the
    /// current output position.
    Match {
        /// Distance back from the current position (1-based).
        offset: u32,
        /// Number of bytes to copy (>= MIN_MATCH).
        len: u32,
    },
}

/// Minimum match length worth emitting.
pub const MIN_MATCH: usize = 4;

/// Parameters of the matcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatcherParams {
    /// Maximum back-reference distance.
    pub window: usize,
    /// Maximum match length.
    pub max_match: usize,
    /// Maximum number of hash-chain candidates examined per position
    /// (higher = better matches, slower compression).
    pub max_chain: usize,
}

impl MatcherParams {
    /// Thorough matching (gzip-like): deep hash chains and the full
    /// 16-bit-addressable window, so its match coverage is never worse than
    /// the fast profile's before entropy coding is even applied.
    pub fn thorough() -> Self {
        MatcherParams {
            window: u16::MAX as usize,
            max_match: 258,
            max_chain: 128,
        }
    }

    /// Fast matching (lz4-like): 64 KiB window, shallow chains. The window
    /// is capped at `u16::MAX` so offsets always fit the 2-byte encoding
    /// used by the byte-oriented codecs.
    pub fn fast() -> Self {
        MatcherParams {
            window: u16::MAX as usize,
            max_match: 255,
            max_chain: 8,
        }
    }

    /// Very fast matching (snappy-like): small window, single candidate.
    pub fn fastest() -> Self {
        MatcherParams {
            window: 8 * 1024,
            max_match: 64,
            max_chain: 1,
        }
    }
}

#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let mut buf = [0u8; 4];
    buf.copy_from_slice(&data[i..i + 4]);
    let v = u32::from_le_bytes(buf);
    (v.wrapping_mul(2654435761) >> 16) as usize & 0xFFFF
}

#[inline]
fn read_u64_le(data: &[u8], at: usize) -> u64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&data[at..at + 8]);
    u64::from_le_bytes(buf)
}

/// Length of the common prefix of `data[a..]` and `data[b..]`, capped at
/// `max_len`, computed eight bytes per step.
///
/// Safety of the word loads (all safe Rust, but the bounds reasoning is what
/// keeps the `copy_from_slice` calls panic-free): the callers guarantee
/// `a < b` and `b + max_len <= data.len()`. Inside the word loop
/// `len + 8 <= max_len`, so `b + len + 8 <= b + max_len <= data.len()` and
/// `a + len + 8 < b + len + 8 <= data.len()`. On a word mismatch the first
/// differing byte sits at `(x ^ y).trailing_zeros() / 8` in little-endian
/// order, which is exactly where the byte loop would have stopped.
#[inline]
fn match_len(data: &[u8], a: usize, b: usize, max_len: usize) -> usize {
    let mut len = 0usize;
    while len + 8 <= max_len {
        let x = read_u64_le(data, a + len);
        let y = read_u64_le(data, b + len);
        if x != y {
            return len + ((x ^ y).trailing_zeros() >> 3) as usize;
        }
        len += 8;
    }
    while len < max_len && data[a + len] == data[b + len] {
        len += 1;
    }
    len
}

/// Sentinel for an empty hash-chain slot (`u32` table entries).
const NIL: u32 = u32::MAX;

/// Receiver of the tokenizer's streaming output: one literal run (possibly
/// empty) followed by an optional match per callback — exactly the block
/// shape the byte-oriented codecs serialise.
pub trait TokenSink {
    /// One block: the literals `data[lit_start..lit_end]` followed by
    /// `m = Some((offset, len))`, or the trailing literal-only block
    /// (`m = None`, emitted exactly once at end of stream).
    fn block(&mut self, data: &[u8], lit_start: usize, lit_end: usize, m: Option<(u32, u32)>);
}

/// Streaming LZ77 tokenizer owning the flattened head/prev hash-chain
/// table, so one allocation serves every block of a compress call.
#[derive(Debug, Default)]
pub struct Tokenizer {
    /// head[h] = most recent position with hash h (NIL = empty).
    head: Vec<u32>,
    /// prev[i] = previous position with the same hash as position i. Only
    /// slots written by an insertion are ever read, so the vector is
    /// zero-filled rather than NIL-filled on reset.
    prev: Vec<u32>,
}

impl Tokenizer {
    /// Create a tokenizer with empty tables (grown on first use).
    pub fn new() -> Self {
        Tokenizer::default()
    }

    /// Reset the chain table for an input of `n` bytes, reusing the
    /// allocations from previous calls.
    fn reset(&mut self, n: usize) {
        if self.head.is_empty() {
            self.head = vec![NIL; 1 << 16];
        } else {
            self.head.fill(NIL);
        }
        self.prev.clear();
        self.prev.resize(n, 0);
    }

    /// Tokenise `data`, streaming blocks into `sink`. Token-for-token
    /// identical to [`crate::reference::tokenize_reference`]: same hash,
    /// same chain walk order, same first-strictly-longer selection rule,
    /// same skipped-position insertion.
    pub fn tokenize_into<S: TokenSink>(
        &mut self,
        data: &[u8],
        params: &MatcherParams,
        sink: &mut S,
    ) {
        let n = data.len();
        if n < MIN_MATCH || n > NIL as usize {
            // Tiny inputs are all literals; inputs beyond u32 positions
            // (never hit in practice) would overflow the flattened table.
            debug_assert!(n <= NIL as usize, "input too large for u32 chain table");
            sink.block(data, 0, n, None);
            return;
        }
        self.reset(n);
        let mut lit_start = 0usize;
        let mut i = 0usize;
        // Positions n - MIN_MATCH + 1 .. n can't start a match; the
        // reference emits them as literals, which the trailing block covers.
        let last = n - MIN_MATCH + 1;
        while i < last {
            let h = hash4(data, i);
            let max_len = (n - i).min(params.max_match);
            let mut best_len = 0usize;
            let mut best_offset = 0usize;
            let mut candidate = self.head[h];
            let mut chain = 0usize;
            while candidate != NIL
                && chain < params.max_chain
                && i - candidate as usize <= params.window
            {
                let c = candidate as usize;
                // Probe the byte a winning candidate must match: any
                // candidate differing at best_len has length <= best_len
                // and can never update the best, so skipping its extension
                // leaves the selection unchanged. (When i + best_len == n
                // the best already spans to the end and nothing can beat
                // it.)
                if best_len == 0 || (i + best_len < n && data[c + best_len] == data[i + best_len]) {
                    let len = match_len(data, c, i, max_len);
                    if len > best_len {
                        best_len = len;
                        best_offset = i - c;
                        if len >= params.max_match {
                            break;
                        }
                    }
                }
                candidate = self.prev[c];
                chain += 1;
            }
            // Insert the current position into the chain.
            self.prev[i] = self.head[h];
            self.head[h] = i as u32;

            if best_len >= MIN_MATCH {
                sink.block(
                    data,
                    lit_start,
                    i,
                    Some((best_offset as u32, best_len as u32)),
                );
                // Insert the skipped positions so later matches can
                // reference them.
                let end = (i + best_len).min(last);
                let mut j = i + 1;
                while j < end {
                    let hj = hash4(data, j);
                    self.prev[j] = self.head[hj];
                    self.head[hj] = j as u32;
                    j += 1;
                }
                i += best_len;
                lit_start = i;
            } else {
                i += 1;
            }
        }
        // Trailing literal-only block (always emitted, possibly empty).
        sink.block(data, lit_start, n, None);
    }
}

/// Sink that materialises the token stream as a `Vec<Token>`.
struct TokenVecSink {
    tokens: Vec<Token>,
}

impl TokenSink for TokenVecSink {
    fn block(&mut self, data: &[u8], lit_start: usize, lit_end: usize, m: Option<(u32, u32)>) {
        self.tokens
            .extend(data[lit_start..lit_end].iter().map(|&b| Token::Literal(b)));
        if let Some((offset, len)) = m {
            self.tokens.push(Token::Match { offset, len });
        }
    }
}

/// Tokenise `data` into literals and matches.
pub fn tokenize(data: &[u8], params: &MatcherParams) -> Vec<Token> {
    let mut sink = TokenVecSink {
        tokens: Vec::with_capacity(data.len() / 2 + 16),
    };
    Tokenizer::new().tokenize_into(data, params, &mut sink);
    sink.tokens
}

/// Reconstruct the original bytes from a token stream.
///
/// Returns `None` if a back-reference is invalid (points before the start of
/// the output).
pub fn detokenize(tokens: &[Token]) -> Option<Vec<u8>> {
    let mut out: Vec<u8> = Vec::with_capacity(tokens.len() * 2);
    for t in tokens {
        match *t {
            Token::Literal(b) => out.push(b),
            Token::Match { offset, len } => {
                let offset = offset as usize;
                if offset == 0 || offset > out.len() {
                    return None;
                }
                let start = out.len() - offset;
                for k in 0..len as usize {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::tokenize_reference;

    #[test]
    fn round_trip_repetitive_data() {
        let data = b"the quick brown fox jumps over the lazy dog. ".repeat(50);
        for params in [
            MatcherParams::thorough(),
            MatcherParams::fast(),
            MatcherParams::fastest(),
        ] {
            let tokens = tokenize(&data, &params);
            assert_eq!(detokenize(&tokens).unwrap(), data);
            // Repetitive data must produce matches.
            assert!(tokens.iter().any(|t| matches!(t, Token::Match { .. })));
        }
    }

    #[test]
    fn round_trip_short_and_empty_inputs() {
        for data in [&b""[..], &b"a"[..], &b"ab"[..], &b"abc"[..]] {
            let tokens = tokenize(data, &MatcherParams::thorough());
            assert_eq!(detokenize(&tokens).unwrap(), data);
            assert!(tokens.iter().all(|t| matches!(t, Token::Literal(_))));
        }
    }

    #[test]
    fn incompressible_data_is_mostly_literals() {
        // A pseudo-random byte sequence with no 4-byte repeats.
        let mut data = Vec::with_capacity(2048);
        let mut x: u64 = 0x12345678;
        for _ in 0..2048 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            data.push((x & 0xFF) as u8);
        }
        let tokens = tokenize(&data, &MatcherParams::thorough());
        let literals = tokens
            .iter()
            .filter(|t| matches!(t, Token::Literal(_)))
            .count();
        assert!(literals as f64 / tokens.len() as f64 > 0.9);
        assert_eq!(detokenize(&tokens).unwrap(), data);
    }

    #[test]
    fn thorough_matching_finds_fewer_tokens_than_fastest() {
        let data = b"abcdefgh".repeat(300);
        let thorough = tokenize(&data, &MatcherParams::thorough());
        let fastest = tokenize(&data, &MatcherParams::fastest());
        assert!(thorough.len() <= fastest.len());
    }

    #[test]
    fn overlapping_match_is_handled() {
        // "aaaaaaaa..." produces matches whose length exceeds their offset
        // (the classic overlapping-copy case).
        let data = vec![b'a'; 500];
        let tokens = tokenize(&data, &MatcherParams::fast());
        assert_eq!(detokenize(&tokens).unwrap(), data);
    }

    #[test]
    fn invalid_backreference_detected() {
        let tokens = vec![Token::Match { offset: 5, len: 3 }];
        assert!(detokenize(&tokens).is_none());
        let tokens = vec![Token::Literal(1), Token::Match { offset: 0, len: 3 }];
        assert!(detokenize(&tokens).is_none());
    }

    #[test]
    fn word_kernel_matches_reference_tokens_on_structured_data() {
        // Runs, periodic data, text, and a word-boundary-straddling tail:
        // the token streams must be identical, not merely equivalent.
        let mut cases: Vec<Vec<u8>> = vec![
            vec![b'x'; 1000],
            b"abcd".repeat(700),
            b"0123456".repeat(300),
            b"select l_returnflag from lineitem where l_ship < 17; ".repeat(40),
            (0u32..3000).flat_map(|i| i.to_le_bytes()).collect(),
        ];
        let mut x: u64 = 0xDEADBEEF;
        let mut random = Vec::with_capacity(4096);
        for _ in 0..4096 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            random.push((x & 0xFF) as u8);
        }
        cases.push(random);
        for data in &cases {
            for params in [
                MatcherParams::thorough(),
                MatcherParams::fast(),
                MatcherParams::fastest(),
            ] {
                assert_eq!(
                    tokenize(data, &params),
                    tokenize_reference(data, &params),
                    "params {params:?} len {}",
                    data.len()
                );
            }
        }
    }

    #[test]
    fn tokenizer_table_is_reusable_across_calls() {
        let mut tk = Tokenizer::new();
        let a = b"hello hello hello hello".repeat(30);
        let b = b"different bytes, different chains. ".repeat(30);
        for data in [&a, &b, &a] {
            let mut sink = TokenVecSink { tokens: Vec::new() };
            tk.tokenize_into(data, &MatcherParams::fast(), &mut sink);
            assert_eq!(
                sink.tokens,
                tokenize_reference(data, &MatcherParams::fast())
            );
        }
    }
}
