//! Shared LZ77 matcher used by the gzip-, lz4- and snappy-style codecs.
//!
//! Matching uses a hash table over 4-byte prefixes with a configurable
//! search window and chain depth; the three codecs differ only in window
//! size, how hard they search and how they serialise the token stream.

/// One LZ77 token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A literal byte copied verbatim.
    Literal(u8),
    /// A back-reference: copy `len` bytes starting `offset` bytes before the
    /// current output position.
    Match {
        /// Distance back from the current position (1-based).
        offset: u32,
        /// Number of bytes to copy (>= MIN_MATCH).
        len: u32,
    },
}

/// Minimum match length worth emitting.
pub const MIN_MATCH: usize = 4;

/// Parameters of the matcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatcherParams {
    /// Maximum back-reference distance.
    pub window: usize,
    /// Maximum match length.
    pub max_match: usize,
    /// Maximum number of hash-chain candidates examined per position
    /// (higher = better matches, slower compression).
    pub max_chain: usize,
}

impl MatcherParams {
    /// Thorough matching (gzip-like): deep hash chains and the full
    /// 16-bit-addressable window, so its match coverage is never worse than
    /// the fast profile's before entropy coding is even applied.
    pub fn thorough() -> Self {
        MatcherParams {
            window: u16::MAX as usize,
            max_match: 258,
            max_chain: 128,
        }
    }

    /// Fast matching (lz4-like): 64 KiB window, shallow chains. The window
    /// is capped at `u16::MAX` so offsets always fit the 2-byte encoding
    /// used by the byte-oriented codecs.
    pub fn fast() -> Self {
        MatcherParams {
            window: u16::MAX as usize,
            max_match: 255,
            max_chain: 8,
        }
    }

    /// Very fast matching (snappy-like): small window, single candidate.
    pub fn fastest() -> Self {
        MatcherParams {
            window: 8 * 1024,
            max_match: 64,
            max_chain: 1,
        }
    }
}

fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (v.wrapping_mul(2654435761) >> 16) as usize & 0xFFFF
}

/// Tokenise `data` into literals and matches.
pub fn tokenize(data: &[u8], params: &MatcherParams) -> Vec<Token> {
    let n = data.len();
    let mut tokens = Vec::with_capacity(n / 2 + 16);
    if n < MIN_MATCH {
        tokens.extend(data.iter().map(|&b| Token::Literal(b)));
        return tokens;
    }
    // head[h] = most recent position with hash h; prev[i] = previous position
    // with the same hash as i (hash chains).
    let mut head = vec![usize::MAX; 1 << 16];
    let mut prev = vec![usize::MAX; n];
    let mut i = 0usize;
    while i < n {
        if i + MIN_MATCH > n {
            tokens.push(Token::Literal(data[i]));
            i += 1;
            continue;
        }
        let h = hash4(data, i);
        // Walk the chain looking for the longest match within the window.
        let mut best_len = 0usize;
        let mut best_offset = 0usize;
        let mut candidate = head[h];
        let mut chain = 0usize;
        while candidate != usize::MAX && chain < params.max_chain && i - candidate <= params.window
        {
            let max_len = (n - i).min(params.max_match);
            let mut len = 0usize;
            while len < max_len && data[candidate + len] == data[i + len] {
                len += 1;
            }
            if len > best_len {
                best_len = len;
                best_offset = i - candidate;
                if len >= params.max_match {
                    break;
                }
            }
            candidate = prev[candidate];
            chain += 1;
        }
        // Insert the current position into the chain.
        prev[i] = head[h];
        head[h] = i;

        if best_len >= MIN_MATCH {
            tokens.push(Token::Match {
                offset: best_offset as u32,
                len: best_len as u32,
            });
            // Insert the skipped positions so later matches can reference them.
            let end = (i + best_len).min(n.saturating_sub(MIN_MATCH - 1));
            let mut j = i + 1;
            while j < end {
                let hj = hash4(data, j);
                prev[j] = head[hj];
                head[hj] = j;
                j += 1;
            }
            i += best_len;
        } else {
            tokens.push(Token::Literal(data[i]));
            i += 1;
        }
    }
    tokens
}

/// Reconstruct the original bytes from a token stream.
///
/// Returns `None` if a back-reference is invalid (points before the start of
/// the output).
pub fn detokenize(tokens: &[Token]) -> Option<Vec<u8>> {
    let mut out: Vec<u8> = Vec::with_capacity(tokens.len() * 2);
    for t in tokens {
        match *t {
            Token::Literal(b) => out.push(b),
            Token::Match { offset, len } => {
                let offset = offset as usize;
                if offset == 0 || offset > out.len() {
                    return None;
                }
                let start = out.len() - offset;
                for k in 0..len as usize {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_repetitive_data() {
        let data = b"the quick brown fox jumps over the lazy dog. ".repeat(50);
        for params in [
            MatcherParams::thorough(),
            MatcherParams::fast(),
            MatcherParams::fastest(),
        ] {
            let tokens = tokenize(&data, &params);
            assert_eq!(detokenize(&tokens).unwrap(), data);
            // Repetitive data must produce matches.
            assert!(tokens.iter().any(|t| matches!(t, Token::Match { .. })));
        }
    }

    #[test]
    fn round_trip_short_and_empty_inputs() {
        for data in [&b""[..], &b"a"[..], &b"ab"[..], &b"abc"[..]] {
            let tokens = tokenize(data, &MatcherParams::thorough());
            assert_eq!(detokenize(&tokens).unwrap(), data);
            assert!(tokens.iter().all(|t| matches!(t, Token::Literal(_))));
        }
    }

    #[test]
    fn incompressible_data_is_mostly_literals() {
        // A pseudo-random byte sequence with no 4-byte repeats.
        let mut data = Vec::with_capacity(2048);
        let mut x: u64 = 0x12345678;
        for _ in 0..2048 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            data.push((x & 0xFF) as u8);
        }
        let tokens = tokenize(&data, &MatcherParams::thorough());
        let literals = tokens
            .iter()
            .filter(|t| matches!(t, Token::Literal(_)))
            .count();
        assert!(literals as f64 / tokens.len() as f64 > 0.9);
        assert_eq!(detokenize(&tokens).unwrap(), data);
    }

    #[test]
    fn thorough_matching_finds_fewer_tokens_than_fastest() {
        let data = b"abcdefgh".repeat(300);
        let thorough = tokenize(&data, &MatcherParams::thorough());
        let fastest = tokenize(&data, &MatcherParams::fastest());
        assert!(thorough.len() <= fastest.len());
    }

    #[test]
    fn overlapping_match_is_handled() {
        // "aaaaaaaa..." produces matches whose length exceeds their offset
        // (the classic overlapping-copy case).
        let data = vec![b'a'; 500];
        let tokens = tokenize(&data, &MatcherParams::fast());
        assert_eq!(detokenize(&tokens).unwrap(), data);
    }

    #[test]
    fn invalid_backreference_detected() {
        let tokens = vec![Token::Match { offset: 5, len: 3 }];
        assert!(detokenize(&tokens).is_none());
        let tokens = vec![Token::Literal(1), Token::Match { offset: 0, len: 3 }];
        assert!(detokenize(&tokens).is_none());
    }
}
