//! The LZ4 analogue: byte-oriented LZ77 token stream without entropy coding.
//!
//! Stream layout:
//!
//! ```text
//! magic "LZ4F" | u64 original length | sequence of blocks
//! block := token byte | literals | [offset u16 le | extra match length]
//! ```
//!
//! Like real LZ4, each block starts with a token byte whose high nibble is
//! the literal-run length and low nibble the match length (both with 15 as
//! the "more bytes follow" escape), followed by the literals and a 2-byte
//! little-endian match offset. The final block carries only literals.

use crate::error::CompressError;
use crate::lz77::{tokenize, MatcherParams, Token, MIN_MATCH};
use crate::Codec;

const MAGIC: &[u8; 4] = b"LZ4F";

/// The LZ4-like codec.
#[derive(Debug, Clone)]
pub struct Lz4ishCodec {
    params: MatcherParams,
}

impl Default for Lz4ishCodec {
    fn default() -> Self {
        Lz4ishCodec {
            params: MatcherParams::fast(),
        }
    }
}

impl Lz4ishCodec {
    /// Create a codec with custom matcher parameters.
    pub fn with_params(params: MatcherParams) -> Self {
        Lz4ishCodec { params }
    }
}

fn write_varlen(out: &mut Vec<u8>, mut value: usize) {
    // LZ4-style: 255-bytes until the remainder fits.
    while value >= 255 {
        out.push(255);
        value -= 255;
    }
    out.push(value as u8);
}

fn read_varlen(data: &[u8], pos: &mut usize) -> Result<usize, CompressError> {
    let mut value = 0usize;
    loop {
        let b = *data.get(*pos).ok_or(CompressError::Truncated)?;
        *pos += 1;
        value += b as usize;
        if b != 255 {
            return Ok(value);
        }
    }
}

impl Codec for Lz4ishCodec {
    fn name(&self) -> &'static str {
        "lz4"
    }

    fn compress(&self, data: &[u8]) -> Vec<u8> {
        let tokens = tokenize(data, &self.params);
        let mut out = Vec::with_capacity(data.len() / 2 + 32);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(data.len() as u64).to_le_bytes());

        // Walk tokens grouping literal runs followed by one match.
        let mut literals: Vec<u8> = Vec::new();
        let flush = |out: &mut Vec<u8>, literals: &mut Vec<u8>, m: Option<(u32, u32)>| {
            let lit_len = literals.len();
            let match_len = m.map(|(_, l)| l as usize - MIN_MATCH).unwrap_or(0);
            let token = (((lit_len.min(15)) as u8) << 4) | (match_len.min(15)) as u8;
            out.push(token);
            if lit_len >= 15 {
                write_varlen(out, lit_len - 15);
            }
            out.extend_from_slice(literals);
            literals.clear();
            if let Some((offset, len)) = m {
                out.extend_from_slice(&(offset as u16).to_le_bytes());
                let extra = len as usize - MIN_MATCH;
                if extra >= 15 {
                    write_varlen(out, extra - 15);
                }
            }
        };
        for t in &tokens {
            match *t {
                Token::Literal(b) => literals.push(b),
                Token::Match { offset, len } => flush(&mut out, &mut literals, Some((offset, len))),
            }
        }
        // Trailing literal-only block (always emitted, possibly empty, so the
        // decoder knows the stream is complete).
        flush(&mut out, &mut literals, None);
        out
    }

    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, CompressError> {
        if data.len() < 12 || &data[0..4] != MAGIC {
            return Err(CompressError::BadHeader);
        }
        let original_len = u64::from_le_bytes(data[4..12].try_into().expect("8 bytes")) as usize;
        let mut out = Vec::with_capacity(original_len);
        let mut pos = 12usize;
        while out.len() < original_len {
            let token = *data.get(pos).ok_or(CompressError::Truncated)?;
            pos += 1;
            let mut lit_len = (token >> 4) as usize;
            if lit_len == 15 {
                lit_len += read_varlen(data, &mut pos)?;
            }
            if pos + lit_len > data.len() {
                return Err(CompressError::Truncated);
            }
            out.extend_from_slice(&data[pos..pos + lit_len]);
            pos += lit_len;
            if out.len() >= original_len {
                break;
            }
            // Match part.
            if pos + 2 > data.len() {
                return Err(CompressError::Truncated);
            }
            let offset = u16::from_le_bytes([data[pos], data[pos + 1]]) as usize;
            pos += 2;
            let mut match_len = (token & 0x0F) as usize;
            if match_len == 15 {
                match_len += read_varlen(data, &mut pos)?;
            }
            match_len += MIN_MATCH;
            if offset == 0 || offset > out.len() {
                return Err(CompressError::InvalidBackreference {
                    offset,
                    decoded: out.len(),
                });
            }
            let start = out.len() - offset;
            for k in 0..match_len {
                let b = out[start + k];
                out.push(b);
            }
        }
        if out.len() != original_len {
            return Err(CompressError::LengthMismatch {
                expected: original_len,
                found: out.len(),
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_repetitive_data_and_compresses() {
        let data = b"1,OPEN,2024-01-01,19.99,carefully packed\n".repeat(200);
        let codec = Lz4ishCodec::default();
        let compressed = codec.compress(&data);
        assert!(compressed.len() < data.len());
        assert_eq!(codec.decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn round_trips_empty_and_small_inputs() {
        let codec = Lz4ishCodec::default();
        for data in [&b""[..], &b"a"[..], &b"abcd"[..], &b"abcdefgh"[..]] {
            let compressed = codec.compress(data);
            assert_eq!(
                codec.decompress(&compressed).unwrap(),
                data,
                "data {data:?}"
            );
        }
    }

    #[test]
    fn long_literal_runs_use_varlen_encoding() {
        // 1000 distinct-ish bytes -> literal run > 15 exercises the escape.
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 7 % 251) as u8).collect();
        let codec = Lz4ishCodec::default();
        assert_eq!(codec.decompress(&codec.compress(&data)).unwrap(), data);
    }

    #[test]
    fn long_matches_use_varlen_encoding() {
        let data = vec![b'z'; 5000];
        let codec = Lz4ishCodec::default();
        let compressed = codec.compress(&data);
        assert!(compressed.len() < 200);
        assert_eq!(codec.decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn rejects_bad_header_and_truncation() {
        let codec = Lz4ishCodec::default();
        assert_eq!(
            codec.decompress(b"nope").unwrap_err(),
            CompressError::BadHeader
        );
        let compressed = codec.compress(&b"hello hello hello hello".repeat(10));
        assert!(codec
            .decompress(&compressed[..compressed.len() - 4])
            .is_err());
    }

    #[test]
    fn varlen_round_trip() {
        for value in [0usize, 5, 254, 255, 256, 1000, 70000] {
            let mut buf = Vec::new();
            write_varlen(&mut buf, value);
            let mut pos = 0;
            assert_eq!(read_varlen(&buf, &mut pos).unwrap(), value);
            assert_eq!(pos, buf.len());
        }
        let mut pos = 0;
        assert!(read_varlen(&[255, 255], &mut pos).is_err());
    }
}
