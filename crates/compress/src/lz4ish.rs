//! The LZ4 analogue: byte-oriented LZ77 token stream without entropy coding.
//!
//! Stream layout:
//!
//! ```text
//! magic "LZ4F" | u64 original length | sequence of blocks
//! block := token byte | literals | [offset u16 le | extra match length]
//! ```
//!
//! Like real LZ4, each block starts with a token byte whose high nibble is
//! the literal-run length and low nibble the match length (both with 15 as
//! the "more bytes follow" escape), followed by the literals and a 2-byte
//! little-endian match offset. The final block carries only literals.
//!
//! Compression streams blocks straight out of the word-level
//! [`Tokenizer`](crate::lz77::Tokenizer) — no intermediate `Vec<Token>`;
//! literals are copied from the input slice in one `extend_from_slice` per
//! block. Decompression resolves back-references eight bytes per step into
//! a pre-grown output buffer (see [`crate::reference`] for the preserved
//! byte-at-a-time paths both are pinned against, byte-for-byte, including
//! error values on corrupted streams).

use crate::error::CompressError;
use crate::lz77::{MatcherParams, TokenSink, Tokenizer, MIN_MATCH};
use crate::Codec;

const MAGIC: &[u8; 4] = b"LZ4F";

/// The LZ4-like codec.
#[derive(Debug, Clone)]
pub struct Lz4ishCodec {
    params: MatcherParams,
}

impl Default for Lz4ishCodec {
    fn default() -> Self {
        Lz4ishCodec {
            params: MatcherParams::fast(),
        }
    }
}

impl Lz4ishCodec {
    /// Create a codec with custom matcher parameters.
    pub fn with_params(params: MatcherParams) -> Self {
        Lz4ishCodec { params }
    }
}

fn write_varlen(out: &mut Vec<u8>, mut value: usize) {
    // LZ4-style: 255-bytes until the remainder fits.
    while value >= 255 {
        out.push(255);
        value -= 255;
    }
    out.push(value as u8);
}

fn read_varlen(data: &[u8], pos: &mut usize) -> Result<usize, CompressError> {
    let mut value = 0usize;
    loop {
        let b = *data.get(*pos).ok_or(CompressError::Truncated)?;
        *pos += 1;
        value += b as usize;
        if b != 255 {
            return Ok(value);
        }
    }
}

/// Serialising sink: writes each streamed block in the wire format above,
/// with the literal run copied directly from the input slice.
struct BlockSerializer {
    out: Vec<u8>,
}

impl TokenSink for BlockSerializer {
    fn block(&mut self, data: &[u8], lit_start: usize, lit_end: usize, m: Option<(u32, u32)>) {
        let lit_len = lit_end - lit_start;
        let match_len = m.map(|(_, l)| l as usize - MIN_MATCH).unwrap_or(0);
        let token = (((lit_len.min(15)) as u8) << 4) | (match_len.min(15)) as u8;
        self.out.push(token);
        if lit_len >= 15 {
            write_varlen(&mut self.out, lit_len - 15);
        }
        self.out.extend_from_slice(&data[lit_start..lit_end]);
        if let Some((offset, len)) = m {
            self.out.extend_from_slice(&(offset as u16).to_le_bytes());
            let extra = len as usize - MIN_MATCH;
            if extra >= 15 {
                write_varlen(&mut self.out, extra - 15);
            }
        }
    }
}

/// Compress `data` with the given matcher parameters into the `LZ4F` wire
/// format, streaming blocks out of `tokenizer` (shared by [`Lz4ishCodec`]
/// and [`crate::gzipish`]'s dictionary stage).
pub(crate) fn compress_with(
    tokenizer: &mut Tokenizer,
    data: &[u8],
    params: &MatcherParams,
) -> Vec<u8> {
    let mut sink = BlockSerializer {
        out: Vec::with_capacity(data.len() / 2 + 32),
    };
    sink.out.extend_from_slice(MAGIC);
    sink.out
        .extend_from_slice(&(data.len() as u64).to_le_bytes());
    tokenizer.tokenize_into(data, params, &mut sink);
    sink.out
}

#[inline]
fn read_u64_le(data: &[u8], at: usize) -> u64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&data[at..at + 8]);
    u64::from_le_bytes(buf)
}

/// Grow `buf` so that `needed + 7` bytes are valid, keeping an 8-byte slack
/// region past the logical end so the word-wise match copy below may
/// overshoot by up to 7 bytes without ever indexing out of bounds.
#[inline]
fn ensure_padded(buf: &mut Vec<u8>, needed: usize) {
    if buf.len() < needed + 8 {
        buf.resize((needed + 8).max(buf.len() * 2), 0);
    }
}

/// Decode the `LZ4F` wire format (shared with [`crate::gzipish`]'s second
/// stage). Byte-for-byte identical to
/// [`crate::reference::lz4ish_decompress_reference`], including the decoded
/// length reported in error values.
pub(crate) fn decompress_into(data: &[u8]) -> Result<Vec<u8>, CompressError> {
    if data.len() < 12 || &data[0..4] != MAGIC {
        return Err(CompressError::BadHeader);
    }
    let original_len = read_u64_le(data, 4) as usize;
    // The logical output is buf[..out_len]; the buffer keeps >= 8 bytes of
    // slack past out_len so match copies can step a whole word at a time.
    let mut buf = vec![0u8; original_len.saturating_add(8).min(1 << 20)];
    let mut out_len = 0usize;
    let mut pos = 12usize;
    while out_len < original_len {
        let token = *data.get(pos).ok_or(CompressError::Truncated)?;
        pos += 1;
        let mut lit_len = (token >> 4) as usize;
        if lit_len == 15 {
            lit_len += read_varlen(data, &mut pos)?;
        }
        if pos + lit_len > data.len() {
            return Err(CompressError::Truncated);
        }
        ensure_padded(&mut buf, out_len + lit_len);
        buf[out_len..out_len + lit_len].copy_from_slice(&data[pos..pos + lit_len]);
        out_len += lit_len;
        pos += lit_len;
        if out_len >= original_len {
            break;
        }
        // Match part.
        if pos + 2 > data.len() {
            return Err(CompressError::Truncated);
        }
        let offset = u16::from_le_bytes([data[pos], data[pos + 1]]) as usize;
        pos += 2;
        let mut match_len = (token & 0x0F) as usize;
        if match_len == 15 {
            match_len += read_varlen(data, &mut pos)?;
        }
        match_len += MIN_MATCH;
        if offset == 0 || offset > out_len {
            return Err(CompressError::InvalidBackreference {
                offset,
                decoded: out_len,
            });
        }
        ensure_padded(&mut buf, out_len + match_len);
        let start = out_len - offset;
        if offset >= 8 {
            // Source and destination words never overlap: copy whole words,
            // overshooting into the slack region by at most 7 bytes.
            let mut k = 0usize;
            while k < match_len {
                let w = read_u64_le(&buf, start + k);
                buf[out_len + k..out_len + k + 8].copy_from_slice(&w.to_le_bytes());
                k += 8;
            }
        } else {
            // Overlapping copy (run-like): must proceed byte by byte to
            // reproduce the self-referential pattern.
            for k in 0..match_len {
                buf[out_len + k] = buf[start + k];
            }
        }
        out_len += match_len;
    }
    if out_len != original_len {
        return Err(CompressError::LengthMismatch {
            expected: original_len,
            found: out_len,
        });
    }
    buf.truncate(original_len);
    Ok(buf)
}

impl Codec for Lz4ishCodec {
    fn name(&self) -> &'static str {
        "lz4"
    }

    fn compress(&self, data: &[u8]) -> Vec<u8> {
        compress_with(&mut Tokenizer::new(), data, &self.params)
    }

    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, CompressError> {
        decompress_into(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{lz4ish_compress_reference, lz4ish_decompress_reference};

    #[test]
    fn round_trips_repetitive_data_and_compresses() {
        let data = b"1,OPEN,2024-01-01,19.99,carefully packed\n".repeat(200);
        let codec = Lz4ishCodec::default();
        let compressed = codec.compress(&data);
        assert!(compressed.len() < data.len());
        assert_eq!(codec.decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn round_trips_empty_and_small_inputs() {
        let codec = Lz4ishCodec::default();
        for data in [&b""[..], &b"a"[..], &b"abcd"[..], &b"abcdefgh"[..]] {
            let compressed = codec.compress(data);
            assert_eq!(
                codec.decompress(&compressed).unwrap(),
                data,
                "data {data:?}"
            );
        }
    }

    #[test]
    fn long_literal_runs_use_varlen_encoding() {
        // 1000 distinct-ish bytes -> literal run > 15 exercises the escape.
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 7 % 251) as u8).collect();
        let codec = Lz4ishCodec::default();
        assert_eq!(codec.decompress(&codec.compress(&data)).unwrap(), data);
    }

    #[test]
    fn long_matches_use_varlen_encoding() {
        let data = vec![b'z'; 5000];
        let codec = Lz4ishCodec::default();
        let compressed = codec.compress(&data);
        assert!(compressed.len() < 200);
        assert_eq!(codec.decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn rejects_bad_header_and_truncation() {
        let codec = Lz4ishCodec::default();
        assert_eq!(
            codec.decompress(b"nope").unwrap_err(),
            CompressError::BadHeader
        );
        let compressed = codec.compress(&b"hello hello hello hello".repeat(10));
        assert!(codec
            .decompress(&compressed[..compressed.len() - 4])
            .is_err());
    }

    #[test]
    fn varlen_round_trip() {
        for value in [0usize, 5, 254, 255, 256, 1000, 70000] {
            let mut buf = Vec::new();
            write_varlen(&mut buf, value);
            let mut pos = 0;
            assert_eq!(read_varlen(&buf, &mut pos).unwrap(), value);
            assert_eq!(pos, buf.len());
        }
        let mut pos = 0;
        assert!(read_varlen(&[255, 255], &mut pos).is_err());
    }

    #[test]
    fn streamed_blocks_match_reference_bytes() {
        let cases: Vec<Vec<u8>> = vec![
            b"status=SHIPPED;priority=HIGH;qty=10;".repeat(120),
            vec![b'r'; 4096],
            (0..1500u32).flat_map(|i| (i % 7).to_le_bytes()).collect(),
        ];
        for data in &cases {
            for params in [
                MatcherParams::thorough(),
                MatcherParams::fast(),
                MatcherParams::fastest(),
            ] {
                let fast = Lz4ishCodec::with_params(params).compress(data);
                let reference = lz4ish_compress_reference(data, &params);
                assert_eq!(fast, reference, "params {params:?}");
                assert_eq!(
                    decompress_into(&fast).unwrap(),
                    lz4ish_decompress_reference(&reference).unwrap()
                );
            }
        }
    }

    #[test]
    fn corrupted_stream_errors_match_reference() {
        let codec = Lz4ishCodec::default();
        let good = codec.compress(&b"abcabcabcabc abcabc 123123 ".repeat(60));
        for cut in [0, 3, 11, 12, 13, good.len() / 2, good.len() - 1] {
            assert_eq!(
                codec.decompress(&good[..cut]).err(),
                lz4ish_decompress_reference(&good[..cut]).err(),
                "cut {cut}"
            );
        }
        // Flip the declared length and a mid-stream byte: whatever the
        // outcome (error or garbage), both paths must agree exactly.
        for flip in [4usize, 8, 14, 20] {
            let mut bad = good.clone();
            bad[flip] ^= 0x5A;
            assert_eq!(
                codec.decompress(&bad).ok(),
                lz4ish_decompress_reference(&bad).ok(),
                "flip {flip}"
            );
            assert_eq!(
                codec.decompress(&bad).err(),
                lz4ish_decompress_reference(&bad).err(),
                "flip {flip}"
            );
        }
    }
}
