//! Regenerates paper Fig 1 (dataset-level access skew and recency) and
//! Fig 2 (per-dataset access trends) from the synthetic enterprise
//! workload generator.

use scope_bench::heading;
use scope_workload::{AccessPattern, EnterpriseOptions, EnterpriseWorkload};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let workload = EnterpriseWorkload::generate(EnterpriseOptions {
        n_datasets: 760,
        history_months: 12,
        future_months: 6,
        seed: 17,
        ..Default::default()
    })?;

    heading("Fig 1a — % of read accesses vs dataset rank (sorted)");
    let shares = workload.series.access_share_sorted();
    for (rank, share) in shares.iter().enumerate().take(20) {
        println!(
            "rank {:>3}: {:>6.2}% {}",
            rank + 1,
            share,
            "#".repeat((share * 2.0) as usize)
        );
    }
    let top10: f64 = shares.iter().take(shares.len() / 10).sum();
    println!("top 10% of datasets receive {top10:.1}% of all reads");

    heading("Fig 1b — % of accesses vs months since dataset creation");
    for (age, share) in workload.access_share_by_age() {
        println!(
            "age {:>2} months: {:>6.2}% {}",
            age,
            share,
            "#".repeat((share * 2.0) as usize)
        );
    }

    heading("Fig 2 — representative access trends (expected reads per month)");
    let examples = [
        (
            "decreasing",
            AccessPattern::Decreasing {
                initial: 100.0,
                decay: 0.6,
            },
        ),
        ("constant", AccessPattern::Constant { rate: 20.0 }),
        (
            "periodic",
            AccessPattern::Periodic {
                base: 5.0,
                peak: 60.0,
                period: 6,
            },
        ),
        (
            "spike",
            AccessPattern::Spike {
                month: 1,
                magnitude: 150.0,
            },
        ),
    ];
    print!("{:<12}", "month");
    for m in 0..12 {
        print!("{m:>7}");
    }
    println!();
    for (name, pattern) in examples {
        print!("{name:<12}");
        for m in 0..12 {
            print!("{:>7.1}", pattern.expected_reads(m));
        }
        println!();
    }
    print!("{:<12}", "writes(all)");
    for m in 0..12u32 {
        let writes: f64 = workload
            .catalog
            .iter()
            .map(|d| {
                d.age_at(m)
                    .map(|a| d.pattern.expected_writes(a))
                    .unwrap_or(0.0)
            })
            .sum();
        print!("{writes:>7.0}");
    }
    println!();
    Ok(())
}
