//! Regenerates paper Table X: the full policy comparison on the TPC-H
//! 100 GB-class scenario.

use scope_bench::{heading, print_policy_header, print_policy_row};
use scope_core::{run_all_policies, tpch_scenario, ScenarioOptions};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    heading("Table X — TPC-H 100 GB-class");
    let inputs = tpch_scenario(&ScenarioOptions {
        nominal_total_gb: 100.0,
        generator_scale: 0.2,
        queries_per_template: 20,
        total_files: 100,
        ..Default::default()
    })?;
    println!(
        "scenario: {} tables, {:.0} GB, {} query families, horizon {:.1} months\n",
        inputs.tables.len(),
        inputs.total_size_gb(),
        inputs.families.len(),
        inputs.horizon_months
    );
    print_policy_header();
    for outcome in run_all_policies(&inputs)? {
        print_policy_row(&outcome);
    }
    println!("\nCosts in cents over the horizon. Lower total cost is better; the SCOPe rows should dominate.");
    Ok(())
}
