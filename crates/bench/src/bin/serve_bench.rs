//! PR-8 serving-engine benchmark: steady-state incremental re-solve vs
//! the batch full-resolve baseline.
//!
//! ```text
//! serve_bench [--json] [--quick] [--out PATH]
//! ```
//!
//! * `--json`  — also write the results as JSON (default path
//!   `BENCH_8.json` in the working directory; override with `--out`).
//! * `--quick` — the 1 000-object CI smoke configuration.
//!
//! The fixture is a skewed day-granular read/write trace over a fleet of
//! objects sharded into billing accounts. The replay loop is the serving
//! engine's intended steady state: ingest an epoch's event batch, advance
//! the clock (heat decays and re-buckets), then re-solve.
//!
//! **Correctness before speed:** a first pass over the whole replay
//! asserts, in this process, that every epoch's incremental outcome —
//! patched rows, per-row greedy decisions, account-ordered merge — is
//! bit-for-bit identical to `scope_serve::reference::full_resolve` (a
//! cold table build + batch greedy per account) on the same state, and
//! thread-count independent. Only then does a second pass time both
//! paths on the post-cold-start epochs.
//!
//! The headline number is steady-state re-tiering decisions per second
//! (objects decided per wall-clock second of re-solve): the incremental
//! path must clear 5x the full-resolve baseline on the quick config, and
//! the binary asserts that floor before writing any numbers.

use scope_cloudsim::{BillingEvent, EventColumns, TierCatalog, TierId};
use scope_serve::{reference, CompressionOption, ServeConfig, ServeEngine, ServeObject};
use std::error::Error;
use std::time::Instant;

struct Config {
    quick: bool,
    json: bool,
    out: String,
    objects: usize,
    accounts: usize,
    epochs: u32,
    epoch_days: u32,
    events_per_day: usize,
    reps: usize,
}

impl Config {
    fn from_args() -> Result<Config, String> {
        let mut quick = false;
        let mut json = false;
        let mut out = "BENCH_8.json".to_string();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => quick = true,
                "--json" => json = true,
                "--out" => match args.next() {
                    Some(path) => out = path,
                    None => return Err("--out requires a path".to_string()),
                },
                other => {
                    return Err(format!(
                        "unknown argument {other} (expected --json / --quick / --out)"
                    ))
                }
            }
        }
        Ok(Config {
            quick,
            json,
            out,
            objects: if quick { 1000 } else { 4000 },
            accounts: 8,
            epochs: if quick { 6 } else { 10 },
            epoch_days: 15,
            events_per_day: if quick { 2400 } else { 6000 },
            reps: if quick { 1 } else { 3 },
        })
    }
}

/// Min-of-reps wall clock (seconds) of `f`, returning the last result.
fn time_min<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let t = Instant::now();
    let mut out = f();
    let mut best = t.elapsed().as_secs_f64();
    for _ in 1..reps {
        let t = Instant::now();
        out = f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best, out)
}

fn schemes() -> Vec<CompressionOption> {
    vec![
        CompressionOption::none(),
        CompressionOption::new("gzip", 3.5, 1.5),
        CompressionOption::new("zstd", 2.4, 0.35),
        CompressionOption::new("lz4", 2.1, 0.15),
        CompressionOption::new("snappy", 1.8, 0.08),
        CompressionOption::new("brotli", 3.9, 2.6),
    ]
}

/// A fleet of `objects` distinct-size objects round-robined into
/// `accounts` billing accounts; every third object carries a latency
/// threshold that rules the archive tier out.
fn build_engine(cfg: &Config, threads: usize) -> Result<ServeEngine, Box<dyn Error>> {
    let horizon_days = cfg.epochs * cfg.epoch_days;
    let config = ServeConfig {
        horizon_days,
        horizon_months: f64::from(horizon_days) / 30.0,
        threads,
        // Serving-tuned heat dynamics: a short memory window (heat
        // equilibrates within the cold epoch), coarse buckets, and a wide
        // hysteresis band keep steady-state heat inside its bucket unless
        // the access pattern genuinely shifts, which is what makes the
        // delta path a delta (the differential pass holds for ANY
        // setting; these only trade estimate freshness for patch volume).
        decay_per_day: 0.82,
        bucket_base: 3.0,
        bucket_hysteresis: 4.0,
        ..ServeConfig::default()
    };
    let mut engine = ServeEngine::new(TierCatalog::azure_hot_cool_archive(), schemes(), config)?;
    for i in 0..cfg.objects {
        let mut spec = ServeObject::new(
            format!("obj-{i:06}"),
            format!("account-{}", i % cfg.accounts),
            0.5 + (i as f64) * 0.173,
            TierId(i % 2),
        )
        .with_residency_days((i as u32 * 13) % 200);
        if i % 3 == 0 {
            spec = spec.with_latency_threshold(2.0);
        }
        engine.register(spec)?;
    }
    Ok(engine)
}

/// Skewed deterministic trace: squared-uniform draws concentrate reads on
/// a hot set that drifts by one object id per day (so each epoch a handful
/// of objects genuinely change heat class while the rest stay put), ~10%
/// writes, volumes in (0.02, 1.3) GB.
fn build_trace(engine: &ServeEngine, cfg: &Config) -> EventColumns {
    let mut seed = 0x8eed_5e12_u64;
    let mut draw = move || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (seed >> 33) as u32
    };
    let n = engine.len() as u32;
    let days = cfg.epochs * cfg.epoch_days;
    let mut events = Vec::with_capacity(days as usize * cfg.events_per_day);
    for day in 0..days {
        for _ in 0..cfg.events_per_day {
            let r = draw() % n;
            let id = ((u64::from(r) * u64::from(r) / u64::from(n)) as u32 + day) % n;
            let name = engine
                .object_name(id.min(n - 1))
                .unwrap_or_default()
                .to_string();
            let volume = 0.02 + f64::from(draw() % 128) / 100.0;
            if draw() % 10 == 0 {
                events.push(BillingEvent::write(name, day, volume));
            } else {
                events.push(BillingEvent::read(name, day, volume));
            }
        }
    }
    engine.columns_from_events(&events)
}

/// Differential pass: every epoch of the replay must match the batch
/// reference bit-for-bit, and a 1-thread engine must match the default
/// fan-out. Runs before any timing; panics (no JSON) on divergence.
fn verify(cfg: &Config) -> Result<(), Box<dyn Error>> {
    let mut engine = build_engine(cfg, 0)?;
    let mut sequential = build_engine(cfg, 1)?;
    let columns = build_trace(&engine, cfg);
    for epoch in 0..cfg.epochs {
        let (lo, hi) = (epoch * cfg.epoch_days, (epoch + 1) * cfg.epoch_days);
        let batch = columns.filter_day_range(lo, hi);
        engine.ingest(&batch);
        sequential.ingest(&batch);
        engine.advance(hi);
        sequential.advance(hi);

        let cold = reference::full_resolve(&engine)?;
        let outcome = engine.reoptimize()?;
        let outcome_seq = sequential.reoptimize()?;

        assert_eq!(outcome.accounts.len(), cold.len());
        for (inc, full) in outcome.accounts.iter().zip(&cold) {
            assert_eq!(inc.account, full.account, "epoch {epoch}");
            assert_eq!(
                inc.assignment.choices, full.assignment.choices,
                "epoch {epoch}: incremental choices diverged from full resolve for {}",
                inc.account
            );
            assert_eq!(
                inc.assignment.objective.to_bits(),
                full.assignment.objective.to_bits(),
                "epoch {epoch}: objective bits diverged for {}",
                inc.account
            );
        }
        assert_eq!(
            outcome.total_objective.to_bits(),
            reference::total_objective(&cold).to_bits(),
            "epoch {epoch}: totals diverged"
        );
        assert_eq!(
            outcome.total_objective.to_bits(),
            outcome_seq.total_objective.to_bits(),
            "epoch {epoch}: thread fan-out changed the outcome"
        );
        assert_eq!(outcome.rows_patched, outcome_seq.rows_patched);
    }
    Ok(())
}

struct ServeNumbers {
    steady_epochs: u32,
    full_resolve_s: f64,
    incremental_s: f64,
    rows_patched: usize,
    retier_decisions: usize,
    full_decisions_per_s: f64,
    incremental_decisions_per_s: f64,
    speedup: f64,
}

/// Timing pass over a fresh engine: epoch 0 is the cold build and epoch 1
/// re-prices the rows the cold solve re-tiered (transition costs are
/// priced from the placement the cold solve installed), so both are
/// untimed warm-up; the remaining epochs are the steady state. Both timed
/// paths run sequentially (threads = 1) so the comparison measures work
/// skipped, not thread fan-out — thread-count independence is asserted
/// separately in the differential pass. The immutable full resolve is
/// min-of-reps; the incremental re-solve mutates state so each epoch is
/// timed once and the epochs are summed.
fn bench_serve(cfg: &Config) -> Result<ServeNumbers, Box<dyn Error>> {
    if cfg.epochs <= 2 {
        return Err("need at least three epochs: two warm-up plus steady state".into());
    }
    let mut engine = build_engine(cfg, 1)?;
    let columns = build_trace(&engine, cfg);

    // Warm-up: cold table build, then the re-pricing epoch it induces.
    for epoch in 0..2 {
        let (lo, hi) = (epoch * cfg.epoch_days, (epoch + 1) * cfg.epoch_days);
        engine.ingest(&columns.filter_day_range(lo, hi));
        engine.advance(hi);
        engine.reoptimize()?;
    }

    let mut full_resolve_s = 0.0;
    let mut incremental_s = 0.0;
    let mut rows_patched = 0usize;
    let mut retier_decisions = 0usize;
    for epoch in 2..cfg.epochs {
        let (lo, hi) = (epoch * cfg.epoch_days, (epoch + 1) * cfg.epoch_days);
        engine.ingest(&columns.filter_day_range(lo, hi));
        engine.advance(hi);

        let (t_full, cold) = time_min(cfg.reps, || reference::full_resolve(&engine));
        let cold = cold?;
        full_resolve_s += t_full;

        let t = Instant::now();
        let outcome = engine.reoptimize()?;
        incremental_s += t.elapsed().as_secs_f64();

        // Re-check equality on the timed engine too — the speedup is only
        // meaningful if the fast path produced the same answer.
        assert_eq!(
            outcome.total_objective.to_bits(),
            reference::total_objective(&cold).to_bits(),
            "epoch {epoch}: timed run diverged from reference"
        );
        rows_patched += outcome.rows_patched;
        retier_decisions += outcome.retier_decisions;
    }

    let steady_epochs = cfg.epochs - 2;
    let decisions = f64::from(steady_epochs) * cfg.objects as f64;
    let numbers = ServeNumbers {
        steady_epochs,
        full_resolve_s,
        incremental_s,
        rows_patched,
        retier_decisions,
        full_decisions_per_s: decisions / full_resolve_s,
        incremental_decisions_per_s: decisions / incremental_s,
        speedup: full_resolve_s / incremental_s,
    };
    Ok(numbers)
}

fn main() -> Result<(), Box<dyn Error>> {
    let cfg = Config::from_args()?;
    println!(
        "serve_bench: {} objects, {} accounts, {} epochs x {} days, {} events/day{}",
        cfg.objects,
        cfg.accounts,
        cfg.epochs,
        cfg.epoch_days,
        cfg.events_per_day,
        if cfg.quick { " [quick]" } else { "" }
    );

    verify(&cfg)?;
    println!("differential pass: incremental == full resolve bit-for-bit on every epoch");

    let serve = bench_serve(&cfg)?;
    println!(
        "full resolve   {:>9.4} s over {} steady epochs ({:>10.0} decisions/s)",
        serve.full_resolve_s, serve.steady_epochs, serve.full_decisions_per_s
    );
    println!(
        "incremental    {:>9.4} s over {} steady epochs ({:>10.0} decisions/s, {} rows patched, {} re-tierings)",
        serve.incremental_s,
        serve.steady_epochs,
        serve.incremental_decisions_per_s,
        serve.rows_patched,
        serve.retier_decisions
    );
    println!("speedup        {:>9.2}x (floor 5x)", serve.speedup);
    assert!(
        serve.speedup >= 5.0,
        "steady-state incremental re-solve is only {:.2}x the full-resolve baseline (need >= 5x)",
        serve.speedup
    );

    if cfg.json {
        let json = format!(
            "{{\n  \"issue\": 8,\n  \"quick\": {},\n  \"config\": {{\n    \"objects\": {},\n    \"accounts\": {},\n    \"epochs\": {},\n    \"epoch_days\": {},\n    \"events_per_day\": {},\n    \"reps\": {}\n  }},\n  \"serve\": {{\n    \"steady_epochs\": {},\n    \"full_resolve_s\": {:.6},\n    \"incremental_s\": {:.6},\n    \"full_decisions_per_s\": {:.0},\n    \"incremental_decisions_per_s\": {:.0},\n    \"speedup\": {:.2},\n    \"rows_patched\": {},\n    \"retier_decisions\": {},\n    \"note\": \"steady-state re-tiering decisions/s over post-cold-start epochs; every epoch asserted bit-identical to reference::full_resolve (and thread-count independent) in this process before timing; incremental path re-evaluates only heat-rebucketed rows via CostTable::patch_rows and re-decides them with the same first-minimum rule as the batch greedy\"\n  }}\n}}\n",
            cfg.quick,
            cfg.objects,
            cfg.accounts,
            cfg.epochs,
            cfg.epoch_days,
            cfg.events_per_day,
            cfg.reps,
            serve.steady_epochs,
            serve.full_resolve_s,
            serve.incremental_s,
            serve.full_decisions_per_s,
            serve.incremental_decisions_per_s,
            serve.speedup,
            serve.rows_patched,
            serve.retier_decisions,
        );
        std::fs::write(&cfg.out, &json)?;
        println!("wrote {}", cfg.out);
    }
    Ok(())
}
