//! Regenerates paper Tables VI, VII and VIII: compression-ratio and
//! decompression-speed prediction quality for every model family, several
//! compression schemes / layouts, and the uniform vs skewed data variants.

use scope_bench::heading;
use scope_compredict::{
    predictor::build_examples, query_samples, CompressionPredictor, FeatureExtractor, FeatureSet,
    ModelKind, PredictionTask, TrainingExample,
};
use scope_compress::CompressionScheme;
use scope_table::{DataLayout, TpchGenerator, TpchOptions, TpchTable};
use scope_workload::{QueryWorkload, QueryWorkloadOptions};
use std::error::Error;

fn samples(
    scale: f64,
    skew: Option<f64>,
    seed: u64,
) -> Result<Vec<scope_table::Table>, Box<dyn Error>> {
    let gen = TpchGenerator::new(TpchOptions {
        scale_factor: scale,
        skew,
        seed,
    })?;
    let lineitem = gen.generate(TpchTable::Lineitem);
    let orders = gen.generate(TpchTable::Orders);
    let li_files = lineitem.split_into_files(80)?;
    let or_files = orders.split_into_files(40)?;
    let workload = QueryWorkload::generate_tpch(
        &[
            ("lineitem".to_string(), li_files.len()),
            ("orders".to_string(), or_files.len()),
        ],
        &QueryWorkloadOptions {
            queries_per_template: 6,
            seed,
            ..Default::default()
        },
    )?;
    let mut tables = query_samples(&lineitem, &li_files, &workload.families)?;
    tables.extend(query_samples(&orders, &or_files, &workload.families)?);
    Ok(tables)
}

fn sweep(
    label: &str,
    tables: &[scope_table::Table],
    scheme: CompressionScheme,
    layout: DataLayout,
    task: PredictionTask,
) {
    let extractor = FeatureExtractor::new(FeatureSet::WeightedEntropy);
    let examples: Vec<TrainingExample> = build_examples(tables, scheme, layout, &extractor);
    let split = examples.len() * 3 / 4;
    let (train, test) = examples.split_at(split.max(4));
    println!(
        "\n  [{label}] scheme = {}, layout = {}",
        scheme.name(),
        layout.name()
    );
    println!("  {:<16} {:>8} {:>9} {:>8}", "model", "MAE", "MAPE %", "R2");
    for kind in ModelKind::all() {
        match CompressionPredictor::train(train, task, kind, extractor, 3) {
            Ok(model) => {
                let eval = model.evaluate(test);
                println!(
                    "  {:<16} {:>8.3} {:>9.2} {:>8.3}",
                    kind.name(),
                    eval.mae,
                    eval.mape,
                    eval.r2
                );
            }
            Err(e) => println!("  {:<16} failed: {e}", kind.name()),
        }
    }
}

fn main() -> Result<(), Box<dyn Error>> {
    heading("Table VI — compression-ratio prediction, TPC-H 1GB-class (uniform)");
    let small = samples(0.25, None, 7)?;
    for (scheme, layout) in [
        (CompressionScheme::Gzip, DataLayout::Csv),
        (CompressionScheme::Snappy, DataLayout::Csv),
        (CompressionScheme::Gzip, DataLayout::Columnar),
        (CompressionScheme::Snappy, DataLayout::Columnar),
        (CompressionScheme::Lz4, DataLayout::Columnar),
    ] {
        sweep(
            "TPC-H 1GB",
            &small,
            scheme,
            layout,
            PredictionTask::CompressionRatio,
        );
    }

    heading("Table VII — compression-ratio prediction at larger scale and with Zipf skew");
    let large = samples(0.6, None, 11)?;
    sweep(
        "TPC-H 100GB-class",
        &large,
        CompressionScheme::Gzip,
        DataLayout::Csv,
        PredictionTask::CompressionRatio,
    );
    sweep(
        "TPC-H 100GB-class",
        &large,
        CompressionScheme::Gzip,
        DataLayout::Columnar,
        PredictionTask::CompressionRatio,
    );
    let skewed = samples(0.25, Some(3.0), 13)?;
    sweep(
        "TPC-H Skew",
        &skewed,
        CompressionScheme::Gzip,
        DataLayout::Csv,
        PredictionTask::CompressionRatio,
    );
    sweep(
        "TPC-H Skew",
        &skewed,
        CompressionScheme::Gzip,
        DataLayout::Columnar,
        PredictionTask::CompressionRatio,
    );

    heading("Table VIII — decompression speed (sec/GB) prediction");
    sweep(
        "TPC-H 100GB-class",
        &large,
        CompressionScheme::Gzip,
        DataLayout::Csv,
        PredictionTask::DecompressionSpeed,
    );
    sweep(
        "TPC-H 100GB-class",
        &large,
        CompressionScheme::Gzip,
        DataLayout::Columnar,
        PredictionTask::DecompressionSpeed,
    );
    sweep(
        "TPC-H Skew",
        &skewed,
        CompressionScheme::Gzip,
        DataLayout::Csv,
        PredictionTask::DecompressionSpeed,
    );
    sweep(
        "TPC-H Skew",
        &skewed,
        CompressionScheme::Gzip,
        DataLayout::Columnar,
        PredictionTask::DecompressionSpeed,
    );
    Ok(())
}
