//! PR-4 benchmark suite: the cost-table engine vs the pre-table
//! model-driven solver paths, plus the interned billing accounting vs the
//! clone-per-event accounting it replaced.
//!
//! ```text
//! solver_bench [--json] [--quick] [--out PATH]
//! ```
//!
//! * `--json`  — also write the results as JSON (default path
//!   `BENCH_4.json` in the working directory; override with `--out`).
//! * `--quick` — small instances / single rep, for the CI smoke run.
//!
//! The solver section solves the **same instances** with both families —
//! `scope_optassign::reference` (every cost evaluation clones catalog +
//! topology into a fresh model, exactly the pre-PR-4 code path) and the
//! production table-driven solvers — asserts the results are identical,
//! and reports min-of-reps wall-clock per path. The headline numbers are
//! branch-and-bound and Hungarian matching at 1 000 partitions on the
//! merged 3-provider (12-tier) catalog.
//!
//! The billing section replays a 1 000-object day-granular fixture and
//! additionally micro-benchmarks the two per-event accounting schemes:
//! *before* — `ev.object.clone()` into a `HashMap<String, f64>` entry per
//! event (the allocation the engine used to pay); *after* — one interned-id
//! lookup and a `Vec` index (what `run_days` does now).

use scope_bench::{billing_fixture, billing_object_names, BILLING_HORIZON_DAYS as HORIZON_DAYS};
use scope_cloudsim::ProviderCatalog;
use scope_optassign::reference::{
    solve_branch_and_bound_reference, solve_equal_size_matching_reference, solve_greedy_reference,
};
use scope_optassign::{
    solve_branch_and_bound, solve_equal_size_matching, solve_greedy, CompressionOption,
    OptAssignProblem, PartitionSpec,
};
use std::collections::HashMap;
use std::error::Error;
use std::time::Instant;

struct Config {
    quick: bool,
    json: bool,
    out: String,
    partitions: usize,
    reps: usize,
    billing_objects: usize,
    billing_events: usize,
}

impl Config {
    fn from_args() -> Result<Config, String> {
        let mut quick = false;
        let mut json = false;
        let mut out = "BENCH_4.json".to_string();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => quick = true,
                "--json" => json = true,
                "--out" => match args.next() {
                    Some(path) => out = path,
                    None => return Err("--out requires a path".to_string()),
                },
                other => {
                    return Err(format!(
                        "unknown argument {other} (expected --json / --quick / --out)"
                    ))
                }
            }
        }
        Ok(Config {
            quick,
            json,
            out,
            partitions: if quick { 200 } else { 1000 },
            reps: if quick { 1 } else { 3 },
            billing_objects: 1000,
            billing_events: if quick { 20_000 } else { 200_000 },
        })
    }
}

/// Min-of-reps wall clock (seconds) of `f`, returning the last result.
/// Runs at least once even for `reps == 0`.
fn time_min<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let t = Instant::now();
    let mut out = f();
    let mut best = t.elapsed().as_secs_f64();
    for _ in 1..reps {
        let t = Instant::now();
        out = f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best, out)
}

/// [`time_min`] for fallible work: the first error aborts the bench.
fn time_min_try<R, E>(reps: usize, mut f: impl FnMut() -> Result<R, E>) -> Result<(f64, R), E> {
    let t = Instant::now();
    let mut out = f()?;
    let mut best = t.elapsed().as_secs_f64();
    for _ in 1..reps {
        let t = Instant::now();
        out = f()?;
        best = best.min(t.elapsed().as_secs_f64());
    }
    Ok((best, out))
}

/// The greedy / branch-and-bound instance: `n` partitions with mixed sizes,
/// access rates, compression options, SLAs and residencies over the merged
/// 3-provider catalog (unbounded capacities — the paper's canonical case,
/// where solve time is pure cost evaluation).
fn merged_problem(n: usize) -> Result<OptAssignProblem, Box<dyn Error>> {
    let providers = ProviderCatalog::azure_s3_gcs();
    let azure_hot = providers.merged_tier_id("azure", "Hot")?;
    let parts: Vec<PartitionSpec> = (0..n)
        .map(|i| {
            let mut p =
                PartitionSpec::new(i, format!("p{i}"), 1.0 + (i % 97) as f64, (i % 31) as f64)
                    .with_compression_option(CompressionOption::new("gzip", 3.5, 4.0))
                    .with_compression_option(CompressionOption::new("snappy", 1.8, 0.4))
                    .with_current_tier(azure_hot)
                    .with_residency_days((i % 120) as u32);
            if i % 3 == 0 {
                p = p.with_latency_threshold(60.0); // excludes the slow archives
            }
            p
        })
        .collect();
    Ok(OptAssignProblem::multi_provider(&providers, parts, 6.0))
}

/// The matching instance: `n` equal-size no-compression partitions with
/// access rates spread continuously, every tier capacity-bounded to
/// `n / 2` copies so the reservations are real (no tier can hold more than
/// half the partitions) and the copy-expanded bipartite graph the
/// pre-table path builds is `n × 6n`. The model-driven reference pays both
/// `n·m` per-cell model evaluations *and* the dense Hungarian's
/// zero-cost-cycle prefix walks; the table path pays `n·L` lookups and the
/// collapsed-copy emulation.
fn matching_problem(n: usize) -> Result<OptAssignProblem, Box<dyn Error>> {
    let size = 10.0;
    let providers = ProviderCatalog::azure_s3_gcs();
    let parts: Vec<PartitionSpec> = (0..n)
        .map(|i| PartitionSpec::new(i, format!("p{i}"), size, (i as f64 * 7.31) % 3700.0))
        .collect();
    let mut problem = OptAssignProblem::multi_provider(&providers, parts, 6.0);
    let copies_per_tier = (n / 2).max(1);
    let names: Vec<String> = problem
        .catalog
        .iter()
        .map(|(_, t)| t.name.clone())
        .collect();
    for name in names {
        problem
            .catalog
            .set_capacity(&name, size * copies_per_tier as f64)?;
    }
    Ok(problem)
}

struct Comparison {
    model_s: f64,
    table_s: f64,
}

impl Comparison {
    fn speedup(&self) -> f64 {
        self.model_s / self.table_s
    }
}

fn bench_greedy(cfg: &Config) -> Result<Comparison, Box<dyn Error>> {
    let problem = merged_problem(cfg.partitions)?;
    let (model_s, reference) = time_min_try(cfg.reps, || solve_greedy_reference(&problem))?;
    let (table_s, table) = time_min_try(cfg.reps, || solve_greedy(&problem))?;
    assert_eq!(table, reference, "greedy paths diverged");
    Ok(Comparison { model_s, table_s })
}

fn bench_branch_and_bound(cfg: &Config) -> Result<Comparison, Box<dyn Error>> {
    let problem = merged_problem(cfg.partitions)?;
    let budget = 1_000_000;
    let (model_s, reference) = time_min_try(cfg.reps, || {
        solve_branch_and_bound_reference(&problem, budget)
    })?;
    let (table_s, table) = time_min_try(cfg.reps, || solve_branch_and_bound(&problem, budget))?;
    assert_eq!(table, reference, "branch-and-bound paths diverged");
    Ok(Comparison { model_s, table_s })
}

fn bench_matching(cfg: &Config) -> Result<Comparison, Box<dyn Error>> {
    let problem = matching_problem(cfg.partitions)?;
    let (model_s, reference) =
        time_min_try(cfg.reps, || solve_equal_size_matching_reference(&problem))?;
    let (table_s, table) = time_min_try(cfg.reps, || solve_equal_size_matching(&problem))?;
    assert_eq!(table, reference, "matching paths diverged");
    Ok(Comparison { model_s, table_s })
}

struct BillingNumbers {
    run_days_s: f64,
    events_per_s: f64,
    accounting_before_s: f64,
    accounting_after_s: f64,
}

fn bench_billing(cfg: &Config) -> Result<BillingNumbers, Box<dyn Error>> {
    let (sim, events) = billing_fixture(cfg.billing_objects, cfg.billing_events);
    let (run_days_s, report) = time_min_try(cfg.reps, || sim.run_days(HORIZON_DAYS, &events))?;
    assert!(report.total() > 0.0);

    // Before/after microbench of the per-event accounting alone. "Before"
    // is the pre-PR-4 scheme run_days used: clone the object name into a
    // String-keyed map entry for every event. "After" is the interned
    // scheme: resolve the name to a dense id once per event (no allocation)
    // and bump a flat Vec slot.
    let names = billing_object_names(cfg.billing_objects);
    let reps = cfg.reps.max(3); // cheap enough to always rep
    let (accounting_before_s, before_map) = time_min(reps, || {
        let mut per_object: HashMap<String, f64> = HashMap::with_capacity(names.len());
        for ev in &events {
            *per_object.entry(ev.object.clone()).or_insert(0.0) += ev.volume_gb;
        }
        per_object
    });
    let name_ids: HashMap<&str, u32> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i as u32))
        .collect();
    let (accounting_after_s, totals) = time_min(reps, || {
        let mut totals = vec![0.0f64; names.len()];
        for ev in &events {
            if let Some(&id) = name_ids.get(ev.object.as_str()) {
                totals[id as usize] += ev.volume_gb;
            }
        }
        totals
    });
    // Same aggregate either way.
    let before_sum: f64 = before_map.values().sum();
    let after_sum: f64 = totals.iter().sum();
    assert!((before_sum - after_sum).abs() < 1e-6 * before_sum.abs().max(1.0));

    Ok(BillingNumbers {
        run_days_s,
        events_per_s: events.len() as f64 / run_days_s,
        accounting_before_s,
        accounting_after_s,
    })
}

fn main() -> Result<(), Box<dyn Error>> {
    let cfg = Config::from_args()?;
    println!(
        "solver_bench: {} partitions, merged 3-provider catalog (12 tiers), min of {} rep(s){}",
        cfg.partitions,
        cfg.reps,
        if cfg.quick { " [quick]" } else { "" }
    );

    let greedy = bench_greedy(&cfg)?;
    println!(
        "greedy            model-driven {:>9.4} s   table-driven {:>9.4} s   speedup {:>6.1}x",
        greedy.model_s,
        greedy.table_s,
        greedy.speedup()
    );
    let bnb = bench_branch_and_bound(&cfg)?;
    println!(
        "branch-and-bound  model-driven {:>9.4} s   table-driven {:>9.4} s   speedup {:>6.1}x",
        bnb.model_s,
        bnb.table_s,
        bnb.speedup()
    );
    let matching = bench_matching(&cfg)?;
    println!(
        "matching          model-driven {:>9.4} s   table-driven {:>9.4} s   speedup {:>6.1}x",
        matching.model_s,
        matching.table_s,
        matching.speedup()
    );

    let billing = bench_billing(&cfg)?;
    println!(
        "billing run_days  {:>9.4} s for {} events ({:.2} M events/s, {} objects)",
        billing.run_days_s,
        cfg.billing_events,
        billing.events_per_s / 1e6,
        cfg.billing_objects
    );
    println!(
        "event accounting  before (clone per event) {:>9.4} s   after (interned ids) {:>9.4} s   speedup {:>5.1}x",
        billing.accounting_before_s,
        billing.accounting_after_s,
        billing.accounting_before_s / billing.accounting_after_s
    );

    if cfg.json {
        let json = format!(
            "{{\n  \"issue\": 4,\n  \"quick\": {},\n  \"config\": {{\n    \"partitions\": {},\n    \"catalog\": \"azure+s3+gcs merged (12 tiers)\",\n    \"reps\": {},\n    \"billing_objects\": {},\n    \"billing_events\": {}\n  }},\n  \"solver\": {{\n    \"greedy\": {{ \"model_driven_s\": {:.6}, \"table_driven_s\": {:.6}, \"speedup\": {:.2} }},\n    \"branch_and_bound\": {{ \"model_driven_s\": {:.6}, \"table_driven_s\": {:.6}, \"speedup\": {:.2} }},\n    \"matching\": {{ \"model_driven_s\": {:.6}, \"table_driven_s\": {:.6}, \"speedup\": {:.2} }}\n  }},\n  \"billing\": {{\n    \"run_days_s\": {:.6},\n    \"events_per_s\": {:.0},\n    \"accounting_before_clone_per_event_s\": {:.6},\n    \"accounting_after_interned_s\": {:.6},\n    \"accounting_speedup\": {:.2},\n    \"note\": \"before = pre-PR-4 run_days accounting (ev.object.clone() into a HashMap<String,f64> entry per event); after = interned dense-id Vec indexing, the scheme run_days now uses — the engine's event loop is clone- and allocation-free per event\"\n  }}\n}}\n",
            cfg.quick,
            cfg.partitions,
            cfg.reps,
            cfg.billing_objects,
            cfg.billing_events,
            greedy.model_s,
            greedy.table_s,
            greedy.speedup(),
            bnb.model_s,
            bnb.table_s,
            bnb.speedup(),
            matching.model_s,
            matching.table_s,
            matching.speedup(),
            billing.run_days_s,
            billing.events_per_s,
            billing.accounting_before_s,
            billing.accounting_after_s,
            billing.accounting_before_s / billing.accounting_after_s,
        );
        std::fs::write(&cfg.out, &json)?;
        println!("wrote {}", cfg.out);
    }
    Ok(())
}
