//! Regenerates paper Table II (% cost benefit per customer account at 2-
//! and 6-month horizons) and Fig 3 (per-dataset benefit vs size and vs read
//! accesses) on synthetic enterprise accounts.

use scope_bench::heading;
use scope_core::{customer_benefit_table, enterprise::benefit_scatter};
use scope_workload::EnterpriseOptions;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let base = EnterpriseOptions {
        n_datasets: 300,
        history_months: 12,
        future_months: 6,
        ..Default::default()
    };
    let accounts = vec![
        (
            "Customer A".to_string(),
            EnterpriseOptions {
                n_datasets: 400,
                max_size_gb: 80_000.0,
                seed: 1,
                ..base.clone()
            },
        ),
        (
            "Customer B".to_string(),
            EnterpriseOptions {
                n_datasets: 300,
                max_size_gb: 70_000.0,
                seed: 2,
                ..base.clone()
            },
        ),
        (
            "Customer C".to_string(),
            EnterpriseOptions {
                n_datasets: 120,
                max_size_gb: 20_000.0,
                seed: 3,
                ..base.clone()
            },
        ),
        (
            "Customer D".to_string(),
            EnterpriseOptions {
                n_datasets: 150,
                max_size_gb: 25_000.0,
                seed: 4,
                ..base.clone()
            },
        ),
    ];

    heading("Table II — % cost benefit vs all-hot platform baseline");
    println!(
        "{:<12} {:>16} {:>12} {:>12}",
        "Customer", "Total size (PB)", "2 months", "6 months"
    );
    for row in customer_benefit_table(&accounts)? {
        println!(
            "{:<12} {:>16.4} {:>12.2} {:>12.2}",
            row.customer, row.total_size_pb, row.benefit_2_months, row.benefit_6_months
        );
    }

    heading("Fig 3 — per-dataset % benefit for the 6-month projection (one account)");
    let points = benefit_scatter(&EnterpriseOptions { seed: 1, ..base }, 6)?;
    // Bucket by size and by reads to summarise the scatter in text form.
    println!(
        "{:<28} {:>10} {:>14}",
        "size bucket (GB)", "#datasets", "mean benefit %"
    );
    for (lo, hi) in [(0.0, 10.0), (10.0, 100.0), (100.0, 1000.0), (1000.0, 1e9)] {
        let in_bucket: Vec<&(f64, f64, f64)> =
            points.iter().filter(|p| p.0 >= lo && p.0 < hi).collect();
        if in_bucket.is_empty() {
            continue;
        }
        let mean = in_bucket.iter().map(|p| p.2).sum::<f64>() / in_bucket.len() as f64;
        println!(
            "{:<28} {:>10} {:>14.2}",
            format!("[{lo:.0}, {hi:.0})"),
            in_bucket.len(),
            mean
        );
    }
    println!(
        "{:<28} {:>10} {:>14}",
        "reads bucket (6 months)", "#datasets", "mean benefit %"
    );
    for (lo, hi) in [(0.0, 1.0), (1.0, 10.0), (10.0, 100.0), (100.0, 1e9)] {
        let in_bucket: Vec<&(f64, f64, f64)> =
            points.iter().filter(|p| p.1 >= lo && p.1 < hi).collect();
        if in_bucket.is_empty() {
            continue;
        }
        let mean = in_bucket.iter().map(|p| p.2).sum::<f64>() / in_bucket.len() as f64;
        println!(
            "{:<28} {:>10} {:>14.2}",
            format!("[{lo:.0}, {hi:.0})"),
            in_bucket.len(),
            mean
        );
    }
    Ok(())
}
