//! Beyond the paper: cross-provider placement over the merged
//! azure/s3/gcs tier space, single-provider vs egress-aware cross-provider
//! planning at several egress price points (the SkyStore-style experiment
//! the multi-provider catalog enables).

use scope_bench::heading;
use scope_core::{multicloud_egress_sweep, MultiCloudOptions};
use scope_workload::EnterpriseOptions;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let options = MultiCloudOptions {
        workload: EnterpriseOptions {
            n_datasets: 200,
            history_months: 8,
            future_months: 6,
            seed: 7,
            ..Default::default()
        },
        ..Default::default()
    };

    heading("Multi-cloud placement — cooling account, home = azure:Hot");
    println!("(egress scale 1 = discounted interconnect rates, ~5 = public internet prices)\n");
    let sweep = multicloud_egress_sweep(&options, &[0.0, 0.5, 1.0, 2.0, 5.0, 10.0])?;
    println!(
        "{:<8} {:>14} {:>14} {:>12} {:>12} {:>10} {:>12} {:>12}",
        "scale",
        "best single",
        "cross total",
        "egress paid",
        "x-moves",
        "best 1p",
        "benefit 1p%",
        "benefit x%"
    );
    for (scale, o) in &sweep {
        println!(
            "{:<8} {:>14.1} {:>14.1} {:>12.1} {:>12} {:>10} {:>12.2} {:>12.2}",
            scale,
            o.best_single_total,
            o.cross_total,
            o.cross_egress,
            o.cross_provider_moves,
            o.best_single_provider,
            o.benefit_best_single,
            o.benefit_cross
        );
    }

    heading("Per-provider split at the interconnect price point (scale 1)");
    let (_, at_one) = sweep
        .iter()
        .find(|(s, _)| *s == 1.0)
        .ok_or("scale 1 missing from the sweep")?;
    println!(
        "{:<10} {:>14} {:>14} {:>12}",
        "provider", "total (c)", "egress (c)", "transitions"
    );
    for s in &at_one.single {
        println!(
            "{:<10} {:>14.1} {:>14.1} {:>12}",
            s.provider, s.total, s.egress, s.transitions
        );
    }
    println!(
        "\ncross-provider: total {:.1} c, egress {:.1} c, {} transitions ({} cross-cloud), \
         {:.2}% saved vs best single provider",
        at_one.cross_total,
        at_one.cross_egress,
        at_one.cross_transitions,
        at_one.cross_provider_moves,
        at_one.savings_vs_best_single
    );
    Ok(())
}
