//! Regenerates paper Table III (confusion matrix of the Random-Forest tier
//! predictor) and Table IV (OPTASSIGN with predicted / known accesses vs the
//! caching and recency baselines).

use scope_bench::heading;
use scope_core::{predictor_confusion, tiering_baseline_comparison};
use scope_learn::{f1_score, precision, recall};
use scope_workload::EnterpriseOptions;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let account = EnterpriseOptions {
        n_datasets: 760,
        history_months: 12,
        future_months: 6,
        seed: 17,
        ..Default::default()
    };

    heading("Table III — predicted vs ideal tier (2-month horizon)");
    let cm = predictor_confusion(&account, 2)?;
    println!("{:>18} {:>8} {:>8}", "", "Pred Hot", "Pred Cool");
    println!(
        "{:>18} {:>8} {:>8}",
        "Ideal Hot", cm.counts[0][0], cm.counts[0][1]
    );
    println!(
        "{:>18} {:>8} {:>8}",
        "Ideal Cool", cm.counts[1][0], cm.counts[1][1]
    );
    println!(
        "accuracy {:.3}  |  Hot: precision {:.3} recall {:.3} F1 {:.3}  |  Cool: precision {:.3} recall {:.3} F1 {:.3}",
        cm.accuracy(),
        precision(&cm, 0), recall(&cm, 0), f1_score(&cm, 0),
        precision(&cm, 1), recall(&cm, 1), f1_score(&cm, 1),
    );

    heading("Table IV — tiering models vs the all-hot baseline (same account)");
    println!(
        "{:<44} {:>12} {:>9} {:>11}",
        "Model", "Access info", "Months", "Benefit %"
    );
    for row in tiering_baseline_comparison(&account)? {
        println!(
            "{:<44} {:>12} {:>9} {:>11.2}",
            row.model, row.access_information, row.duration_months, row.benefit_percent
        );
    }
    Ok(())
}
