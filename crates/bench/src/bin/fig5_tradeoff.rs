//! Regenerates paper Fig 5: the latency-cost vs storage-cost and total-cost
//! vs latency trade-off curves of OPTASSIGN under different compression
//! predictors (ground truth, RF-quality, SVR-quality, averaging, and the
//! random-sample/size-only failure mode).

use scope_bench::heading;
use scope_core::{tpch_scenario, tradeoff_sweep, PredictorVariant, ScenarioOptions};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let inputs = tpch_scenario(&ScenarioOptions {
        nominal_total_gb: 1.0, // the paper runs Fig 5 on TPC-H 1 GB
        generator_scale: 0.15,
        queries_per_template: 8,
        total_files: 32,
        ..Default::default()
    })?;

    let alphas = [0.0, 0.05, 0.1, 0.3, 0.5, 1.0, 2.0, 5.0, 10.0];
    heading("Fig 5 — cost/latency trade-off curves per compression predictor");
    for variant in PredictorVariant::all() {
        println!("\npredictor: {}", variant.name());
        println!(
            "{:>8} {:>14} {:>14} {:>14} {:>14}",
            "alpha", "storage cost", "latency cost", "total cost", "latency (s)"
        );
        let points = tradeoff_sweep(&inputs, variant, &alphas, 1.0)?;
        for p in points {
            println!(
                "{:>8.2} {:>14.3} {:>14.3} {:>14.3} {:>14.4}",
                p.alpha, p.storage_cost, p.latency_cost, p.total_cost, p.latency_seconds
            );
        }
    }
    println!(
        "\nThe ground-truth and RF curves should be nearly identical; the averaging and\n\
         random-sample/size-only predictors land on visibly different trade-off points."
    );
    Ok(())
}
