//! PR-5 benchmark suite: the learning-pipeline fast path vs the preserved
//! seed-shaped reference paths.
//!
//! ```text
//! train_bench [--json] [--quick] [--out PATH]
//! ```
//!
//! * `--json`  — also write the results as JSON (default path
//!   `BENCH_5.json` in the working directory; override with `--out`).
//! * `--quick` — small instances / single rep, for the CI smoke run.
//!
//! Every section runs the **same instance** through both families —
//! `scope_learn::reference` / `weighted_entropy_by_type_reference` /
//! `solve_ordered_exact_reference` (per-node re-sorts, clone-based
//! bootstraps, sequential loops, per-cell `String` rendering, per-merge
//! window re-scans: exactly the pre-PR-5 code paths) and the production
//! fast paths (presort CART on a column-major [`ColumnMatrix`], bagging by
//! index, deterministic parallel fan-out, distinct-value entropy counting,
//! incremental DP window statistics) — asserts the outputs are **identical**
//! (bit-for-bit models, predictions, entropies and DP plans), and reports
//! min-of-reps wall-clock per path. The headline numbers are forest
//! training at 50 000 rows and the ordered DP at 2 000 partitions.

use scope_compredict::features::{weighted_entropy_by_type, weighted_entropy_by_type_reference};
use scope_datapart::DataPartError;
use scope_datapart::{solve_ordered_exact, solve_ordered_exact_reference, OrderedPartition};
use scope_learn::boosting::BoostingParams;
use scope_learn::forest::ForestParams;
use scope_learn::reference::{
    fit_boosting_reference, fit_forest_classifier_reference, fit_forest_classifier_seed,
    fit_forest_regressor_reference, fit_forest_regressor_seed, fit_tree_regressor_reference,
    fit_tree_regressor_seed,
};
use scope_learn::tree::TreeParams;
use scope_learn::LearnError;
use scope_learn::{
    Classifier, ColumnMatrix, DecisionTreeRegressor, GradientBoostingRegressor,
    RandomForestClassifier, RandomForestRegressor, Regressor,
};
use scope_table::{TableError, TpchGenerator, TpchOptions, TpchTable};
use std::error::Error;
use std::time::Instant;

struct Config {
    quick: bool,
    json: bool,
    out: String,
    rows: usize,
    reps: usize,
    dp_partitions: usize,
}

impl Config {
    fn from_args() -> Result<Config, String> {
        let mut quick = false;
        let mut json = false;
        let mut out = "BENCH_5.json".to_string();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => quick = true,
                "--json" => json = true,
                "--out" => match args.next() {
                    Some(path) => out = path,
                    None => return Err("--out requires a path".to_string()),
                },
                other => {
                    return Err(format!(
                        "unknown argument {other} (expected --json / --quick / --out)"
                    ))
                }
            }
        }
        Ok(Config {
            quick,
            json,
            out,
            rows: if quick { 5_000 } else { 50_000 },
            reps: if quick { 1 } else { 2 },
            dp_partitions: if quick { 400 } else { 2_000 },
        })
    }
}

/// Min-of-reps wall clock (seconds) of `f`, returning the last result.
/// Runs at least once even for `reps == 0`.
fn time_min<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let t = Instant::now();
    let mut out = f();
    let mut best = t.elapsed().as_secs_f64();
    for _ in 1..reps {
        let t = Instant::now();
        out = f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best, out)
}

/// [`time_min`] for fallible work: the first error aborts the bench.
fn time_min_try<R, E>(reps: usize, mut f: impl FnMut() -> Result<R, E>) -> Result<(f64, R), E> {
    let t = Instant::now();
    let mut out = f()?;
    let mut best = t.elapsed().as_secs_f64();
    for _ in 1..reps {
        let t = Instant::now();
        out = f()?;
        best = best.min(t.elapsed().as_secs_f64());
    }
    Ok((best, out))
}

/// Synthetic training set shaped like the predictors' real inputs:
/// 6 features — half coarsely quantized (8 distinct values, heavy ties,
/// like month counters and bucket ids) and half continuous (like sizes,
/// entropies and read rates; nearly every value distinct, so the seed
/// scorer's per-candidate re-scans are genuinely `O(n²)` per node) — with
/// a nonlinear target.
fn training_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>, Vec<usize>) {
    let mut state = seed | 1;
    let mut next = || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut features = Vec::with_capacity(n);
    let mut targets = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let x: Vec<f64> = (0..6)
            .map(|f| {
                if f % 2 == 0 {
                    (next() * 8.0).floor()
                } else {
                    next() * 10.0
                }
            })
            .collect();
        let y = (x[0] * x[1]).sin() * 5.0 + x[2] + 0.3 * x[3] * x[4] + x[5];
        features.push(x);
        labels.push((y.abs() as usize) % 3);
        targets.push(y);
    }
    (features, targets, labels)
}

/// One section's timings: the true seed path (two-pass split scoring — the
/// pre-PR-5 hot loop; `None` where it is not benched), the scan-scored
/// reference oracle, and the production fast path.
struct Comparison {
    seed_s: Option<f64>,
    reference_s: f64,
    fast_s: f64,
}

impl Comparison {
    /// Headline speedup: vs the seed path where benched, else vs the
    /// scan-scored reference.
    fn speedup(&self) -> f64 {
        self.seed_s.unwrap_or(self.reference_s) / self.fast_s
    }
}

fn print_row(name: &str, c: &Comparison) {
    match c.seed_s {
        Some(seed_s) => {
            println!(
            "{name:<20} seed {:>9.4} s   reference {:>9.4} s   fast {:>9.4} s   speedup {:>7.1}x",
            seed_s, c.reference_s, c.fast_s, c.speedup()
        )
        }
        None => println!(
            "{name:<20} {:<16} reference {:>9.4} s   fast {:>9.4} s   speedup {:>7.1}x",
            "",
            c.reference_s,
            c.fast_s,
            c.speedup()
        ),
    }
}

fn bench_tree(f: &[Vec<f64>], t: &[f64], reps: usize) -> Result<Comparison, LearnError> {
    let params = TreeParams::default();
    let (seed_s, _) = time_min_try(1, || fit_tree_regressor_seed(f, t, params, 1))?;
    let (reference_s, reference) =
        time_min_try(reps, || fit_tree_regressor_reference(f, t, params, 1))?;
    let (fast_s, fast) = time_min_try(reps, || DecisionTreeRegressor::fit_seeded(f, t, params, 1))?;
    assert_eq!(fast, reference, "tree paths diverged");
    Ok(Comparison {
        seed_s: Some(seed_s),
        reference_s,
        fast_s,
    })
}

/// Mean absolute difference between two prediction vectors (seed-vs-fast
/// agreement check: the scoring formulas differ only by float
/// reassociation, so the models must agree except at rounding-level split
/// ties).
fn mean_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / a.len() as f64
}

fn bench_forest_regressor(
    f: &[Vec<f64>],
    t: &[f64],
    reps: usize,
) -> Result<(Comparison, Comparison), LearnError> {
    let params = ForestParams {
        n_trees: 8,
        seed: 3,
        ..Default::default()
    };
    // The seed scorer re-scans `O(n)` targets per candidate split, and the
    // continuous features make nearly every row boundary a candidate —
    // quadratic per node. One tree is enough to time it; the per-tree cost
    // is extrapolated to the ensemble (every tree does the same work).
    let one_tree = ForestParams {
        n_trees: 1,
        ..params
    };
    let (seed_one_s, seed_forest) = time_min_try(1, || fit_forest_regressor_seed(f, t, one_tree))?;
    let seed_s = seed_one_s * params.n_trees as f64;
    let (reference_s, reference) =
        time_min_try(reps, || fit_forest_regressor_reference(f, t, params))?;
    let cols = ColumnMatrix::from_rows(f)?;
    let (fast_s, fast) = time_min_try(reps, || {
        RandomForestRegressor::fit_columns(&cols, t, params)
    })?;
    assert_eq!(fast, reference, "forest regressor paths diverged");
    // The seed scorer is float-reassociated, so whole-model equality is not
    // guaranteed at split-score ties — but the fitted trees must agree. The
    // fast forest's first tree trains on the identical bootstrap draw.
    let fast_one = RandomForestRegressor::fit_columns(&cols, t, one_tree)?;
    let sample: Vec<Vec<f64>> = f.iter().step_by(23).cloned().collect();
    let mad = mean_abs_diff(&seed_forest.predict(&sample), &fast_one.predict(&sample));
    assert!(mad < 0.05, "seed and fast forests disagree: mad = {mad}");

    // Prediction over the full training set: sequential row-major
    // predict_one loop vs the batched column walk.
    let (pred_ref_s, by_rows) = time_min(reps.max(2), || reference.predict(f));
    let (pred_fast_s, by_cols) = time_min(reps.max(2), || fast.predict_columns(&cols));
    assert_eq!(by_rows.len(), by_cols.len());
    for (a, b) in by_rows.iter().zip(&by_cols) {
        assert_eq!(a.to_bits(), b.to_bits(), "forest predictions diverged");
    }
    Ok((
        Comparison {
            seed_s: Some(seed_s),
            reference_s,
            fast_s,
        },
        Comparison {
            seed_s: None,
            reference_s: pred_ref_s,
            fast_s: pred_fast_s,
        },
    ))
}

fn bench_forest_classifier(
    f: &[Vec<f64>],
    labels: &[usize],
    reps: usize,
) -> Result<Comparison, LearnError> {
    let params = ForestParams {
        n_trees: 8,
        seed: 5,
        ..Default::default()
    };
    // The seed Gini scorer builds an ordered count map per candidate split
    // — on continuous features that is minutes per tree at this scale, so
    // it is timed on a small prefix and extrapolated linearly in rows (its
    // per-node cost is O(rows · candidates) with candidates ≈ rows, but
    // one level's candidates dominate, making rows² / prefix² the honest
    // scale — reported conservatively with the linear factor).
    let prefix = f.len().min(2_500);
    let (seed_prefix_s, seed_forest) = time_min_try(1, || {
        fit_forest_classifier_seed(&f[..prefix], &labels[..prefix], params)
    })?;
    let seed_s = seed_prefix_s * (f.len() as f64 / prefix as f64);
    let (reference_s, reference) =
        time_min_try(reps, || fit_forest_classifier_reference(f, labels, params))?;
    let cols = ColumnMatrix::from_rows(f)?;
    let (fast_s, fast) = time_min_try(reps, || {
        RandomForestClassifier::fit_columns(&cols, labels, params)
    })?;
    assert_eq!(fast, reference, "forest classifier paths diverged");
    // Seed-vs-fast agreement on the prefix instance the seed trained on.
    let prefix_cols = ColumnMatrix::from_rows(&f[..prefix])?;
    let fast_prefix = RandomForestClassifier::fit_columns(&prefix_cols, &labels[..prefix], params)?;
    let sample: Vec<Vec<f64>> = f[..prefix].iter().step_by(7).cloned().collect();
    let seed_preds = Classifier::predict(&seed_forest, &sample);
    let fast_preds = Classifier::predict(&fast_prefix, &sample);
    let disagree = seed_preds
        .iter()
        .zip(&fast_preds)
        .filter(|(a, b)| a != b)
        .count();
    assert!(
        disagree * 50 < sample.len(),
        "seed and fast classifier forests disagree on {disagree}/{} rows",
        sample.len()
    );
    Ok(Comparison {
        seed_s: Some(seed_s),
        reference_s,
        fast_s,
    })
}

fn bench_boosting(f: &[Vec<f64>], t: &[f64], reps: usize) -> Result<Comparison, LearnError> {
    let params = BoostingParams {
        n_estimators: 30,
        ..Default::default()
    };
    let (reference_s, reference) = time_min_try(reps, || fit_boosting_reference(f, t, params))?;
    let cols = ColumnMatrix::from_rows(f)?;
    let (fast_s, fast) = time_min_try(reps, || {
        GradientBoostingRegressor::fit_columns(&cols, t, params)
    })?;
    assert_eq!(fast, reference, "boosting paths diverged");
    Ok(Comparison {
        seed_s: None,
        reference_s,
        fast_s,
    })
}

fn bench_features(quick: bool, reps: usize) -> Result<(Comparison, usize), TableError> {
    // Real tabular data: TPC-H orders (9 columns across all four types);
    // scale 40 ≈ 60k rows.
    let gen = TpchGenerator::new(TpchOptions {
        scale_factor: if quick { 4.0 } else { 40.0 },
        ..Default::default()
    })?;
    let orders = gen.generate(TpchTable::Orders);
    let n = orders.n_rows();
    let reps = reps.max(2);
    let (reference_s, slow) = time_min(reps, || weighted_entropy_by_type_reference(&orders, 0, n));
    let (fast_s, fast) = time_min(reps, || weighted_entropy_by_type(&orders, 0, n));
    assert_eq!(fast.len(), slow.len());
    for (k, v) in &slow {
        assert_eq!(fast[k].to_bits(), v.to_bits(), "entropy diverged for {k:?}");
    }
    Ok((
        Comparison {
            seed_s: None, // the String-per-cell reference *is* the seed path
            reference_s,
            fast_s,
        },
        n,
    ))
}

fn bench_ordered_dp(n: usize, reps: usize) -> Result<(Comparison, usize), DataPartError> {
    // A chain of overlapping interval partitions where every 10th carries
    // real read frequency (a hot query family) and the rest are dormant —
    // the time-series shape DATAPART targets. Dormant runs merge for free,
    // hot windows price in quickly, so long merges fall over budget: the
    // production DP prunes them after O(1) work per `from`, while the
    // reference still pays a full window re-scan for every (i, k) pair.
    let mut parts = Vec::with_capacity(n);
    let mut end = 0.0f64;
    let mut nonzero = 0usize;
    for i in 0..n {
        end += 1.0 + (i % 3) as f64;
        let span = 4.0 + (i % 5) as f64 * 2.0;
        let freq = if i % 10 == 0 {
            nonzero += 1;
            1.0 + ((i / 10) % 3) as f64
        } else {
            0.0
        };
        parts.push(OrderedPartition::new(end - span, end, freq));
    }
    let min_cost: f64 = parts.iter().map(|p| p.span() * p.frequency).sum();
    // Coarse cost units keep the budget axis small so the window-statistics
    // cost dominates the reference (the regime the fast path attacks). The
    // all-separate covering pays at most one unit of ceil rounding per
    // non-dormant partition, so a `nonzero`-unit cushion keeps it feasible.
    let resolution = 100.0 / min_cost;
    let budget_units = 110 + nonzero;
    let budget = budget_units as f64 / resolution;
    let (reference_s, slow) = time_min_try(reps, || {
        solve_ordered_exact_reference(&parts, budget, resolution)
    })?;
    let (fast_s, fast) = time_min_try(reps, || solve_ordered_exact(&parts, budget, resolution))?;
    assert_eq!(fast.merges, slow.merges, "DP plans diverged");
    assert_eq!(fast.total_space.to_bits(), slow.total_space.to_bits());
    assert_eq!(fast.total_cost.to_bits(), slow.total_cost.to_bits());
    Ok((
        Comparison {
            seed_s: None, // the per-merge window re-scan reference *is* the seed path
            reference_s,
            fast_s,
        },
        budget_units,
    ))
}

fn main() -> Result<(), Box<dyn Error>> {
    let cfg = Config::from_args()?;
    println!(
        "train_bench: {} rows x 6 features, DP at {} partitions, min of {} rep(s){}",
        cfg.rows,
        cfg.dp_partitions,
        cfg.reps,
        if cfg.quick { " [quick]" } else { "" }
    );
    let (f, t, labels) = training_data(cfg.rows, 42);

    let tree = bench_tree(&f, &t, cfg.reps)?;
    print_row("tree train", &tree);
    let (forest, forest_pred) = bench_forest_regressor(&f, &t, cfg.reps)?;
    print_row("forest train", &forest);
    print_row("forest predict", &forest_pred);
    let forest_clf = bench_forest_classifier(&f, &labels, cfg.reps)?;
    print_row("forest train (clf)", &forest_clf);
    let boosting = bench_boosting(&f, &t, cfg.reps)?;
    print_row("boosting train", &boosting);
    let (features, feature_rows) = bench_features(cfg.quick, cfg.reps)?;
    print_row("entropy features", &features);
    let (dp, budget_units) = bench_ordered_dp(cfg.dp_partitions, cfg.reps)?;
    print_row("ordered DP", &dp);

    if cfg.json {
        let section = |c: &Comparison| {
            match c.seed_s {
            Some(seed_s) => format!(
                "{{ \"seed_s\": {:.6}, \"scan_reference_s\": {:.6}, \"fast_s\": {:.6}, \"speedup\": {:.2}, \"speedup_vs_scan_reference\": {:.2} }}",
                seed_s,
                c.reference_s,
                c.fast_s,
                c.speedup(),
                c.reference_s / c.fast_s,
            ),
            None => format!(
                "{{ \"reference_s\": {:.6}, \"fast_s\": {:.6}, \"speedup\": {:.2} }}",
                c.reference_s,
                c.fast_s,
                c.speedup()
            ),
        }
        };
        let json = format!(
            "{{\n  \"issue\": 5,\n  \"quick\": {},\n  \"config\": {{\n    \"rows\": {},\n    \"features\": 6,\n    \"forest_trees\": 8,\n    \"forest_seed_timed_on_trees\": 1,\n    \"clf_seed_timed_on_row_prefix\": 2500,\n    \"boosting_stages\": 30,\n    \"entropy_rows\": {},\n    \"dp_partitions\": {},\n    \"dp_budget_units\": {},\n    \"reps\": {}\n  }},\n  \"train\": {{\n    \"tree\": {},\n    \"forest\": {},\n    \"forest_classifier\": {},\n    \"boosting\": {}\n  }},\n  \"predict\": {{\n    \"forest_batch\": {}\n  }},\n  \"features\": {{\n    \"weighted_entropy\": {}\n  }},\n  \"datapart\": {{\n    \"ordered_dp\": {}\n  }},\n  \"note\": \"seed = the pre-PR-5 implementations verbatim (two-pass impurity per candidate split, per-node re-sorts, clone bootstraps, sequential training; the entropy and DP references are themselves the seed paths: String-per-cell rendering, O(n) merge stats per DP cell). scan_reference = the seed-shaped oracle with shared scan scoring, bit-for-bit equal to fast (asserted in-bin, with seed-vs-fast prediction agreement asserted statistically). fast = presort CART on column-major data, index bagging, deterministic parallel fan-out (single-core in this environment, so speedups are purely algorithmic), distinct-value entropy counting, O(1) incremental DP window stats. speedup = vs seed where benched, else vs the reference.\"\n}}\n",
            cfg.quick,
            cfg.rows,
            feature_rows,
            cfg.dp_partitions,
            budget_units,
            cfg.reps,
            section(&tree),
            section(&forest),
            section(&forest_clf),
            section(&boosting),
            section(&forest_pred),
            section(&features),
            section(&dp),
        );
        std::fs::write(&cfg.out, &json)?;
        println!("wrote {}", cfg.out);
    }
    Ok(())
}
