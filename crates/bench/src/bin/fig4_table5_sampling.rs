//! Regenerates paper Fig 4 (compression ratio vs size and vs weighted
//! entropy for random vs query-derived samples) and Table V (prediction
//! quality: sampling strategy × feature set).

use scope_bench::heading;
use scope_compredict::{
    predictor::build_examples, query_samples, random_samples, CompressionPredictor,
    FeatureExtractor, FeatureSet, ModelKind, PredictionTask,
};
use scope_compress::CompressionScheme;
use scope_table::{DataLayout, TpchGenerator, TpchOptions, TpchTable};
use scope_workload::{QueryWorkload, QueryWorkloadOptions};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let gen = TpchGenerator::new(TpchOptions {
        scale_factor: 0.25,
        ..Default::default()
    })?;
    let lineitem = gen.generate(TpchTable::Lineitem);
    let orders = gen.generate(TpchTable::Orders);
    let li_files = lineitem.split_into_files(100)?;
    let or_files = orders.split_into_files(50)?;
    let workload = QueryWorkload::generate_tpch(
        &[
            ("lineitem".to_string(), li_files.len()),
            ("orders".to_string(), or_files.len()),
        ],
        &QueryWorkloadOptions {
            queries_per_template: 8,
            ..Default::default()
        },
    )?;

    let entropy_extractor = FeatureExtractor::new(FeatureSet::WeightedEntropy);
    let size_extractor = FeatureExtractor::new(FeatureSet::SizeOnly);

    let mut query_tables = query_samples(&lineitem, &li_files, &workload.families)?;
    query_tables.extend(query_samples(&orders, &or_files, &workload.families)?);
    let mut random_tables = random_samples(&lineitem, query_tables.len() / 2, 300, 5)?;
    random_tables.extend(random_samples(&orders, query_tables.len() / 2, 150, 6)?);

    let query_examples = build_examples(
        &query_tables,
        CompressionScheme::Gzip,
        DataLayout::Csv,
        &entropy_extractor,
    );
    let random_examples = build_examples(
        &random_tables,
        CompressionScheme::Gzip,
        DataLayout::Csv,
        &entropy_extractor,
    );

    heading("Fig 4 — gzip compression ratio vs size and vs weighted entropy");
    println!(
        "{:<16} {:>12} {:>16} {:>10}",
        "sample kind", "bytes", "text entropy", "ratio"
    );
    for (kind, examples) in [("query", &query_examples), ("random", &random_examples)] {
        for e in examples.iter().take(8) {
            // feature layout: [rows, approx_bytes, H_int, H_float, H_object, H_date]
            println!(
                "{:<16} {:>12.0} {:>16.2} {:>10.3}",
                kind, e.features[1], e.features[4], e.ratio
            );
        }
    }
    let mean = |ex: &[scope_compredict::TrainingExample]| {
        ex.iter().map(|e| e.ratio).sum::<f64>() / ex.len() as f64
    };
    println!(
        "mean gzip ratio: query samples {:.3} vs random samples {:.3} (queried data is more repetitive)",
        mean(&query_examples),
        mean(&random_examples)
    );

    heading("Table V — Random-Forest prediction quality by sampling strategy and features");
    println!(
        "{:<18} {:<20} {:>8} {:>9} {:>8}",
        "training data", "features", "MAE", "MAPE %", "R2"
    );
    let split = query_examples.len() * 3 / 4;
    let (train_q, test_q) = query_examples.split_at(split.max(4));
    let size_query_examples = build_examples(
        &query_tables,
        CompressionScheme::Gzip,
        DataLayout::Csv,
        &size_extractor,
    );
    let (train_q_size, _) = size_query_examples.split_at(split.max(4));
    let cases: Vec<(
        &str,
        &str,
        &[scope_compredict::TrainingExample],
        FeatureExtractor,
    )> = vec![
        (
            "Random samples",
            "Weighted entropy",
            &random_examples,
            entropy_extractor,
        ),
        ("Queries", "Size", train_q_size, size_extractor),
        ("Queries", "Weighted entropy", train_q, entropy_extractor),
    ];
    for (data_kind, features, train, extractor) in cases {
        let model = CompressionPredictor::train(
            train,
            PredictionTask::CompressionRatio,
            ModelKind::RandomForest,
            extractor,
            1,
        )?;
        // Evaluation always happens on held-out *query* samples with the
        // matching feature set.
        let eval_examples = if features == "Size" {
            build_examples(
                &query_tables[split.max(4).min(query_tables.len())..],
                CompressionScheme::Gzip,
                DataLayout::Csv,
                &size_extractor,
            )
        } else {
            test_q.to_vec()
        };
        let eval = model.evaluate(&eval_examples);
        println!(
            "{:<18} {:<20} {:>8.3} {:>9.2} {:>8.3}",
            data_kind, features, eval.mae, eval.mape, eval.r2
        );
    }
    Ok(())
}
