//! Regenerates paper Table I and Table XII: the Azure ADLS Gen2 tier cost,
//! latency and capacity parameters used throughout the evaluation.

use scope_bench::heading;
use scope_cloudsim::TierCatalog;

fn main() {
    heading("Table I — storage cost, read cost and time-to-first-byte per tier");
    let catalog = TierCatalog::azure_adls_gen2();
    println!(
        "{:<10} {:>22} {:>18} {:>22} {:>18}",
        "Tier",
        "Storage (c/GB/month)",
        "Read (c/GB)",
        "Time to first byte (s)",
        "Early deletion (d)"
    );
    for (_, tier) in catalog.iter() {
        println!(
            "{:<10} {:>22.4} {:>18.6} {:>22.4} {:>18}",
            tier.name,
            tier.storage_cost_cents_per_gb_month,
            tier.read_cost_cents_per_gb,
            tier.ttfb_seconds,
            tier.early_deletion_days
        );
    }

    heading("Table XII — ILP parameters for the TPC-H pipeline experiments");
    println!(
        "compute cost C^c = {} cents/second",
        catalog.compute_cost_cents_per_second
    );
    println!("capacity fractions used by 'SCOPe (Total cost focused)': premium 0.163, hot 0.326, cool 0.4891 of the data volume");
}
