//! Regenerates paper Table IX: the full policy comparison on the
//! Enterprise Data II scenario (3 tables, ~1.5 GB, Zipf-skewed queries).

use scope_bench::{heading, print_policy_header, print_policy_row};
use scope_core::{enterprise2_scenario, run_all_policies};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    heading("Table IX — Enterprise Data II (3 tables, ~1.5 GB, Zipf queries)");
    let inputs = enterprise2_scenario(1.5, 200, 5)?;
    println!(
        "scenario: {} tables, {:.2} GB, {} query families, horizon {:.1} months\n",
        inputs.tables.len(),
        inputs.total_size_gb(),
        inputs.families.len(),
        inputs.horizon_months
    );
    print_policy_header();
    for outcome in run_all_policies(&inputs)? {
        print_policy_row(&outcome);
    }
    println!("\nCosts in cents over the horizon. Lower total cost is better; the SCOPe rows should dominate.");
    Ok(())
}
