//! PR-10 recovery benchmark: the journaled serving loop — crash-recovery
//! equalities first, journaling overhead second.
//!
//! ```text
//! recovery_bench [--json] [--quick] [--out PATH] [--dir PATH]
//! ```
//!
//! * `--json`  — also write the results as JSON (default path
//!   `BENCH_10.json` in the working directory; override with `--out`).
//! * `--quick` — the CI smoke configuration.
//! * `--dir`   — directory for the file-backed journal used by the
//!   timing phase (default `target/recovery_bench_wal`; wiped between
//!   repetitions).
//!
//! **Correctness before speed:** the verification phase runs the
//! [`scope_core::run_recovery`] crash-recovery scenario in this process,
//! over fault-injected in-memory storage, for every seeded storage-fault
//! plan (none / light / heavy) and two seeds each. Every run forces at
//! least three crashes at fuzzed step positions on top of the plan's own
//! crash/torn-write/bit-flip schedule, and asserts that after every
//! crash + recover + re-delivery cycle the journaled engine's durable
//! checkpoints and final state are **byte-identical** to a never-crashed
//! twin's — heat bits, placement choices, objective bits, checkpoint
//! bytes.
//!
//! Only then is journaling overhead timed on the BENCH_8 steady loop
//! (the `serve_bench` fleet and trace, sequenced intake, epoch
//! advance + incremental re-solve): a plain [`ServeEngine`] replay
//! versus the same loop behind [`JournaledEngine`] — once over
//! [`MemStorage`] (framing + CRC cost alone) and once over
//! [`FileStorage`] with real fsyncs at epoch boundaries and atomic
//! durable checkpoints (the headline overhead).

use scope_core::{run_recovery, RecoveryOptions, RecoveryOutcome};
use scope_faults::StorageFaultRates;
use scope_serve::{CompressionOption, JournaledEngine, ServeConfig, ServeEngine, ServeObject};
use scope_wal::{FileStorage, JournalConfig, MemStorage, Storage};
use scope_workload::EnterpriseOptions;
use std::error::Error;
use std::time::Instant;

use scope_cloudsim::{BillingEvent, EventColumns, TierCatalog, TierId};

struct Config {
    quick: bool,
    json: bool,
    out: String,
    dir: String,
    objects: usize,
    accounts: usize,
    epochs: u32,
    epoch_days: u32,
    events_per_day: usize,
    batches_per_epoch: usize,
    segment_records: usize,
    reps: usize,
    verify_datasets: usize,
    verify_months: u32,
}

impl Config {
    fn from_args() -> Result<Config, String> {
        let mut quick = false;
        let mut json = false;
        let mut out = "BENCH_10.json".to_string();
        let mut dir = "target/recovery_bench_wal".to_string();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => quick = true,
                "--json" => json = true,
                "--out" => match args.next() {
                    Some(path) => out = path,
                    None => return Err("--out requires a path".to_string()),
                },
                "--dir" => match args.next() {
                    Some(path) => dir = path,
                    None => return Err("--dir requires a path".to_string()),
                },
                other => {
                    return Err(format!(
                        "unknown argument {other} (expected --json / --quick / --out / --dir)"
                    ))
                }
            }
        }
        Ok(Config {
            quick,
            json,
            out,
            dir,
            objects: if quick { 1000 } else { 4000 },
            accounts: 8,
            epochs: if quick { 6 } else { 10 },
            epoch_days: 15,
            events_per_day: if quick { 2400 } else { 6000 },
            batches_per_epoch: 4,
            segment_records: 64,
            reps: if quick { 1 } else { 3 },
            verify_datasets: if quick { 40 } else { 60 },
            verify_months: 6,
        })
    }
}

fn schemes() -> Vec<CompressionOption> {
    vec![
        CompressionOption::none(),
        CompressionOption::new("gzip", 3.5, 1.5),
        CompressionOption::new("zstd", 2.4, 0.35),
        CompressionOption::new("lz4", 2.1, 0.15),
        CompressionOption::new("snappy", 1.8, 0.08),
        CompressionOption::new("brotli", 3.9, 2.6),
    ]
}

/// The `serve_bench` fleet (same shape as `chaos_bench`).
fn build_engine(cfg: &Config) -> Result<ServeEngine, Box<dyn Error>> {
    let horizon_days = cfg.epochs * cfg.epoch_days;
    let config = ServeConfig {
        horizon_days,
        horizon_months: f64::from(horizon_days) / 30.0,
        threads: 1,
        decay_per_day: 0.82,
        bucket_base: 3.0,
        bucket_hysteresis: 4.0,
        ..ServeConfig::default()
    };
    let mut engine = ServeEngine::new(TierCatalog::azure_hot_cool_archive(), schemes(), config)?;
    for i in 0..cfg.objects {
        let mut spec = ServeObject::new(
            format!("obj-{i:06}"),
            format!("account-{}", i % cfg.accounts),
            0.5 + (i as f64) * 0.173,
            TierId(i % 2),
        )
        .with_residency_days((i as u32 * 13) % 200);
        if i % 3 == 0 {
            spec = spec.with_latency_threshold(2.0);
        }
        engine.register(spec)?;
    }
    Ok(engine)
}

/// The `serve_bench` skewed drifting trace (same LCG, same mix).
fn build_trace(engine: &ServeEngine, cfg: &Config) -> EventColumns {
    let mut seed = 0x8eed_5e12_u64;
    let mut draw = move || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (seed >> 33) as u32
    };
    let n = engine.len() as u32;
    let days = cfg.epochs * cfg.epoch_days;
    let mut events = Vec::with_capacity(days as usize * cfg.events_per_day);
    for day in 0..days {
        for _ in 0..cfg.events_per_day {
            let r = draw() % n;
            let id = ((u64::from(r) * u64::from(r) / u64::from(n)) as u32 + day) % n;
            let name = engine
                .object_name(id.min(n - 1))
                .unwrap_or_default()
                .to_string();
            let volume = 0.02 + f64::from(draw() % 128) / 100.0;
            if draw() % 10 == 0 {
                events.push(BillingEvent::write(name, day, volume));
            } else {
                events.push(BillingEvent::read(name, day, volume));
            }
        }
    }
    engine.columns_from_events(&events)
}

/// Split `columns` into `n` contiguous batches, preserving trace order.
fn split_batches(columns: &EventColumns, n: usize) -> Vec<EventColumns> {
    let total = columns.len();
    let per = total.div_ceil(n.max(1)).max(1);
    let mut out = Vec::with_capacity(n);
    for b in 0..n.max(1) {
        let lo = (b * per).min(total);
        let hi = ((b + 1) * per).min(total);
        let mut batch = EventColumns::default();
        batch.days.extend_from_slice(&columns.days[lo..hi]);
        batch.periods.extend_from_slice(&columns.periods[lo..hi]);
        batch
            .object_ids
            .extend_from_slice(&columns.object_ids[lo..hi]);
        batch.kinds.extend_from_slice(&columns.kinds[lo..hi]);
        batch.volumes.extend_from_slice(&columns.volumes[lo..hi]);
        out.push(batch);
    }
    out
}

/// One crash-recovery scenario over fault-injected in-memory storage,
/// with the bit-for-bit contracts asserted in this process. Panics (no
/// JSON) on any divergence.
fn verify_plan(
    cfg: &Config,
    rates: StorageFaultRates,
    seed: u64,
    label: &str,
) -> Result<RecoveryOutcome, Box<dyn Error>> {
    let outcome = run_recovery(&RecoveryOptions {
        workload: EnterpriseOptions {
            n_datasets: cfg.verify_datasets,
            history_months: cfg.verify_months,
            future_months: cfg.verify_months,
            seed: seed ^ 11,
            ..Default::default()
        },
        seed,
        rates,
        ..Default::default()
    })?;
    assert!(
        outcome.crashes >= 3 && outcome.forced_crashes >= 3,
        "{label}: fewer than three fuzzed crash points fired: {outcome:?}"
    );
    assert!(
        outcome.checkpoints_bit_identical,
        "{label}: a recovered checkpoint diverged from the never-crashed twin: {outcome:?}"
    );
    assert!(
        outcome.final_bit_identical,
        "{label}: the final recovered state diverged from the never-crashed twin: {outcome:?}"
    );
    for (i, e) in outcome.epochs.iter().enumerate() {
        assert!(
            e.checkpoint_matches_twin && e.objective_bits_match,
            "{label}: epoch {i} diverged from the twin: {e:?}"
        );
    }
    Ok(outcome)
}

/// The BENCH_8 steady loop: sequenced intake, epoch advance, incremental
/// re-solve — no journal. Returns the wall-clock seconds of the loop.
fn timed_plain(cfg: &Config, trace: &EventColumns) -> Result<f64, Box<dyn Error>> {
    let mut engine = build_engine(cfg)?;
    let t = Instant::now();
    let mut next_seq = 0u64;
    for epoch in 0..cfg.epochs {
        let (lo, hi) = (epoch * cfg.epoch_days, (epoch + 1) * cfg.epoch_days);
        for batch in split_batches(&trace.filter_day_range(lo, hi), cfg.batches_per_epoch) {
            engine.ingest_sequenced(next_seq, &batch)?;
            next_seq += 1;
        }
        engine.advance(hi);
        engine.reoptimize()?;
        let _ = engine.checkpoint();
    }
    Ok(t.elapsed().as_secs_f64())
}

/// The same loop behind the write-ahead journal over `storage`: every
/// batch appended before intake, synced epoch boundaries, durable
/// atomic checkpoints.
fn timed_journaled<S: Storage>(
    cfg: &Config,
    trace: &EventColumns,
    storage: S,
) -> Result<f64, Box<dyn Error>> {
    let journal_cfg = JournalConfig {
        segment_records: cfg.segment_records,
        ..JournalConfig::default()
    };
    let mut engine = JournaledEngine::create(build_engine(cfg)?, storage, journal_cfg)?;
    let t = Instant::now();
    let mut next_seq = 0u64;
    for epoch in 0..cfg.epochs {
        let (lo, hi) = (epoch * cfg.epoch_days, (epoch + 1) * cfg.epoch_days);
        for batch in split_batches(&trace.filter_day_range(lo, hi), cfg.batches_per_epoch) {
            engine.ingest_sequenced(next_seq, &batch)?;
            next_seq += 1;
        }
        engine.advance(hi)?;
        engine.reoptimize()?;
        engine.checkpoint_durable(u64::from(epoch) + 1)?;
    }
    Ok(t.elapsed().as_secs_f64())
}

fn bench_plain(cfg: &Config, trace: &EventColumns) -> Result<f64, Box<dyn Error>> {
    let mut best = timed_plain(cfg, trace)?;
    for _ in 1..cfg.reps {
        best = best.min(timed_plain(cfg, trace)?);
    }
    Ok(best)
}

fn bench_mem(cfg: &Config, trace: &EventColumns) -> Result<f64, Box<dyn Error>> {
    let mut best = timed_journaled(cfg, trace, MemStorage::new())?;
    for _ in 1..cfg.reps {
        best = best.min(timed_journaled(cfg, trace, MemStorage::new())?);
    }
    Ok(best)
}

fn bench_file(cfg: &Config, trace: &EventColumns) -> Result<f64, Box<dyn Error>> {
    let mut best = f64::INFINITY;
    for _ in 0..cfg.reps {
        // A fresh directory per rep: the journal refuses a dirty store.
        if std::fs::metadata(&cfg.dir).is_ok() {
            std::fs::remove_dir_all(&cfg.dir)?;
        }
        let storage = FileStorage::create(&cfg.dir)?;
        best = best.min(timed_journaled(cfg, trace, storage)?);
    }
    if std::fs::metadata(&cfg.dir).is_ok() {
        std::fs::remove_dir_all(&cfg.dir)?;
    }
    Ok(best)
}

fn main() -> Result<(), Box<dyn Error>> {
    let cfg = Config::from_args()?;
    println!(
        "recovery_bench: {} objects, {} accounts, {} epochs x {} days, {} events/day, \
         {} batches/epoch, {} records/segment{}",
        cfg.objects,
        cfg.accounts,
        cfg.epochs,
        cfg.epoch_days,
        cfg.events_per_day,
        cfg.batches_per_epoch,
        cfg.segment_records,
        if cfg.quick { " [quick]" } else { "" }
    );

    // Phase 1: crash-recovery equalities, every plan, in this process.
    let plans = [
        ("none", StorageFaultRates::none()),
        ("light", StorageFaultRates::light()),
        ("heavy", StorageFaultRates::heavy()),
    ];
    let seeds = [0xD0_5EED_u64, 7];
    let mut crashes = 0usize;
    let mut recoveries_started_fresh = 0usize;
    let mut unrecoverable_resets = 0usize;
    let mut quarantined_checkpoints = 0usize;
    let mut quarantined_records = 0usize;
    let mut torn_bytes = 0u64;
    let mut replayed_records = 0u64;
    let mut redelivered_batches = 0u64;
    for (name, rates) in &plans {
        for &seed in &seeds {
            let outcome = verify_plan(&cfg, *rates, seed, &format!("{name}/seed-{seed}"))?;
            println!(
                "verified {name:>5} seed {seed:#x}: {} crashes ({} forced, {} torn, {} bit-flip), \
                 {} replayed, {} re-delivered, {} ckpt quarantined, {} fresh, {} resets",
                outcome.crashes,
                outcome.forced_crashes,
                outcome.torn_crashes,
                outcome.bit_flip_crashes,
                outcome.replayed_records,
                outcome.redelivered_batches,
                outcome.quarantined_checkpoints,
                outcome.recoveries_started_fresh,
                outcome.unrecoverable_resets,
            );
            crashes += outcome.crashes;
            recoveries_started_fresh += outcome.recoveries_started_fresh;
            unrecoverable_resets += outcome.unrecoverable_resets;
            quarantined_checkpoints += outcome.quarantined_checkpoints;
            quarantined_records += outcome.quarantined_records;
            torn_bytes += outcome.torn_bytes;
            replayed_records += outcome.replayed_records;
            redelivered_batches += outcome.redelivered_batches;
        }
    }
    println!(
        "differential pass: every recovered checkpoint and final state byte-identical to the \
         never-crashed twin, across {crashes} crashes over all seeded storage-fault plans"
    );

    // Phase 2: journaling overhead on the BENCH_8 steady loop.
    let trace = build_trace(&build_engine(&cfg)?, &cfg);
    let plain_s = bench_plain(&cfg, &trace)?;
    let mem_s = bench_mem(&cfg, &trace)?;
    let file_s = bench_file(&cfg, &trace)?;
    let mem_overhead = (mem_s / plain_s - 1.0) * 100.0;
    let file_overhead = (file_s / plain_s - 1.0) * 100.0;
    println!("plain loop     {plain_s:>9.4} s  (the BENCH_8 steady loop, no journal)");
    println!("journaled mem  {mem_s:>9.4} s  ({mem_overhead:>+7.1}% — framing + CRC, no disk)");
    println!("journaled file {file_s:>9.4} s  ({file_overhead:>+7.1}% — epoch fsyncs + atomic durable checkpoints)");

    if cfg.json {
        let json = format!(
            "{{\n  \"issue\": 10,\n  \"quick\": {},\n  \"config\": {{\n    \"objects\": {},\n    \"accounts\": {},\n    \"epochs\": {},\n    \"epoch_days\": {},\n    \"events_per_day\": {},\n    \"batches_per_epoch\": {},\n    \"segment_records\": {},\n    \"reps\": {},\n    \"verify_datasets\": {},\n    \"verify_seeds\": {}\n  }},\n  \"recovery\": {{\n    \"verified_plans\": [\"none\", \"light\", \"heavy\"],\n    \"crashes\": {},\n    \"recoveries_started_fresh\": {},\n    \"unrecoverable_resets\": {},\n    \"quarantined_checkpoints\": {},\n    \"quarantined_records\": {},\n    \"torn_bytes\": {},\n    \"replayed_records\": {},\n    \"redelivered_batches\": {},\n    \"plain_loop_s\": {:.6},\n    \"journaled_mem_s\": {:.6},\n    \"journaled_file_s\": {:.6},\n    \"journaled_mem_overhead_pct\": {:.1},\n    \"journaled_file_overhead_pct\": {:.1},\n    \"note\": \"overhead = the BENCH_8 steady loop (sequenced intake, epoch advance, incremental re-solve) behind the write-ahead intake journal over the plain loop; mem = framing + CRC only, file = real fsyncs at epoch boundaries plus atomic durable checkpoints; before timing, this process ran the crash-recovery scenario for every storage-fault plan (none/light/heavy, two seeds each, >= 3 fuzzed crash points plus the plan's own crash/torn-write/bit-flip schedule) and asserted the recovered engine byte-identical to a never-crashed twin after every crash: heat bits, placement choices, objective bits, checkpoint bytes\"\n  }}\n}}\n",
            cfg.quick,
            cfg.objects,
            cfg.accounts,
            cfg.epochs,
            cfg.epoch_days,
            cfg.events_per_day,
            cfg.batches_per_epoch,
            cfg.segment_records,
            cfg.reps,
            cfg.verify_datasets,
            seeds.len(),
            crashes,
            recoveries_started_fresh,
            unrecoverable_resets,
            quarantined_checkpoints,
            quarantined_records,
            torn_bytes,
            replayed_records,
            redelivered_batches,
            plain_s,
            mem_s,
            file_s,
            mem_overhead,
            file_overhead,
        );
        std::fs::write(&cfg.out, &json)?;
        println!("wrote {}", cfg.out);
    }
    Ok(())
}
