//! Regenerates paper Fig 7: the space (duplication) vs read-cost trade-off
//! of no-merge, G-PART and merge-all, per table, for a TPC-H-class and a
//! larger TPC-H-class workload. Also reports the ordered-case DP and its
//! bi-criteria approximation as the ablation for time-series data.

use scope_bench::heading;
use scope_core::{tpch_scenario, ScenarioOptions};
use scope_datapart::{
    gpart_merge, merge_all, metrics, no_merge, solve_ordered_bicriteria, solve_ordered_exact,
    MergeConfig, OrderedPartition, Partition,
};
use std::error::Error;

fn tradeoff(label: &str, options: &ScenarioOptions) -> Result<(), Box<dyn Error>> {
    heading(&format!("Fig 7 — space/cost trade-off ({label})"));
    let inputs = tpch_scenario(options)?;
    let catalog = inputs.file_catalog();
    println!(
        "{:<12} {:<12} {:>12} {:>13} {:>14} {:>12}",
        "table", "variant", "#partitions", "duplication", "read cost", "space (GB)"
    );
    for table in &inputs.tables {
        // Families restricted to this table (the paper plots one dot per table).
        let families: Vec<_> = inputs
            .families
            .iter()
            .filter(|f| f.files.iter().any(|fr| fr.table == table.name))
            .cloned()
            .map(|mut f| {
                f.files.retain(|fr| fr.table == table.name);
                f
            })
            .collect();
        if families.is_empty() {
            continue;
        }
        let initial = Partition::from_families(&families);
        let variants = [
            ("no-merge", no_merge(&initial)),
            (
                "G-PART",
                gpart_merge(&initial, &catalog, &MergeConfig::default())?,
            ),
            ("merge-all", merge_all(&initial)),
        ];
        for (name, parts) in variants {
            let m = metrics::evaluate(&parts, &catalog)?;
            println!(
                "{:<12} {:<12} {:>12} {:>13.3} {:>14.1} {:>12.2}",
                table.name, name, m.n_partitions, m.duplication, m.read_cost, m.total_space
            );
        }
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn Error>> {
    tradeoff(
        "TPC-H 100GB-class",
        &ScenarioOptions {
            nominal_total_gb: 100.0,
            generator_scale: 0.15,
            queries_per_template: 12,
            total_files: 80,
            ..Default::default()
        },
    )?;
    tradeoff(
        "TPC-H 1TB-class",
        &ScenarioOptions {
            nominal_total_gb: 1000.0,
            generator_scale: 0.15,
            queries_per_template: 12,
            total_files: 120,
            ..Default::default()
        },
    )?;

    heading("Ordered (time-series) special case — exact DP vs bi-criteria approximation");
    let partitions: Vec<OrderedPartition> = (0..40)
        .map(|i| OrderedPartition::new(i as f64 * 4.0, i as f64 * 4.0 + 10.0, 1.0 + (i % 5) as f64))
        .collect();
    let min_cost: f64 = partitions.iter().map(|p| p.span() * p.frequency).sum();
    println!(
        "{:>12} {:>14} {:>14} {:>12}",
        "budget", "space (exact)", "space (eps=.05)", "cost (approx)"
    );
    for factor in [1.0, 1.5, 2.0, 3.0, 5.0] {
        let budget = min_cost * factor;
        let exact = solve_ordered_exact(&partitions, budget, 1.0)?;
        let approx = solve_ordered_bicriteria(&partitions, budget, 0.05)?;
        println!(
            "{:>12.0} {:>14.1} {:>14.1} {:>12.1}",
            budget, exact.total_space, approx.total_space, approx.total_cost
        );
    }
    Ok(())
}
