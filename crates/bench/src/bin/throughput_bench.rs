//! PR-7 throughput suite: word-level codec kernels and the sharded
//! struct-of-arrays billing engine.
//!
//! ```text
//! throughput_bench [--json] [--quick] [--out PATH]
//! ```
//!
//! * `--json`  — also write the results as JSON (default path
//!   `BENCH_7.json` in the working directory; override with `--out`).
//! * `--quick` — small buffers / short trace, for the CI smoke run.
//!
//! The codec section measures compression and decompression throughput
//! (GB/s of uncompressed bytes, min-of-reps via `scope_compress::measure`)
//! for every scheme on synthetic tabular text, **after asserting the fast
//! streams are byte-identical to the preserved byte-at-a-time reference
//! pipelines** — the same-stream guarantee is checked in-process, in the
//! same binary that reports the numbers.
//!
//! The billing section replays a 1 000-object day-granular trace through
//! the sharded column engine, timing `run_columns` over prebuilt
//! [`scope_cloudsim::EventColumns`] (name interning and day bucketing are
//! paid once, outside the replay loop, which is the engine's intended
//! steady-state shape). Before timing, the report is asserted bit-identical
//! to the sequential reference engine for thread counts 1, 2 and 7. The
//! headline number is events/s at the default thread count; the PR-4
//! baseline for the same fixture shape was ~19.7 M events/s.

use scope_bench::{billing_fixture, BILLING_HORIZON_DAYS as HORIZON_DAYS};
use scope_cloudsim::reference::run_days_reference;
use scope_cloudsim::{parallel, BillingReport};
use scope_compress::lz77::MatcherParams;
use scope_compress::reference::{
    gzipish_compress_reference, gzipish_decompress_reference, lz4ish_compress_reference,
    lz4ish_decompress_reference, rle_compress_reference, rle_decompress_reference,
};
use scope_compress::{measure, Codec, CompressionScheme};
use std::error::Error;
use std::time::Instant;

struct Config {
    quick: bool,
    json: bool,
    out: String,
    codec_bytes: usize,
    reps: usize,
    billing_objects: usize,
    billing_events: usize,
}

impl Config {
    fn from_args() -> Result<Config, String> {
        let mut quick = false;
        let mut json = false;
        let mut out = "BENCH_7.json".to_string();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => quick = true,
                "--json" => json = true,
                "--out" => match args.next() {
                    Some(path) => out = path,
                    None => return Err("--out requires a path".to_string()),
                },
                other => {
                    return Err(format!(
                        "unknown argument {other} (expected --json / --quick / --out)"
                    ))
                }
            }
        }
        Ok(Config {
            quick,
            json,
            out,
            codec_bytes: if quick { 1 << 19 } else { 1 << 22 },
            reps: if quick { 1 } else { 5 },
            billing_objects: 1000,
            billing_events: if quick { 100_000 } else { 1_000_000 },
        })
    }
}

/// Min-of-reps wall clock (seconds) of `f`, returning the last result.
fn time_min<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let t = Instant::now();
    let mut out = f();
    let mut best = t.elapsed().as_secs_f64();
    for _ in 1..reps {
        let t = Instant::now();
        out = f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best, out)
}

/// Synthetic tabular text with the repetition profile of a TPC-H-ish dump:
/// enumerated keys, a rotating enum column, a quantized numeric column and
/// a recurring comment fragment. Compressible but not degenerate.
fn tabular_bytes(target: usize) -> Vec<u8> {
    const STATUS: [&str; 5] = ["SHIPPED", "PENDING", "RETURNED", "BUILDING", "HOLD"];
    const COMMENT: [&str; 3] = [
        "furiously final requests sleep",
        "carefully ironic deposits nag",
        "quickly express packages boost",
    ];
    let mut out = Vec::with_capacity(target + 128);
    let mut row = 0u64;
    while out.len() < target {
        let line = format!(
            "{row}|Customer#{:09}|{}|{:.2}|1995-{:02}-{:02}|{}\n",
            row * 7 % 1_000_000,
            STATUS[(row % 5) as usize],
            (row % 9000) as f64 / 100.0,
            row % 12 + 1,
            row % 28 + 1,
            COMMENT[(row % 3) as usize],
        );
        out.extend_from_slice(line.as_bytes());
        row += 1;
    }
    out.truncate(target);
    out
}

struct CodecNumbers {
    scheme: &'static str,
    ratio: f64,
    compress_gb_per_s: f64,
    decompress_gb_per_s: f64,
}

/// Pin the fast stream byte-for-byte against the reference pipeline that
/// matches `scheme`'s matcher effort, and the reference decode of the fast
/// stream against the input.
fn assert_stream_matches_oracle(scheme: CompressionScheme, codec: &dyn Codec, data: &[u8]) {
    let fast = codec.compress(data);
    match scheme {
        CompressionScheme::Gzip => {
            let slow = gzipish_compress_reference(data, &MatcherParams::thorough());
            assert_eq!(fast, slow, "gzip stream diverged from reference");
            assert_eq!(
                gzipish_decompress_reference(&fast).as_deref(),
                Ok(data),
                "reference decode of fast gzip stream diverged"
            );
        }
        CompressionScheme::Lz4 => {
            let slow = lz4ish_compress_reference(data, &MatcherParams::fast());
            assert_eq!(fast, slow, "lz4 stream diverged from reference");
            assert_eq!(lz4ish_decompress_reference(&fast).as_deref(), Ok(data));
        }
        CompressionScheme::Snappy => {
            // Snappyish shares the lz4ish wire format at the fastest
            // matcher effort.
            let slow = lz4ish_compress_reference(data, &MatcherParams::fastest());
            assert_eq!(fast, slow, "snappy stream diverged from reference");
            assert_eq!(lz4ish_decompress_reference(&fast).as_deref(), Ok(data));
        }
        CompressionScheme::Rle => {
            let slow = rle_compress_reference(data);
            assert_eq!(fast, slow, "rle stream diverged from reference");
            assert_eq!(rle_decompress_reference(&fast).as_deref(), Ok(data));
        }
        CompressionScheme::None => {}
    }
}

fn bench_codecs(cfg: &Config) -> Vec<CodecNumbers> {
    let data = tabular_bytes(cfg.codec_bytes);
    let mut rows = Vec::new();
    for scheme in [
        CompressionScheme::Gzip,
        CompressionScheme::Snappy,
        CompressionScheme::Lz4,
        CompressionScheme::Rle,
    ] {
        let codec = scheme.codec();
        assert_stream_matches_oracle(scheme, codec.as_ref(), &data);
        let m = measure(codec.as_ref(), &data);
        rows.push(CodecNumbers {
            scheme: scheme.name(),
            ratio: m.ratio,
            compress_gb_per_s: m.compress_gb_per_s,
            decompress_gb_per_s: m.decompress_gb_per_s,
        });
    }
    rows
}

struct BillingNumbers {
    threads: usize,
    reps: usize,
    run_columns_s: f64,
    events_per_s: f64,
}

fn bench_billing(cfg: &Config) -> Result<BillingNumbers, Box<dyn Error>> {
    let (sim, events) = billing_fixture(cfg.billing_objects, cfg.billing_events);
    let columns = sim.build_columns(&events);

    // Correctness before speed: the sharded engine must reproduce the
    // sequential reference bit for bit, for thread counts that split the
    // fixture evenly and unevenly — asserted here, in the same process
    // that publishes the throughput numbers.
    let expected = run_days_reference(&sim, HORIZON_DAYS, &events)?;
    for threads in [1usize, 2, 7] {
        let got = sim.run_columns_with_threads(HORIZON_DAYS, &columns, threads)?;
        assert_eq!(
            got, expected,
            "sharded replay diverged at threads={threads}"
        );
    }
    assert_eq!(sim.run_days(HORIZON_DAYS, &events)?, expected);
    assert!(expected.total() > 0.0);

    let threads = parallel::default_threads();
    // A single replay is ~10 ms, short enough that scheduler noise on a
    // shared host dominates a small rep count; billing takes more reps
    // than the (much longer) codec passes and reports the min.
    let billing_reps = if cfg.quick { 1 } else { cfg.reps * 3 };
    let (run_columns_s, report): (f64, Result<BillingReport, _>) =
        time_min(billing_reps, || sim.run_columns(HORIZON_DAYS, &columns));
    assert_eq!(report?, expected);
    Ok(BillingNumbers {
        threads,
        reps: billing_reps,
        run_columns_s,
        events_per_s: events.len() as f64 / run_columns_s,
    })
}

fn main() -> Result<(), Box<dyn Error>> {
    let cfg = Config::from_args()?;
    println!(
        "throughput_bench: {} KiB codec buffer, {} billing events, min of {} rep(s){}",
        cfg.codec_bytes / 1024,
        cfg.billing_events,
        cfg.reps,
        if cfg.quick { " [quick]" } else { "" }
    );

    let codecs = bench_codecs(&cfg);
    for c in &codecs {
        println!(
            "codec {:<7} ratio {:>6.2}   compress {:>8.3} GB/s   decompress {:>8.3} GB/s",
            c.scheme, c.ratio, c.compress_gb_per_s, c.decompress_gb_per_s
        );
    }

    let billing = bench_billing(&cfg)?;
    println!(
        "billing run_columns  {:>9.4} s for {} events ({:.2} M events/s, {} objects, {} threads)",
        billing.run_columns_s,
        cfg.billing_events,
        billing.events_per_s / 1e6,
        cfg.billing_objects,
        billing.threads
    );

    if cfg.json {
        let codec_json: Vec<String> = codecs
            .iter()
            .map(|c| {
                format!(
                    "    \"{}\": {{ \"ratio\": {:.4}, \"compress_gb_per_s\": {:.4}, \"decompress_gb_per_s\": {:.4} }}",
                    c.scheme, c.ratio, c.compress_gb_per_s, c.decompress_gb_per_s
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"issue\": 7,\n  \"quick\": {},\n  \"config\": {{\n    \"codec_bytes\": {},\n    \"reps\": {},\n    \"billing_reps\": {},\n    \"billing_objects\": {},\n    \"billing_events\": {},\n    \"billing_threads\": {}\n  }},\n  \"codecs\": {{\n{}\n  }},\n  \"billing\": {{\n    \"run_columns_s\": {:.6},\n    \"events_per_s\": {:.0},\n    \"note\": \"run_columns over prebuilt EventColumns (interning + day bucketing paid once); report asserted bit-identical to the sequential reference engine for threads 1/2/7 in this process before timing; billing_threads reflects this host's core count and the shard fan-out scales events/s with it\"\n  }}\n}}\n",
            cfg.quick,
            cfg.codec_bytes,
            cfg.reps,
            billing.reps,
            cfg.billing_objects,
            cfg.billing_events,
            billing.threads,
            codec_json.join(",\n"),
            billing.run_columns_s,
            billing.events_per_s,
        );
        std::fs::write(&cfg.out, &json)?;
        println!("wrote {}", cfg.out);
    }
    Ok(())
}
