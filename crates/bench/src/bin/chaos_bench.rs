//! PR-9 chaos benchmark: the serving loop under seeded fault injection —
//! recovery equalities first, degraded-mode overhead second.
//!
//! ```text
//! chaos_bench [--json] [--quick] [--out PATH]
//! ```
//!
//! * `--json`  — also write the results as JSON (default path
//!   `BENCH_9.json` in the working directory; override with `--out`).
//! * `--quick` — the 1 000-object CI smoke configuration.
//!
//! The fixture is the `serve_bench` fleet and trace; each epoch's events
//! are split into batches and pushed through a [`scope_faults::FaultPlan`]
//! before delivery: volumes corrupted to NaN/negative, batches torn,
//! duplicated, and locally reordered, shards hit with re-solve failures
//! and deadline overruns, and some epochs ended by a simulated crash.
//!
//! **Correctness before speed:** for every fault mix a verification pass
//! asserts, in this process, that
//!
//! * the chaos engine's heat stays bit-identical to a fault-free twin fed
//!   the filtered stream,
//! * the quarantine ledger and drop/seen counters equal the independent
//!   [`scope_faults::expected_intake`] reference,
//! * every healthy shard matches `reference::full_resolve` bit-for-bit,
//! * a crash-and-restore engine's final checkpoint is byte-identical to a
//!   never-crashed engine's over the same faulted stream (and every
//!   restore round-trips its snapshot byte-identically).
//!
//! Only then are the clean, light, and heavy replays timed; the headline
//! number is the degraded-mode overhead — wall-clock of the faulted
//! replay over the fault-free replay of the same trace.

use scope_cloudsim::{BillingEvent, EventColumns, TierCatalog, TierId};
use scope_faults::{expected_intake, FaultPlan, FaultRates};
use scope_serve::{reference, CompressionOption, ServeConfig, ServeEngine, ServeObject};
use std::error::Error;
use std::time::Instant;

const SEED: u64 = 0xC4A0_5EED;

struct Config {
    quick: bool,
    json: bool,
    out: String,
    objects: usize,
    accounts: usize,
    epochs: u32,
    epoch_days: u32,
    events_per_day: usize,
    batches_per_epoch: usize,
    reps: usize,
}

impl Config {
    fn from_args() -> Result<Config, String> {
        let mut quick = false;
        let mut json = false;
        let mut out = "BENCH_9.json".to_string();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => quick = true,
                "--json" => json = true,
                "--out" => match args.next() {
                    Some(path) => out = path,
                    None => return Err("--out requires a path".to_string()),
                },
                other => {
                    return Err(format!(
                        "unknown argument {other} (expected --json / --quick / --out)"
                    ))
                }
            }
        }
        Ok(Config {
            quick,
            json,
            out,
            objects: if quick { 1000 } else { 4000 },
            accounts: 8,
            epochs: if quick { 6 } else { 10 },
            epoch_days: 15,
            events_per_day: if quick { 2400 } else { 6000 },
            batches_per_epoch: 4,
            reps: if quick { 1 } else { 3 },
        })
    }
}

fn schemes() -> Vec<CompressionOption> {
    vec![
        CompressionOption::none(),
        CompressionOption::new("gzip", 3.5, 1.5),
        CompressionOption::new("zstd", 2.4, 0.35),
        CompressionOption::new("lz4", 2.1, 0.15),
        CompressionOption::new("snappy", 1.8, 0.08),
        CompressionOption::new("brotli", 3.9, 2.6),
    ]
}

/// The `serve_bench` fleet: distinct-size objects round-robined into
/// billing accounts, every third with a latency threshold.
fn build_engine(cfg: &Config) -> Result<ServeEngine, Box<dyn Error>> {
    let horizon_days = cfg.epochs * cfg.epoch_days;
    let config = ServeConfig {
        horizon_days,
        horizon_months: f64::from(horizon_days) / 30.0,
        threads: 1,
        decay_per_day: 0.82,
        bucket_base: 3.0,
        bucket_hysteresis: 4.0,
        ..ServeConfig::default()
    };
    let mut engine = ServeEngine::new(TierCatalog::azure_hot_cool_archive(), schemes(), config)?;
    for i in 0..cfg.objects {
        let mut spec = ServeObject::new(
            format!("obj-{i:06}"),
            format!("account-{}", i % cfg.accounts),
            0.5 + (i as f64) * 0.173,
            TierId(i % 2),
        )
        .with_residency_days((i as u32 * 13) % 200);
        if i % 3 == 0 {
            spec = spec.with_latency_threshold(2.0);
        }
        engine.register(spec)?;
    }
    Ok(engine)
}

/// The `serve_bench` skewed drifting trace (same LCG, same mix).
fn build_trace(engine: &ServeEngine, cfg: &Config) -> EventColumns {
    let mut seed = 0x8eed_5e12_u64;
    let mut draw = move || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (seed >> 33) as u32
    };
    let n = engine.len() as u32;
    let days = cfg.epochs * cfg.epoch_days;
    let mut events = Vec::with_capacity(days as usize * cfg.events_per_day);
    for day in 0..days {
        for _ in 0..cfg.events_per_day {
            let r = draw() % n;
            let id = ((u64::from(r) * u64::from(r) / u64::from(n)) as u32 + day) % n;
            let name = engine
                .object_name(id.min(n - 1))
                .unwrap_or_default()
                .to_string();
            let volume = 0.02 + f64::from(draw() % 128) / 100.0;
            if draw() % 10 == 0 {
                events.push(BillingEvent::write(name, day, volume));
            } else {
                events.push(BillingEvent::read(name, day, volume));
            }
        }
    }
    engine.columns_from_events(&events)
}

/// Split `columns` into `n` contiguous batches, preserving trace order.
fn split_batches(columns: &EventColumns, n: usize) -> Vec<EventColumns> {
    let total = columns.len();
    let per = total.div_ceil(n.max(1)).max(1);
    let mut out = Vec::with_capacity(n);
    for b in 0..n.max(1) {
        let lo = (b * per).min(total);
        let hi = ((b + 1) * per).min(total);
        let mut batch = EventColumns::default();
        batch.days.extend_from_slice(&columns.days[lo..hi]);
        batch.periods.extend_from_slice(&columns.periods[lo..hi]);
        batch
            .object_ids
            .extend_from_slice(&columns.object_ids[lo..hi]);
        batch.kinds.extend_from_slice(&columns.kinds[lo..hi]);
        batch.volumes.extend_from_slice(&columns.volumes[lo..hi]);
        out.push(batch);
    }
    out
}

#[derive(Default)]
struct ChaosStats {
    quarantined: u64,
    truncated: u64,
    duplicates: u64,
    crashes: usize,
    degraded_shard_epochs: usize,
    retier_decisions: usize,
}

/// Differential pass for one fault mix: three engines run the identical
/// faulted stream in lockstep — one that crashes and restores on crash
/// epochs, one that never crashes, and a fault-free twin fed the filtered
/// stream — and every recovery equality is asserted (see module docs).
/// Panics (no JSON) on divergence.
fn verify_mix(cfg: &Config, rates: FaultRates, label: &str) -> Result<ChaosStats, Box<dyn Error>> {
    let plan = FaultPlan::new(SEED, rates)?;
    let mut crashed = build_engine(cfg)?; // crash + restore on crash epochs
    let mut steady = build_engine(cfg)?; // same stream, never crashes
    let mut twin = build_engine(cfg)?; // fault-free, filtered stream
    let columns = build_trace(&crashed, cfg);
    let horizon_days = cfg.epochs * cfg.epoch_days;
    let shards = cfg.accounts.min(cfg.objects);

    let mut stats = ChaosStats::default();
    let mut delivered_in_order: Vec<EventColumns> = Vec::new();
    let mut next_seq = 0u64;
    for epoch in 0..cfg.epochs {
        let (lo, hi) = (epoch * cfg.epoch_days, (epoch + 1) * cfg.epoch_days);
        let window = columns.filter_day_range(lo, hi);

        let mut sequenced = Vec::with_capacity(cfg.batches_per_epoch);
        for batch in split_batches(&window, cfg.batches_per_epoch) {
            let seq = next_seq;
            next_seq += 1;
            let corrupted = plan.corrupt_batch(seq, &batch, horizon_days);
            stats.quarantined += corrupted.expected_quarantined;
            stats.truncated += corrupted.expected_truncated;
            twin.ingest(&corrupted.clean);
            delivered_in_order.push(corrupted.delivered.clone());
            sequenced.push((seq, corrupted.delivered));
        }
        for (seq, batch) in plan.deliver(u64::from(epoch), &sequenced) {
            crashed.ingest_sequenced(seq, &batch)?;
            steady.ingest_sequenced(seq, &batch)?;
        }
        crashed.advance(hi);
        steady.advance(hi);
        twin.advance(hi);

        // Cold reference before the re-solve (both price transitions from
        // the same pre-solve placements).
        let cold = reference::full_resolve(&crashed)?;
        let faults = plan.shard_faults(u64::from(epoch), shards);
        let outcome = crashed.reoptimize_with_faults(&faults)?;
        steady.reoptimize_with_faults(&faults)?;
        twin.reoptimize()?;

        stats.degraded_shard_epochs += outcome.degraded_accounts;
        stats.retier_decisions += outcome.retier_decisions;

        // Intake equality: heat must match the fault-free twin exactly.
        for id in 0..crashed.len() as u32 {
            assert_eq!(
                crashed.heat(id).map(f64::to_bits),
                twin.heat(id).map(f64::to_bits),
                "{label}: epoch {epoch} heat diverged from the fault-free twin (object {id})"
            );
        }
        // Degraded-mode serving: healthy shards match the cold reference.
        assert_eq!(outcome.accounts.len(), cold.len(), "{label}: epoch {epoch}");
        for (inc, full) in outcome.accounts.iter().zip(&cold) {
            if inc.stale {
                continue;
            }
            assert_eq!(
                inc.assignment.choices, full.assignment.choices,
                "{label}: epoch {epoch} healthy shard {} diverged from full resolve",
                inc.account
            );
            assert_eq!(
                inc.assignment.objective.to_bits(),
                full.assignment.objective.to_bits(),
                "{label}: epoch {epoch} objective bits diverged for {}",
                inc.account
            );
        }
        // Crash consistency: restore round-trips the snapshot exactly and
        // the run continues on the restored engine.
        if plan.crash_after_epoch(u64::from(epoch)) {
            let snapshot = crashed.checkpoint();
            let restored =
                ServeEngine::restore(TierCatalog::azure_hot_cool_archive(), schemes(), &snapshot)?;
            assert_eq!(
                restored.checkpoint(),
                snapshot,
                "{label}: epoch {epoch} restore did not round-trip its snapshot"
            );
            crashed = restored;
            stats.crashes += 1;
        }
    }
    stats.duplicates = steady.duplicate_batches();

    // Fault-free ≡ recovered: after the full replay the crash-and-restore
    // engine must be byte-identical to the engine that never crashed.
    assert_eq!(
        crashed.checkpoint(),
        steady.checkpoint(),
        "{label}: recovered engine diverged from the never-crashed engine"
    );
    // Quarantine accounting versus the independent intake reference.
    let expected = expected_intake(
        &delivered_in_order,
        horizon_days,
        steady.len() as u32,
        steady.quarantine().capacity(),
    );
    assert_eq!(
        steady.quarantine().entries(),
        expected.records.as_slice(),
        "{label}: quarantine ledger diverged from the reference intake"
    );
    assert_eq!(steady.quarantine().total(), expected.quarantined, "{label}");
    assert_eq!(steady.dropped_events(), expected.dropped, "{label}");
    assert_eq!(steady.events_seen(), expected.events_seen, "{label}");
    Ok(stats)
}

/// One full faulted replay (no verification, crash epochs included),
/// returning the wall-clock seconds of the epoch loop.
fn timed_replay(cfg: &Config, rates: FaultRates) -> Result<f64, Box<dyn Error>> {
    let plan = FaultPlan::new(SEED, rates)?;
    let mut engine = build_engine(cfg)?;
    let columns = build_trace(&engine, cfg);
    let horizon_days = cfg.epochs * cfg.epoch_days;
    let shards = cfg.accounts.min(cfg.objects);

    let t = Instant::now();
    let mut next_seq = 0u64;
    for epoch in 0..cfg.epochs {
        let (lo, hi) = (epoch * cfg.epoch_days, (epoch + 1) * cfg.epoch_days);
        let window = columns.filter_day_range(lo, hi);
        let mut sequenced = Vec::with_capacity(cfg.batches_per_epoch);
        for batch in split_batches(&window, cfg.batches_per_epoch) {
            let seq = next_seq;
            next_seq += 1;
            sequenced.push((seq, plan.corrupt_batch(seq, &batch, horizon_days).delivered));
        }
        for (seq, batch) in plan.deliver(u64::from(epoch), &sequenced) {
            engine.ingest_sequenced(seq, &batch)?;
        }
        engine.advance(hi);
        engine.reoptimize_with_faults(&plan.shard_faults(u64::from(epoch), shards))?;
        if plan.crash_after_epoch(u64::from(epoch)) {
            let snapshot = engine.checkpoint();
            engine =
                ServeEngine::restore(TierCatalog::azure_hot_cool_archive(), schemes(), &snapshot)?;
        }
    }
    Ok(t.elapsed().as_secs_f64())
}

/// Min-of-reps timing of a full replay under `rates`.
fn bench_mix(cfg: &Config, rates: FaultRates) -> Result<f64, Box<dyn Error>> {
    let mut best = timed_replay(cfg, rates)?;
    for _ in 1..cfg.reps {
        best = best.min(timed_replay(cfg, rates)?);
    }
    Ok(best)
}

fn main() -> Result<(), Box<dyn Error>> {
    let cfg = Config::from_args()?;
    println!(
        "chaos_bench: {} objects, {} accounts, {} epochs x {} days, {} events/day, {} batches/epoch{}",
        cfg.objects,
        cfg.accounts,
        cfg.epochs,
        cfg.epoch_days,
        cfg.events_per_day,
        cfg.batches_per_epoch,
        if cfg.quick { " [quick]" } else { "" }
    );

    let light = verify_mix(&cfg, FaultRates::light(), "light")?;
    let heavy = verify_mix(&cfg, FaultRates::heavy(), "heavy")?;
    println!(
        "differential pass: heat == twin, quarantine == reference, healthy shards == full \
         resolve, recovered == never-crashed, on every epoch of both mixes"
    );
    assert!(
        light.quarantined > 0 && heavy.quarantined > light.quarantined,
        "fault mixes did not inject meaningful corruption"
    );
    assert!(
        light.crashes > 0 && heavy.crashes > 0,
        "fault mixes did not exercise crash recovery"
    );

    let clean_s = bench_mix(&cfg, FaultRates::none())?;
    let light_s = bench_mix(&cfg, FaultRates::light())?;
    let heavy_s = bench_mix(&cfg, FaultRates::heavy())?;
    let light_overhead = (light_s / clean_s - 1.0) * 100.0;
    let heavy_overhead = (heavy_s / clean_s - 1.0) * 100.0;
    println!("clean replay   {clean_s:>9.4} s  (the BENCH_8 steady loop behind sequenced intake)");
    println!(
        "light faults   {light_s:>9.4} s  ({light_overhead:>+7.1}% — {} quarantined, {} dup \
         batches, {} crashes, {} degraded shard-epochs)",
        light.quarantined, light.duplicates, light.crashes, light.degraded_shard_epochs
    );
    println!(
        "heavy faults   {heavy_s:>9.4} s  ({heavy_overhead:>+7.1}% — {} quarantined, {} dup \
         batches, {} crashes, {} degraded shard-epochs)",
        heavy.quarantined, heavy.duplicates, heavy.crashes, heavy.degraded_shard_epochs
    );

    if cfg.json {
        let json = format!(
            "{{\n  \"issue\": 9,\n  \"quick\": {},\n  \"config\": {{\n    \"objects\": {},\n    \"accounts\": {},\n    \"epochs\": {},\n    \"epoch_days\": {},\n    \"events_per_day\": {},\n    \"batches_per_epoch\": {},\n    \"reps\": {}\n  }},\n  \"chaos\": {{\n    \"clean_replay_s\": {:.6},\n    \"light_replay_s\": {:.6},\n    \"heavy_replay_s\": {:.6},\n    \"light_overhead_pct\": {:.1},\n    \"heavy_overhead_pct\": {:.1},\n    \"light_quarantined_events\": {},\n    \"light_truncated_events\": {},\n    \"light_duplicate_batches\": {},\n    \"light_crashes\": {},\n    \"light_degraded_shard_epochs\": {},\n    \"heavy_quarantined_events\": {},\n    \"heavy_truncated_events\": {},\n    \"heavy_duplicate_batches\": {},\n    \"heavy_crashes\": {},\n    \"heavy_degraded_shard_epochs\": {},\n    \"note\": \"overhead = faulted replay wall-clock over the fault-free replay of the same trace (sequenced intake + validation + quarantine + retry/backoff + checkpoint/restore on crash epochs); before timing, this process asserted for both mixes that heat is bit-identical to a fault-free twin, the quarantine ledger equals the independent expected_intake reference, healthy shards match reference::full_resolve bit-for-bit, every restore round-trips its snapshot, and the crash-and-restore engine's final checkpoint is byte-identical to a never-crashed engine's\"\n  }}\n}}\n",
            cfg.quick,
            cfg.objects,
            cfg.accounts,
            cfg.epochs,
            cfg.epoch_days,
            cfg.events_per_day,
            cfg.batches_per_epoch,
            cfg.reps,
            clean_s,
            light_s,
            heavy_s,
            light_overhead,
            heavy_overhead,
            light.quarantined,
            light.truncated,
            light.duplicates,
            light.crashes,
            light.degraded_shard_epochs,
            heavy.quarantined,
            heavy.truncated,
            heavy.duplicates,
            heavy.crashes,
            heavy.degraded_shard_epochs,
        );
        std::fs::write(&cfg.out, &json)?;
        println!("wrote {}", cfg.out);
    }
    Ok(())
}
