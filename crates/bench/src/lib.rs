//! # scope-bench
//!
//! Benchmark harness for the SCOPe reproduction.
//!
//! Two kinds of targets live in this crate:
//!
//! * **Experiment binaries** (`src/bin/*.rs`, run with
//!   `cargo run --release -p scope-bench --bin <name>`): each regenerates
//!   one table or figure of the paper and prints the corresponding rows /
//!   series. The mapping from paper table/figure to binary is listed in
//!   `DESIGN.md` and `EXPERIMENTS.md`.
//! * **Criterion benches** (`benches/*.rs`, run with `cargo bench`): timing
//!   benchmarks backing the paper's performance claims (the optimizer runs
//!   in tens of milliseconds, scales linearly in the number of partitions,
//!   G-PART handles hundreds of query families, the codecs process MBs in
//!   milliseconds).
//!
//! This library holds small shared formatting helpers plus the billing
//! benchmark fixture shared by the `billing_bench` criterion bench and the
//! `solver_bench` bin (one definition, so the two always measure the same
//! workload).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scope_cloudsim::{
    billing::Placement, BillingEvent, BillingSimulator, ObjectSpec, PlacementSchedule, TierCatalog,
    TierId, DAYS_PER_MONTH,
};

/// Horizon of the billing benchmark fixture, in days.
pub const BILLING_HORIZON_DAYS: u32 = 6 * DAYS_PER_MONTH;

/// Object names of the billing fixture, `obj-0 .. obj-{n-1}`.
pub fn billing_object_names(n_objects: usize) -> Vec<String> {
    (0..n_objects).map(|i| format!("obj-{i}")).collect()
}

/// The day-granular billing benchmark fixture: `n_objects` objects on
/// lifecycle schedules (hot → cooler at a random period boundary) and a
/// day-stamped trace of `n_events` accesses, generated from a fixed seed so
/// every bench target replays the identical workload.
pub fn billing_fixture(n_objects: usize, n_events: usize) -> (BillingSimulator, Vec<BillingEvent>) {
    let catalog = TierCatalog::azure_adls_gen2();
    let n_tiers = catalog.len();
    let mut sim = BillingSimulator::new(catalog);
    let mut rng = SmallRng::seed_from_u64(42);
    for i in 0..n_objects {
        let size_gb = rng.gen_range(1.0..500.0);
        let start = TierId(rng.gen_range(0..n_tiers));
        let later = TierId(rng.gen_range(0..n_tiers));
        let mut schedule = PlacementSchedule::constant(Placement::uncompressed(start));
        if rng.gen_range(0..4) > 0 {
            let boundary = rng.gen_range(1..BILLING_HORIZON_DAYS / DAYS_PER_MONTH) * DAYS_PER_MONTH;
            schedule = schedule.with_transition(boundary, Placement::uncompressed(later));
        }
        sim.place_scheduled(
            ObjectSpec::new(format!("obj-{i}"), size_gb)
                .on_tier(start)
                .with_residency_days(rng.gen_range(0..120)),
            schedule,
        )
        .expect("valid placement");
    }
    let events = (0..n_events)
        .map(|_| {
            let object = format!("obj-{}", rng.gen_range(0..n_objects));
            let day = rng.gen_range(0..BILLING_HORIZON_DAYS);
            let volume = rng.gen_range(0.01..50.0);
            if rng.gen_range(0..10) == 0 {
                BillingEvent::write(object, day, volume)
            } else {
                BillingEvent::read(object, day, volume)
            }
        })
        .collect();
    (sim, events)
}

/// Format a floating-point cell with a fixed width for the printed tables.
pub fn cell(value: f64) -> String {
    if value.abs() >= 1000.0 {
        format!("{value:>10.1}")
    } else if value.abs() >= 1.0 {
        format!("{value:>10.2}")
    } else {
        format!("{value:>10.4}")
    }
}

/// Print a titled separator so the binary outputs are easy to scan.
pub fn heading(title: &str) {
    println!("\n==== {title} ====");
}

/// Print one row of a pipeline-policy table (Tables IX–XI style).
pub fn print_policy_row(outcome: &scope_core::PolicyOutcome) {
    println!(
        "{:<42} {:>10.1} {:>9.2} {:>9.1} {:>10.1} {:>9.4} {:>10.3}  {:?}",
        outcome.policy,
        outcome.storage_cost,
        outcome.decompression_cost,
        outcome.read_cost,
        outcome.total_cost,
        outcome.read_latency_ttfb,
        outcome.expected_decompression_ms,
        outcome.tiering_scheme
    );
}

/// Print the header matching [`print_policy_row`].
pub fn print_policy_header() {
    println!(
        "{:<42} {:>10} {:>9} {:>9} {:>10} {:>9} {:>10}  Tiering",
        "Policy", "Storage", "Decomp", "Read", "Total", "TTFB(s)", "Decomp(ms)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_widths_adapt_to_magnitude() {
        assert!(cell(12345.6).contains("12345.6"));
        assert!(cell(7.25159).contains("7.25"));
        assert!(cell(0.01234).contains("0.0123"));
        assert_eq!(cell(1.0).len(), 10);
    }
}
