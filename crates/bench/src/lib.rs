//! # scope-bench
//!
//! Benchmark harness for the SCOPe reproduction.
//!
//! Two kinds of targets live in this crate:
//!
//! * **Experiment binaries** (`src/bin/*.rs`, run with
//!   `cargo run --release -p scope-bench --bin <name>`): each regenerates
//!   one table or figure of the paper and prints the corresponding rows /
//!   series. The mapping from paper table/figure to binary is listed in
//!   `DESIGN.md` and `EXPERIMENTS.md`.
//! * **Criterion benches** (`benches/*.rs`, run with `cargo bench`): timing
//!   benchmarks backing the paper's performance claims (the optimizer runs
//!   in tens of milliseconds, scales linearly in the number of partitions,
//!   G-PART handles hundreds of query families, the codecs process MBs in
//!   milliseconds).
//!
//! This library only holds small shared formatting helpers.

/// Format a floating-point cell with a fixed width for the printed tables.
pub fn cell(value: f64) -> String {
    if value.abs() >= 1000.0 {
        format!("{value:>10.1}")
    } else if value.abs() >= 1.0 {
        format!("{value:>10.2}")
    } else {
        format!("{value:>10.4}")
    }
}

/// Print a titled separator so the binary outputs are easy to scan.
pub fn heading(title: &str) {
    println!("\n==== {title} ====");
}

/// Print one row of a pipeline-policy table (Tables IX–XI style).
pub fn print_policy_row(outcome: &scope_core::PolicyOutcome) {
    println!(
        "{:<42} {:>10.1} {:>9.2} {:>9.1} {:>10.1} {:>9.4} {:>10.3}  {:?}",
        outcome.policy,
        outcome.storage_cost,
        outcome.decompression_cost,
        outcome.read_cost,
        outcome.total_cost,
        outcome.read_latency_ttfb,
        outcome.expected_decompression_ms,
        outcome.tiering_scheme
    );
}

/// Print the header matching [`print_policy_row`].
pub fn print_policy_header() {
    println!(
        "{:<42} {:>10} {:>9} {:>9} {:>10} {:>9} {:>10}  Tiering",
        "Policy", "Storage", "Decomp", "Read", "Total", "TTFB(s)", "Decomp(ms)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_widths_adapt_to_magnitude() {
        assert!(cell(12345.6).contains("12345.6"));
        assert!(cell(7.25159).contains("7.25"));
        assert!(cell(0.01234).contains("0.0123"));
        assert_eq!(cell(1.0).len(), 10);
    }
}
