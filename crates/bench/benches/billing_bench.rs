//! Criterion benchmark for the day-granular billing engine: replaying a
//! 100k-event day-stamped trace against ~1k scheduled objects, so
//! billing-engine throughput shows up in the perf trajectory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scope_bench::{billing_fixture, billing_object_names, BILLING_HORIZON_DAYS as HORIZON_DAYS};

const N_OBJECTS: usize = 1000;

fn bench_billing_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("billing_run_days");
    group.sample_size(10);
    for n_events in [10_000usize, 100_000] {
        let (sim, events) = billing_fixture(N_OBJECTS, n_events);
        group.throughput(Throughput::Elements(n_events as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(n_events),
            &(sim, events),
            |b, (sim, events)| b.iter(|| sim.run_days(HORIZON_DAYS, events).expect("engine runs")),
        );
    }
    group.finish();
}

/// PR-4 before/after on the per-event accounting alone: the pre-interning
/// engine cloned each event's object name into a `HashMap<String, f64>`
/// entry; the interned engine resolves a dense id (no allocation) and
/// bumps a flat `Vec` slot. Isolated here so the allocation cost stays
/// visible in the perf trajectory even as the rest of the engine evolves.
fn bench_event_accounting(c: &mut Criterion) {
    use std::collections::HashMap;
    let (_, events) = billing_fixture(N_OBJECTS, 100_000);
    let names = billing_object_names(N_OBJECTS);
    let name_ids: HashMap<&str, u32> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i as u32))
        .collect();
    let mut group = c.benchmark_group("billing_event_accounting");
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_function("before_clone_per_event", |b| {
        b.iter(|| {
            let mut per_object: HashMap<String, f64> = HashMap::with_capacity(names.len());
            for ev in &events {
                *per_object.entry(ev.object.clone()).or_insert(0.0) += ev.volume_gb;
            }
            per_object
        })
    });
    group.bench_function("after_interned_ids", |b| {
        b.iter(|| {
            let mut totals = vec![0.0f64; names.len()];
            for ev in &events {
                if let Some(&id) = name_ids.get(ev.object.as_str()) {
                    totals[id as usize] += ev.volume_gb;
                }
            }
            totals
        })
    });
    group.finish();
}

criterion_group!(benches, bench_billing_engine, bench_event_accounting);
criterion_main!(benches);
