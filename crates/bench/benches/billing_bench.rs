//! Criterion benchmark for the day-granular billing engine: replaying a
//! 100k-event day-stamped trace against ~1k scheduled objects, so
//! billing-engine throughput shows up in the perf trajectory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scope_cloudsim::{
    billing::Placement, BillingEvent, BillingSimulator, ObjectSpec, PlacementSchedule, TierCatalog,
    DAYS_PER_MONTH,
};

const HORIZON_DAYS: u32 = 6 * DAYS_PER_MONTH;
const N_OBJECTS: usize = 1000;

/// A simulator with ~1k objects on lifecycle schedules (hot → cooler at a
/// random period boundary) and a day-stamped trace of `n_events` accesses.
fn scheduled_fixture(n_events: usize) -> (BillingSimulator, Vec<BillingEvent>) {
    let catalog = TierCatalog::azure_adls_gen2();
    let n_tiers = catalog.len();
    let mut sim = BillingSimulator::new(catalog);
    let mut rng = SmallRng::seed_from_u64(42);
    for i in 0..N_OBJECTS {
        let size_gb = rng.gen_range(1.0..500.0);
        let start = scope_cloudsim::TierId(rng.gen_range(0..n_tiers));
        let later = scope_cloudsim::TierId(rng.gen_range(0..n_tiers));
        let mut schedule = PlacementSchedule::constant(Placement::uncompressed(start));
        if rng.gen_range(0..4) > 0 {
            let boundary = rng.gen_range(1..HORIZON_DAYS / DAYS_PER_MONTH) * DAYS_PER_MONTH;
            schedule = schedule.with_transition(boundary, Placement::uncompressed(later));
        }
        sim.place_scheduled(
            ObjectSpec::new(format!("obj-{i}"), size_gb)
                .on_tier(start)
                .with_residency_days(rng.gen_range(0..120)),
            schedule,
        )
        .expect("valid placement");
    }
    let events = (0..n_events)
        .map(|_| {
            let object = format!("obj-{}", rng.gen_range(0..N_OBJECTS));
            let day = rng.gen_range(0..HORIZON_DAYS);
            let volume = rng.gen_range(0.01..50.0);
            if rng.gen_range(0..10) == 0 {
                BillingEvent::write(object, day, volume)
            } else {
                BillingEvent::read(object, day, volume)
            }
        })
        .collect();
    (sim, events)
}

fn bench_billing_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("billing_run_days");
    group.sample_size(10);
    for n_events in [10_000usize, 100_000] {
        let (sim, events) = scheduled_fixture(n_events);
        group.throughput(Throughput::Elements(n_events as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(n_events),
            &(sim, events),
            |b, (sim, events)| b.iter(|| sim.run_days(HORIZON_DAYS, events).expect("engine runs")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_billing_engine);
criterion_main!(benches);
