//! Criterion benchmarks backing the paper's optimizer timing claims: the
//! greedy OPTASSIGN is linear in the number of partitions ("the
//! optimization took 2.53 s on 463 datasets"; "about 47.4 ms on average for
//! one set of hyperparameters" on the pipeline instances) and the exact
//! branch-and-bound stays practical on capacity-constrained instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scope_cloudsim::{ProviderCatalog, TierCatalog};
use scope_optassign::reference::solve_greedy_reference;
use scope_optassign::{
    solve_branch_and_bound, solve_greedy, CompressionOption, CostTable, OptAssignProblem,
    PartitionSpec,
};

fn problem(n: usize, with_capacity: bool) -> OptAssignProblem {
    let mut catalog = TierCatalog::azure_adls_gen2();
    if with_capacity {
        catalog.set_capacity("Premium", n as f64 * 10.0).unwrap();
        catalog.set_capacity("Hot", n as f64 * 30.0).unwrap();
    }
    let partitions: Vec<PartitionSpec> = (0..n)
        .map(|i| {
            PartitionSpec::new(i, format!("p{i}"), 1.0 + (i % 97) as f64, (i % 31) as f64)
                .with_compression_option(CompressionOption::new("gzip", 3.5, 4.0))
                .with_compression_option(CompressionOption::new("snappy", 1.8, 0.4))
        })
        .collect();
    OptAssignProblem::new(catalog, partitions, 6.0)
}

fn bench_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("optassign_greedy");
    for &n in &[100usize, 463, 1000] {
        let p = problem(n, false);
        group.bench_with_input(BenchmarkId::from_parameter(n), &p, |b, p| {
            b.iter(|| solve_greedy(p).unwrap())
        });
    }
    group.finish();
}

fn bench_branch_and_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("optassign_branch_and_bound");
    group.sample_size(10);
    for &n in &[20usize, 60] {
        let p = problem(n, true);
        group.bench_with_input(BenchmarkId::from_parameter(n), &p, |b, p| {
            b.iter(|| solve_branch_and_bound(p, 200_000).unwrap())
        });
    }
    group.finish();
}

/// The 463-dataset paper-scale instance on the merged 3-provider catalog:
/// cost-table construction, the table-driven greedy, and the pre-table
/// model-driven reference (one catalog + topology clone per evaluation) —
/// the speedup the PR-4 cost-table engine pins in `BENCH_4.json`.
fn bench_cost_table_vs_model(c: &mut Criterion) {
    let providers = ProviderCatalog::azure_s3_gcs();
    let partitions: Vec<PartitionSpec> = (0..463)
        .map(|i| {
            PartitionSpec::new(i, format!("p{i}"), 1.0 + (i % 97) as f64, (i % 31) as f64)
                .with_compression_option(CompressionOption::new("gzip", 3.5, 4.0))
                .with_compression_option(CompressionOption::new("snappy", 1.8, 0.4))
        })
        .collect();
    let p = OptAssignProblem::multi_provider(&providers, partitions, 6.0);
    let mut group = c.benchmark_group("optassign_cost_table");
    group.bench_function("build_table_463x12x3", |b| b.iter(|| CostTable::build(&p)));
    group.bench_function("greedy_table_driven", |b| {
        b.iter(|| solve_greedy(&p).unwrap())
    });
    group.bench_function("greedy_model_driven_reference", |b| {
        b.iter(|| solve_greedy_reference(&p).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_greedy,
    bench_branch_and_bound,
    bench_cost_table_vs_model
);
criterion_main!(benches);
