//! Criterion benchmarks for DATAPART: G-PART on growing numbers of query
//! families (the heap-based merging is O(m² log m)) and the ordered-case DP.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scope_datapart::{
    gpart_merge, solve_ordered_exact, FileCatalog, MergeConfig, OrderedPartition, Partition,
};
use scope_workload::{QueryWorkload, QueryWorkloadOptions};

fn layout() -> Vec<(String, usize)> {
    vec![
        ("lineitem".to_string(), 60),
        ("orders".to_string(), 20),
        ("customer".to_string(), 6),
        ("part".to_string(), 6),
        ("supplier".to_string(), 2),
        ("partsupp".to_string(), 10),
        ("nation".to_string(), 1),
        ("region".to_string(), 1),
    ]
}

fn bench_gpart(c: &mut Criterion) {
    let mut group = c.benchmark_group("gpart_merge");
    group.sample_size(20);
    let mut catalog = FileCatalog::new();
    for (table, files) in layout() {
        for i in 0..files {
            catalog.insert(scope_workload::FileRef::new(table.clone(), i), 1.0);
        }
    }
    for &qpt in &[5usize, 20, 40] {
        let workload = QueryWorkload::generate_tpch(
            &layout(),
            &QueryWorkloadOptions {
                queries_per_template: qpt,
                ..Default::default()
            },
        )
        .unwrap();
        let initial = Partition::from_families(&workload.families);
        group.bench_with_input(
            BenchmarkId::new("families", initial.len()),
            &initial,
            |b, initial| {
                b.iter(|| gpart_merge(initial, &catalog, &MergeConfig::default()).unwrap())
            },
        );
    }
    group.finish();
}

fn bench_ordered_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("ordered_dp");
    group.sample_size(10);
    for &n in &[20usize, 60] {
        let partitions: Vec<OrderedPartition> = (0..n)
            .map(|i| {
                OrderedPartition::new(i as f64 * 3.0, i as f64 * 3.0 + 8.0, 1.0 + (i % 4) as f64)
            })
            .collect();
        let min_cost: f64 = partitions.iter().map(|p| p.span() * p.frequency).sum();
        group.bench_with_input(BenchmarkId::from_parameter(n), &partitions, |b, parts| {
            b.iter(|| solve_ordered_exact(parts, min_cost * 2.0, 1.0).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gpart, bench_ordered_dp);
criterion_main!(benches);
