//! Criterion benchmarks over the merged multi-provider tier space: the
//! greedy solver on the 12-tier azure/s3/gcs catalog and the egress-aware
//! schedule DP, so the cost of tripling the decision space shows up in the
//! perf trajectory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scope_cloudsim::{CostModel, ProviderCatalog};
use scope_optassign::{
    plan_tier_schedule_with_model, solve_greedy, OptAssignProblem, PartitionSpec, PeriodAccess,
    ScheduleOptions,
};

/// Random partitions homed on azure:Hot with mixed heat and occasional
/// sub-second latency SLAs (the enterprise-account shape).
fn partitions(n: usize, providers: &ProviderCatalog) -> Vec<PartitionSpec> {
    let home = providers.merged_tier_id("azure", "Hot").expect("home tier");
    let mut rng = SmallRng::seed_from_u64(99);
    (0..n)
        .map(|i| {
            let mut p = PartitionSpec::new(
                i,
                format!("p{i}"),
                rng.gen_range(1.0..2000.0),
                if rng.gen_range(0..3) == 0 {
                    0.0
                } else {
                    rng.gen_range(0.0..200.0)
                },
            )
            .with_current_tier(home);
            if rng.gen_range(0..10) == 0 {
                p = p.with_latency_threshold(1.0);
            }
            p
        })
        .collect()
}

fn bench_merged_greedy(c: &mut Criterion) {
    let providers = ProviderCatalog::azure_s3_gcs();
    let mut group = c.benchmark_group("multicloud_greedy");
    group.sample_size(10);
    for n in [1_000usize, 10_000] {
        let problem = OptAssignProblem::multi_provider(&providers, partitions(n, &providers), 6.0);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &problem, |b, problem| {
            b.iter(|| solve_greedy(problem).expect("merged instance solves"))
        });
    }
    group.finish();
}

fn bench_merged_schedule_dp(c: &mut Criterion) {
    let providers = ProviderCatalog::azure_s3_gcs();
    let model = CostModel::with_topology(providers.merged_catalog(), providers.topology());
    let home = providers.merged_tier_id("azure", "Hot").expect("home tier");
    let mut rng = SmallRng::seed_from_u64(7);
    let mut group = c.benchmark_group("multicloud_schedule_dp");
    group.sample_size(10);
    for n_periods in [6usize, 12] {
        let periods: Vec<PeriodAccess> = (0..n_periods)
            .map(|p| PeriodAccess::new(rng.gen_range(0.0..5_000.0) / (1 + p) as f64, 0.0))
            .collect();
        let options = ScheduleOptions {
            current_tier: Some(home),
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(n_periods),
            &periods,
            |b, periods| {
                b.iter(|| {
                    plan_tier_schedule_with_model(&model, 500.0, periods, &options, None)
                        .expect("merged DP plans")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_merged_greedy, bench_merged_schedule_dp);
criterion_main!(benches);
