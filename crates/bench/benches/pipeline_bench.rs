//! Criterion benchmark for the full SCOPe pipeline: one `run_policy` call
//! (partitioning + compression blending + tier assignment), matching the
//! paper's "the optimization takes about 47.4 ms on average for one set of
//! hyperparameters" claim, plus the hyper-parameter sweep that the paper
//! reports at ~18.9 s (scaled down here).

use criterion::{criterion_group, criterion_main, Criterion};
use scope_core::{
    run_policy, tpch_scenario, tradeoff_sweep, Policy, PredictorVariant, ScenarioOptions,
};

fn bench_pipeline(c: &mut Criterion) {
    let inputs = tpch_scenario(&ScenarioOptions {
        nominal_total_gb: 100.0,
        generator_scale: 0.1,
        queries_per_template: 10,
        total_files: 80,
        ..Default::default()
    })
    .expect("scenario builds");

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("scope_no_capacity", |b| {
        let policy = Policy::scope_no_capacity();
        b.iter(|| run_policy(&inputs, &policy).unwrap())
    });
    group.bench_function("scope_total_cost_focused", |b| {
        let policy = Policy::scope_total_cost_focused();
        b.iter(|| run_policy(&inputs, &policy).unwrap())
    });
    group.bench_function("hyperparameter_sweep", |b| {
        let alphas = [0.0, 0.3, 1.0, 3.0];
        b.iter(|| tradeoff_sweep(&inputs, PredictorVariant::GroundTruth, &alphas, 1.0).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
