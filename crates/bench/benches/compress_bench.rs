//! Criterion benchmarks for the compression codecs: compression and
//! decompression throughput on tabular bytes, which back the decompression
//! seconds-per-GB numbers used throughout the cost model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scope_compress::{Codec, GzipishCodec, Lz4ishCodec, RleCodec, SnappyishCodec};
use scope_table::{format, DataLayout, TpchGenerator, TpchOptions, TpchTable};

fn tabular_bytes() -> Vec<u8> {
    let gen = TpchGenerator::new(TpchOptions {
        scale_factor: 0.2,
        ..Default::default()
    })
    .unwrap();
    let table = gen.generate(TpchTable::Orders);
    format::serialize(&table, DataLayout::Csv).to_vec()
}

fn bench_codecs(c: &mut Criterion) {
    let data = tabular_bytes();
    let codecs: Vec<(&str, Box<dyn Codec>)> = vec![
        ("gzip", Box::new(GzipishCodec::default())),
        ("lz4", Box::new(Lz4ishCodec::default())),
        ("snappy", Box::new(SnappyishCodec::default())),
        ("rle", Box::new(RleCodec)),
    ];

    let mut group = c.benchmark_group("compress");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(data.len() as u64));
    for (name, codec) in &codecs {
        group.bench_with_input(BenchmarkId::from_parameter(name), codec, |b, codec| {
            b.iter(|| codec.compress(&data))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("decompress");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(data.len() as u64));
    for (name, codec) in &codecs {
        let compressed = codec.compress(&data);
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &compressed,
            |b, compressed| b.iter(|| codec.decompress(compressed).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_codecs);
criterion_main!(benches);
