//! Dataset catalog: the metadata-level view of a data lake.
//!
//! Enterprise Data I in the paper is "hundreds of datasets ranging from TB
//! to PB in size" for which only metadata and historical access logs are
//! available. [`DatasetCatalog`] is that metadata view: per-dataset size,
//! creation month, latency requirement and access pattern. Sizes are plain
//! numbers (GB) — costs are linear in bytes, so the petabyte scale of the
//! paper is reached by the size values, not by materialising data.

use crate::patterns::AccessPattern;
use serde::{Deserialize, Serialize};

/// Metadata for one dataset in the lake.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetMeta {
    /// Stable integer id (index in the catalog).
    pub id: usize,
    /// Human-readable name.
    pub name: String,
    /// Size in GB.
    pub size_gb: f64,
    /// Month (0-based, relative to the start of the simulated history) in
    /// which the dataset was created / ingested.
    pub created_month: u32,
    /// Latency SLA threshold in seconds for accesses to this dataset
    /// (infinity = best effort).
    pub latency_threshold_seconds: f64,
    /// The dataset's temporal access pattern.
    pub pattern: AccessPattern,
}

impl DatasetMeta {
    /// Age of the dataset (in months) at a given absolute month; `None` if
    /// the dataset does not exist yet.
    pub fn age_at(&self, month: u32) -> Option<u32> {
        month.checked_sub(self.created_month)
    }
}

/// An ordered collection of dataset metadata.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DatasetCatalog {
    datasets: Vec<DatasetMeta>,
}

impl DatasetCatalog {
    /// Build a catalog from dataset metadata, re-assigning ids to match
    /// positions.
    pub fn new(mut datasets: Vec<DatasetMeta>) -> Self {
        for (i, d) in datasets.iter_mut().enumerate() {
            d.id = i;
        }
        DatasetCatalog { datasets }
    }

    /// Number of datasets.
    pub fn len(&self) -> usize {
        self.datasets.len()
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.datasets.is_empty()
    }

    /// Iterate over datasets.
    pub fn iter(&self) -> impl Iterator<Item = &DatasetMeta> {
        self.datasets.iter()
    }

    /// Dataset by id.
    pub fn get(&self, id: usize) -> Option<&DatasetMeta> {
        self.datasets.get(id)
    }

    /// Total size of the catalog in GB.
    pub fn total_size_gb(&self) -> f64 {
        self.datasets.iter().map(|d| d.size_gb).sum()
    }

    /// Total size in PB (the unit of Table II).
    pub fn total_size_pb(&self) -> f64 {
        self.total_size_gb() / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(size: f64, created: u32) -> DatasetMeta {
        DatasetMeta {
            id: 0,
            name: "d".into(),
            size_gb: size,
            created_month: created,
            latency_threshold_seconds: f64::INFINITY,
            pattern: AccessPattern::Constant { rate: 1.0 },
        }
    }

    #[test]
    fn catalog_reassigns_ids_and_sums_sizes() {
        let c = DatasetCatalog::new(vec![meta(100.0, 0), meta(200.0, 1), meta(300.0, 2)]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(1).unwrap().id, 1);
        assert_eq!(c.total_size_gb(), 600.0);
        assert!((c.total_size_pb() - 0.0006).abs() < 1e-12);
        assert!(c.get(99).is_none());
        assert!(!c.is_empty());
    }

    #[test]
    fn age_at_handles_not_yet_created() {
        let d = meta(1.0, 5);
        assert_eq!(d.age_at(5), Some(0));
        assert_eq!(d.age_at(8), Some(3));
        assert_eq!(d.age_at(3), None);
    }
}
