//! Enterprise Data Lake workload generator.
//!
//! Generates a dataset catalog plus a monthly access-log series whose
//! statistics reproduce the published enterprise characteristics:
//!
//! * **Dataset-level skew** (Fig 1a): a small fraction of datasets receive
//!   most of the read accesses — the per-dataset access *volume scale* is
//!   drawn from a Zipf distribution over the dataset rank.
//! * **Recency** (Fig 1b): access frequency falls with dataset age — most
//!   datasets get a `Decreasing` pattern and creation months are spread
//!   over the history window.
//! * **Pattern mix** (Fig 2): some datasets are constant readers, a class of
//!   datasets peaks periodically (seasonality / year-on-year analysis),
//!   marketing-style datasets see a one-shot activation spike, and a long
//!   tail is dormant after ingestion.
//! * **Size skew**: dataset sizes span ~4 orders of magnitude (GB to
//!   hundreds of TB) drawn from a log-uniform distribution, so a catalog of
//!   a few hundred datasets totals 0.05–0.6 PB as in Table II.

use crate::access_log::{AccessSeries, MonthlyAccess};
use crate::dataset::{DatasetCatalog, DatasetMeta};
use crate::daylog::{DailyAccess, DailyAccessLog, DAYS_PER_MONTH};
use crate::error::WorkloadError;
use crate::patterns::AccessPattern;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scope_table::Zipf;

/// Options for the enterprise workload generator.
#[derive(Debug, Clone, PartialEq)]
pub struct EnterpriseOptions {
    /// Number of datasets in the account (the paper's storage account has
    /// 760 datasets / ~700 TB).
    pub n_datasets: usize,
    /// Number of months of history to generate (the tier predictor trains
    /// on this history).
    pub history_months: u32,
    /// Number of future months to generate (the projection horizon the
    /// optimizer plans for and the billing simulator replays).
    pub future_months: u32,
    /// Zipf exponent of the per-dataset access-volume skew (Fig 1a).
    pub access_skew: f64,
    /// Smallest dataset size in GB.
    pub min_size_gb: f64,
    /// Largest dataset size in GB.
    pub max_size_gb: f64,
    /// Fraction of reads that scan the full dataset (the rest scan a
    /// uniformly random fraction).
    pub full_scan_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EnterpriseOptions {
    fn default() -> Self {
        EnterpriseOptions {
            n_datasets: 760,
            history_months: 12,
            future_months: 6,
            access_skew: 1.2,
            min_size_gb: 1.0,
            max_size_gb: 100_000.0, // 100 TB
            full_scan_fraction: 0.3,
            seed: 17,
        }
    }
}

impl EnterpriseOptions {
    /// Validate the options.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        if self.n_datasets == 0 {
            return Err(WorkloadError::InvalidOption(
                "n_datasets must be > 0".to_string(),
            ));
        }
        if self.history_months + self.future_months == 0 {
            return Err(WorkloadError::InvalidOption(
                "at least one month must be generated".to_string(),
            ));
        }
        if !(self.min_size_gb > 0.0 && self.max_size_gb >= self.min_size_gb) {
            return Err(WorkloadError::InvalidOption(format!(
                "invalid size range [{}, {}]",
                self.min_size_gb, self.max_size_gb
            )));
        }
        if !(0.0..=1.0).contains(&self.full_scan_fraction) {
            return Err(WorkloadError::InvalidOption(
                "full_scan_fraction must be in [0, 1]".to_string(),
            ));
        }
        Ok(())
    }

    /// Total number of generated months (history + future).
    pub fn total_months(&self) -> u32 {
        self.history_months + self.future_months
    }
}

/// A generated enterprise workload: catalog + day-resolution access log
/// (+ its monthly aggregation).
#[derive(Debug, Clone)]
pub struct EnterpriseWorkload {
    /// The dataset catalog.
    pub catalog: DatasetCatalog,
    /// Monthly access counts over history + future months. This is the
    /// aggregation [`EnterpriseWorkload::daily`] rolls up to (kept
    /// materialized because the tier predictor's features are monthly).
    pub series: AccessSeries,
    /// Day-resolution access log: each month's sampled accesses spread over
    /// the days of that billing period. The source of truth for
    /// day-granular billing; `series` is its monthly view.
    pub daily: DailyAccessLog,
    /// The options the workload was generated with.
    pub options: EnterpriseOptions,
}

impl EnterpriseWorkload {
    /// Generate a workload.
    pub fn generate(options: EnterpriseOptions) -> Result<Self, WorkloadError> {
        options.validate()?;
        let mut rng = SmallRng::seed_from_u64(options.seed);
        let zipf = Zipf::new(options.n_datasets, options.access_skew);
        let total_months = options.total_months();

        // Per-dataset access scale: datasets are ranked by a random
        // permutation and the Zipf pmf of the rank fixes their share of the
        // lake's total read volume.
        let total_reads_budget = options.n_datasets as f64 * 4000.0;
        let mut ranks: Vec<usize> = (0..options.n_datasets).collect();
        for i in (1..ranks.len()).rev() {
            let j = rng.gen_range(0..=i);
            ranks.swap(i, j);
        }

        // The long tail of the ranking receives no reads at all: Fig 1a shows
        // the access share collapsing to ~0 beyond the first ~half of the
        // datasets, and Fig 1b shows most data is never read again months
        // after creation. Only the `active_ranks` head of the zipf ranking
        // carries read volume; the tail is dormant cold data (the bytes the
        // Cool/Archive tiers monetize in Table II).
        let active_ranks = (options.n_datasets as f64 * 0.55).ceil() as usize;

        let mut datasets = Vec::with_capacity(options.n_datasets);
        for (idx, &rank) in ranks.iter().enumerate() {
            // Total expected reads for this dataset over the horizon.
            let volume = if rank < active_ranks {
                total_reads_budget * zipf.pmf(rank)
            } else {
                0.0
            };
            // Log-uniform size, with the upper bound shrinking as the read
            // volume grows: heavily-read datasets are curated analytics
            // tables (GBs), while the bulk of an account's bytes sits in
            // rarely-read raw data (up to max_size_gb). This size/heat
            // anticorrelation is what makes storage dominate account cost
            // and produces the large Table II benefits and the Fig 3 shape.
            let size_cap_gb = (options.max_size_gb / (1.0 + volume / 5.0)).max(options.min_size_gb);
            let log_min = options.min_size_gb.ln();
            let log_max = size_cap_gb.ln();
            let size_gb = (log_min + rng.gen::<f64>() * (log_max - log_min)).exp();
            // Creation month spread over the history window (recency).
            let created_month = rng.gen_range(0..options.history_months.max(1));
            // The zero-volume tail (the ~45% of ranks past `active_ranks`)
            // is always dormant. Active datasets mix 45% decreasing,
            // 20% constant, 15% periodic, 10% spike, 10% dormant.
            let roll: f64 = rng.gen();
            let pattern = if volume < 0.5 || roll < 0.10 {
                AccessPattern::Dormant
            } else if roll < 0.55 {
                AccessPattern::Decreasing {
                    initial: volume * 0.4,
                    decay: rng.gen_range(0.5..0.9),
                }
            } else if roll < 0.75 {
                AccessPattern::Constant {
                    rate: (volume / total_months as f64).max(0.2),
                }
            } else if roll < 0.90 {
                AccessPattern::Periodic {
                    base: (volume / total_months as f64 * 0.3).max(0.1),
                    peak: volume * 0.3,
                    period: *[6u32, 12]
                        .get(rng.gen_range(0..2usize))
                        .expect("two options"),
                }
            } else {
                AccessPattern::Spike {
                    month: rng.gen_range(0..3),
                    magnitude: volume,
                }
            };
            // Latency SLAs: most data is best-effort; 10% needs sub-second.
            let latency_threshold_seconds = if rng.gen::<f64>() < 0.1 {
                1.0
            } else {
                f64::INFINITY
            };
            datasets.push(DatasetMeta {
                id: idx,
                name: format!("dataset-{idx:04}"),
                size_gb,
                created_month,
                latency_threshold_seconds,
                pattern,
            });
        }
        let catalog = DatasetCatalog::new(datasets);

        // Sample the monthly access series by drawing Poisson-ish counts
        // around each pattern's expectation.
        let mut series = AccessSeries::new(total_months);
        for d in catalog.iter() {
            for month in d.created_month..total_months {
                let age = month - d.created_month;
                let expected_reads = d.pattern.expected_reads(age);
                let expected_writes = d.pattern.expected_writes(age);
                let reads = sample_count(&mut rng, expected_reads);
                let writes = sample_count(&mut rng, expected_writes);
                let read_fraction = if rng.gen::<f64>() < options.full_scan_fraction {
                    1.0
                } else {
                    rng.gen_range(0.05..0.6)
                };
                series.set(
                    d.id,
                    month,
                    MonthlyAccess {
                        reads,
                        writes,
                        read_fraction,
                    },
                );
            }
        }
        // Spread each month's sampled counts over the days of its billing
        // period. A *separate* RNG keeps the monthly stream above untouched,
        // so monthly statistics (and everything trained/validated on them)
        // are unchanged by the day-resolution refinement; the monthly series
        // is exactly the day log's monthly view.
        let mut day_rng = SmallRng::seed_from_u64(options.seed ^ 0xD1B5_4A32_D192_ED03);
        let mut daily = DailyAccessLog::new(total_months * DAYS_PER_MONTH);
        for d in catalog.iter() {
            for month in d.created_month..total_months {
                let acc = series.get(d.id, month);
                if acc.reads <= 0.0 && acc.writes <= 0.0 {
                    continue;
                }
                let base_day = month * DAYS_PER_MONTH;
                let mut reads_per_day = [0.0f64; DAYS_PER_MONTH as usize];
                let mut writes_per_day = [0.0f64; DAYS_PER_MONTH as usize];
                spread_over_days(&mut day_rng, acc.reads, &mut reads_per_day);
                spread_over_days(&mut day_rng, acc.writes, &mut writes_per_day);
                for (offset, (&reads, &writes)) in
                    reads_per_day.iter().zip(&writes_per_day).enumerate()
                {
                    if reads > 0.0 || writes > 0.0 {
                        daily.push(DailyAccess {
                            dataset: d.id,
                            day: base_day + offset as u32,
                            reads,
                            writes,
                            read_fraction: acc.read_fraction,
                        });
                    }
                }
            }
        }
        Ok(EnterpriseWorkload {
            catalog,
            series,
            daily,
            options,
        })
    }

    /// The first future month (the start of the projection horizon).
    pub fn projection_start(&self) -> u32 {
        self.options.history_months
    }

    /// Percentage of datasets created in each age bucket that received at
    /// least one read in the final history month — the decreasing curve of
    /// Fig 1b ("% accesses vs months since file was created").
    pub fn access_share_by_age(&self) -> Vec<(u32, f64)> {
        let month = self.options.history_months.saturating_sub(1);
        let mut total_reads = 0.0;
        let mut by_age: std::collections::BTreeMap<u32, f64> = std::collections::BTreeMap::new();
        for d in self.catalog.iter() {
            if let Some(age) = d.age_at(month) {
                let reads = self.series.get(d.id, month).reads;
                *by_age.entry(age).or_insert(0.0) += reads;
                total_reads += reads;
            }
        }
        by_age
            .into_iter()
            .map(|(age, reads)| {
                (
                    age,
                    if total_reads > 0.0 {
                        100.0 * reads / total_reads
                    } else {
                        0.0
                    },
                )
            })
            .collect()
    }
}

/// Sample an integer-ish count around an expectation (a cheap Poisson
/// stand-in: expectation plus bounded multiplicative noise, floored at 0).
fn sample_count<R: Rng>(rng: &mut R, expected: f64) -> f64 {
    if expected <= 0.0 {
        return 0.0;
    }
    let noise = rng.gen_range(0.7..1.3);
    (expected * noise).round().max(0.0)
}

/// Spread an integer-valued monthly count uniformly over the days of the
/// month: each unit lands on an independently drawn day, so the per-day
/// counts sum to the monthly count exactly.
fn spread_over_days<R: Rng>(rng: &mut R, count: f64, per_day: &mut [f64; 30]) {
    if !(count > 0.0) {
        return;
    }
    // Monthly counts are `sample_count` outputs (rounded, bounded noise);
    // the cap only guards against pathological hand-built series.
    let units = count.min(50_000_000.0) as u64;
    for _ in 0..units {
        per_day[rng.gen_range(0..per_day.len())] += 1.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_options() -> EnterpriseOptions {
        EnterpriseOptions {
            n_datasets: 200,
            history_months: 8,
            future_months: 4,
            ..Default::default()
        }
    }

    #[test]
    fn generates_requested_catalog_and_series_shape() {
        let w = EnterpriseWorkload::generate(small_options()).unwrap();
        assert_eq!(w.catalog.len(), 200);
        assert_eq!(w.series.months(), 12);
        assert_eq!(w.projection_start(), 8);
        // Sizes must be within bounds and span a wide range.
        let sizes: Vec<f64> = w.catalog.iter().map(|d| d.size_gb).collect();
        assert!(sizes.iter().all(|&s| (1.0..=100_000.0).contains(&s)));
        let max = sizes.iter().cloned().fold(0.0, f64::max);
        let min = sizes.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min > 100.0, "size range too narrow: {min}..{max}");
    }

    #[test]
    fn access_distribution_is_skewed_like_fig1a() {
        let w = EnterpriseWorkload::generate(EnterpriseOptions {
            n_datasets: 400,
            access_skew: 1.5,
            ..small_options()
        })
        .unwrap();
        let shares = w.series.access_share_sorted();
        // The top 10% of datasets should receive well over half the accesses.
        let top_decile: f64 = shares.iter().take(40).sum();
        assert!(top_decile > 50.0, "top decile share = {top_decile}");
        // And a long tail should receive (almost) nothing.
        let tail: f64 = shares.iter().skip(200).sum();
        assert!(tail < 20.0, "tail share = {tail}");
    }

    #[test]
    fn recency_access_falls_with_age() {
        let w = EnterpriseWorkload::generate(EnterpriseOptions {
            n_datasets: 500,
            history_months: 12,
            ..small_options()
        })
        .unwrap();
        let by_age = w.access_share_by_age();
        assert!(!by_age.is_empty());
        // Young datasets (age <= 2 months) should take a larger share than
        // old ones (age >= 8 months) in aggregate.
        let young: f64 = by_age.iter().filter(|(a, _)| *a <= 2).map(|(_, s)| s).sum();
        let old: f64 = by_age.iter().filter(|(a, _)| *a >= 8).map(|(_, s)| s).sum();
        assert!(young > old, "young share {young} vs old share {old}");
    }

    #[test]
    fn read_volume_supports_both_tiering_classes() {
        // Regression test: the generator once produced so few reads that no
        // dataset ever crossed the Hot/Cool break-even (~28 full-scan
        // equivalents per month at the paper's Table XII prices), which
        // collapsed the ideal tier labels to all-Cool and degenerated the
        // Table III confusion matrix. The workload must sustain a real Hot
        // class *and* a dormant tail that the Archive tier can monetize.
        let w = EnterpriseWorkload::generate(small_options()).unwrap();
        let start = w.projection_start();
        let horizon = w.options.future_months;
        let mut hot = 0usize;
        let mut dormant = 0usize;
        for d in w.catalog.iter() {
            let mut scans = 0.0;
            let mut reads = 0.0;
            for m in start..start + horizon {
                let acc = w.series.get(d.id, m);
                scans += acc.reads * acc.read_fraction;
                reads += acc.reads;
            }
            if scans / horizon as f64 > 28.0 {
                hot += 1;
            }
            if reads == 0.0 {
                dormant += 1;
            }
        }
        let n = w.catalog.len();
        assert!(hot * 10 >= n, "only {hot}/{n} datasets are hot enough");
        assert!(dormant * 4 >= n, "only {dormant}/{n} datasets are dormant");
    }

    #[test]
    fn bytes_concentrate_in_rarely_read_datasets() {
        // Regression test for the size/heat anticorrelation: account bytes
        // must be dominated by rarely-read data, otherwise storage savings
        // cannot dominate account cost and the Table II "% cost benefit"
        // numbers collapse to single digits.
        let w = EnterpriseWorkload::generate(small_options()).unwrap();
        let start = w.projection_start();
        let horizon = w.options.future_months;
        let mut hot_bytes = 0.0;
        let mut total_bytes = 0.0;
        for d in w.catalog.iter() {
            let mut scans = 0.0;
            for m in start..start + horizon {
                let acc = w.series.get(d.id, m);
                scans += acc.reads * acc.read_fraction;
            }
            total_bytes += d.size_gb;
            if scans / horizon as f64 > 28.0 {
                hot_bytes += d.size_gb;
            }
        }
        assert!(
            hot_bytes < total_bytes * 0.2,
            "hot datasets hold {hot_bytes:.0} of {total_bytes:.0} GB"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = EnterpriseWorkload::generate(small_options()).unwrap();
        let b = EnterpriseWorkload::generate(small_options()).unwrap();
        assert_eq!(a.catalog, b.catalog);
        assert_eq!(a.series, b.series);
        assert_eq!(a.daily, b.daily);
    }

    #[test]
    fn daily_log_aggregates_back_to_the_monthly_series() {
        // The monthly series is a *view* of the day log: per-month read and
        // write counts must round-trip exactly (counts are spread unit by
        // unit), and read volumes (reads × fraction) must agree to float
        // accumulation error.
        let w = EnterpriseWorkload::generate(small_options()).unwrap();
        let view = w.series.months();
        let monthly = w.daily.monthly_view();
        assert_eq!(monthly.months(), view);
        for d in w.catalog.iter() {
            for month in 0..view {
                let orig = w.series.get(d.id, month);
                let agg = monthly.get(d.id, month);
                assert_eq!(agg.reads, orig.reads, "dataset {} month {month}", d.id);
                assert_eq!(agg.writes, orig.writes, "dataset {} month {month}", d.id);
                let orig_volume = orig.reads * orig.read_fraction;
                let agg_volume = agg.reads * agg.read_fraction;
                assert!(
                    (agg_volume - orig_volume).abs() < 1e-6 * (1.0 + orig_volume),
                    "dataset {} month {month}: volume {agg_volume} vs {orig_volume}",
                    d.id
                );
            }
        }
    }

    #[test]
    fn daily_log_stays_within_each_dataset_lifetime() {
        let w = EnterpriseWorkload::generate(small_options()).unwrap();
        assert!(!w.daily.is_empty());
        let horizon_days = w.series.months() * 30;
        assert_eq!(w.daily.horizon_days(), horizon_days);
        for r in w.daily.records() {
            assert!(r.day < horizon_days);
            let created_day = w.catalog.get(r.dataset).unwrap().created_month * 30;
            assert!(
                r.day >= created_day,
                "dataset {} accessed on day {} before creation day {created_day}",
                r.dataset,
                r.day
            );
        }
    }

    #[test]
    fn no_accesses_before_creation() {
        let w = EnterpriseWorkload::generate(small_options()).unwrap();
        for d in w.catalog.iter() {
            for month in 0..d.created_month {
                let acc = w.series.get(d.id, month);
                assert_eq!(acc.reads, 0.0);
                assert_eq!(acc.writes, 0.0);
            }
        }
    }

    #[test]
    fn writes_happen_at_ingestion() {
        let w = EnterpriseWorkload::generate(small_options()).unwrap();
        let with_ingest_write = w
            .catalog
            .iter()
            .filter(|d| w.series.get(d.id, d.created_month).writes >= 1.0)
            .count();
        assert!(with_ingest_write as f64 / w.catalog.len() as f64 > 0.9);
    }

    #[test]
    fn invalid_options_rejected() {
        assert!(EnterpriseWorkload::generate(EnterpriseOptions {
            n_datasets: 0,
            ..Default::default()
        })
        .is_err());
        assert!(EnterpriseWorkload::generate(EnterpriseOptions {
            history_months: 0,
            future_months: 0,
            ..Default::default()
        })
        .is_err());
        assert!(EnterpriseWorkload::generate(EnterpriseOptions {
            min_size_gb: 10.0,
            max_size_gb: 1.0,
            ..Default::default()
        })
        .is_err());
        assert!(EnterpriseWorkload::generate(EnterpriseOptions {
            full_scan_fraction: 1.5,
            ..Default::default()
        })
        .is_err());
    }
}
