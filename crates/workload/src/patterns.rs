//! Per-dataset access-trend patterns.
//!
//! Fig. 2 of the paper shows four representative enterprise trends: read
//! accesses *decreasing* over time, reads remaining roughly *constant*,
//! *periodic* (seasonal) read peaks for a class of datasets, and the
//! write-activity trend, plus the marketing "activation" case of a one-time
//! read/write *spike* followed by long inactivity. [`AccessPattern`] models
//! each of these as an expected-accesses-per-month curve which the access
//! log generator then samples.

use serde::{Deserialize, Serialize};

/// A per-dataset temporal access pattern.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Reads decay geometrically with the dataset's age (top-left of Fig 2,
    /// and the recency effect of Fig 1b).
    Decreasing {
        /// Expected reads in the dataset's first month.
        initial: f64,
        /// Multiplicative decay per month (0 < decay < 1).
        decay: f64,
    },
    /// Roughly constant read rate (top-right of Fig 2).
    Constant {
        /// Expected reads every month.
        rate: f64,
    },
    /// Periodic / seasonal peaks, e.g. year-on-year analysis
    /// (bottom-left of Fig 2).
    Periodic {
        /// Baseline reads per month between peaks.
        base: f64,
        /// Additional reads during a peak month.
        peak: f64,
        /// Number of months between peaks (e.g. 12 for yearly).
        period: u32,
    },
    /// One-time activation: a burst of reads in a single month, then silence
    /// (the marketing ingestion-for-activation case).
    Spike {
        /// Month (relative to dataset creation) in which the spike occurs.
        month: u32,
        /// Expected reads during the spike month.
        magnitude: f64,
    },
    /// Never read after ingestion (cold data, the long tail of Fig 1a).
    Dormant,
}

impl AccessPattern {
    /// Expected number of read accesses in the given month *since dataset
    /// creation* (month 0 is the ingestion month).
    pub fn expected_reads(&self, months_since_creation: u32) -> f64 {
        match *self {
            AccessPattern::Decreasing { initial, decay } => {
                initial * decay.powi(months_since_creation as i32)
            }
            AccessPattern::Constant { rate } => rate,
            AccessPattern::Periodic { base, peak, period } => {
                if period > 0 && months_since_creation % period == 0 && months_since_creation > 0 {
                    base + peak
                } else {
                    base
                }
            }
            AccessPattern::Spike { month, magnitude } => {
                if months_since_creation == month {
                    magnitude
                } else {
                    0.0
                }
            }
            AccessPattern::Dormant => 0.0,
        }
    }

    /// Expected writes in the given month. Writes concentrate at ingestion
    /// (month 0) for every pattern, with a small trickle for constant and
    /// periodic datasets (appends), matching the write trend in Fig 2.
    pub fn expected_writes(&self, months_since_creation: u32) -> f64 {
        let ingest = if months_since_creation == 0 { 1.0 } else { 0.0 };
        match *self {
            AccessPattern::Constant { rate } => ingest + (rate * 0.1),
            AccessPattern::Periodic { base, .. } => ingest + (base * 0.05),
            _ => ingest,
        }
    }

    /// A short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            AccessPattern::Decreasing { .. } => "decreasing",
            AccessPattern::Constant { .. } => "constant",
            AccessPattern::Periodic { .. } => "periodic",
            AccessPattern::Spike { .. } => "spike",
            AccessPattern::Dormant => "dormant",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decreasing_pattern_decays() {
        let p = AccessPattern::Decreasing {
            initial: 100.0,
            decay: 0.5,
        };
        assert_eq!(p.expected_reads(0), 100.0);
        assert_eq!(p.expected_reads(1), 50.0);
        assert_eq!(p.expected_reads(2), 25.0);
        assert!(p.expected_reads(12) < 0.1);
    }

    #[test]
    fn constant_pattern_is_flat() {
        let p = AccessPattern::Constant { rate: 7.0 };
        for m in 0..24 {
            assert_eq!(p.expected_reads(m), 7.0);
        }
    }

    #[test]
    fn periodic_pattern_peaks_on_schedule() {
        let p = AccessPattern::Periodic {
            base: 2.0,
            peak: 50.0,
            period: 12,
        };
        assert_eq!(p.expected_reads(0), 2.0); // creation month is not a peak
        assert_eq!(p.expected_reads(6), 2.0);
        assert_eq!(p.expected_reads(12), 52.0);
        assert_eq!(p.expected_reads(24), 52.0);
        assert_eq!(p.expected_reads(13), 2.0);
    }

    #[test]
    fn spike_pattern_is_one_shot() {
        let p = AccessPattern::Spike {
            month: 1,
            magnitude: 200.0,
        };
        assert_eq!(p.expected_reads(0), 0.0);
        assert_eq!(p.expected_reads(1), 200.0);
        assert_eq!(p.expected_reads(2), 0.0);
    }

    #[test]
    fn dormant_never_reads_but_still_writes_once() {
        let p = AccessPattern::Dormant;
        assert_eq!(p.expected_reads(0), 0.0);
        assert_eq!(p.expected_reads(5), 0.0);
        assert_eq!(p.expected_writes(0), 1.0);
        assert_eq!(p.expected_writes(3), 0.0);
    }

    #[test]
    fn writes_concentrate_at_ingestion() {
        for p in [
            AccessPattern::Decreasing {
                initial: 10.0,
                decay: 0.9,
            },
            AccessPattern::Constant { rate: 5.0 },
            AccessPattern::Periodic {
                base: 1.0,
                peak: 5.0,
                period: 6,
            },
        ] {
            assert!(p.expected_writes(0) >= 1.0);
            assert!(p.expected_writes(1) < 1.0);
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(AccessPattern::Dormant.label(), "dormant");
        assert_eq!(
            AccessPattern::Spike {
                month: 0,
                magnitude: 1.0
            }
            .label(),
            "spike"
        );
    }
}
