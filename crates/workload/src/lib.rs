//! # scope-workload
//!
//! Workload substrate: enterprise access-log generation and query-family
//! workloads over TPC-H-like tables.
//!
//! The paper's evaluation rests on two kinds of workload:
//!
//! 1. **Enterprise Data Lake access logs** (Figs 1–2, Tables II–IV): hundreds
//!    of datasets whose access counts are heavily Zipf-skewed across
//!    datasets, decay with dataset age, and follow per-dataset trends
//!    (decreasing, roughly constant, periodic/seasonal, one-time activation
//!    spikes). The raw logs are proprietary, so [`enterprise`] generates a
//!    synthetic catalog + monthly access series with exactly those
//!    statistical shapes.
//! 2. **Query workloads** (Tables V–XI, Fig 7): TPC-H query templates (and a
//!    Zipf-skewed query distribution for Enterprise Data II) where each
//!    *query family* touches a specific set of files of specific tables.
//!    [`queries`] models templates, generates query instances and maps them
//!    to file-level footprints, which is the input both to DATAPART and to
//!    the query-based sampling used by COMPREDICT.

#![warn(missing_docs)]

pub mod access_log;
pub mod dataset;
pub mod daylog;
pub mod enterprise;
pub mod error;
pub mod patterns;
pub mod queries;

pub use access_log::{AccessSeries, MonthlyAccess};
pub use dataset::{DatasetCatalog, DatasetMeta};
pub use daylog::{DailyAccess, DailyAccessLog};
pub use enterprise::{EnterpriseOptions, EnterpriseWorkload};
pub use error::WorkloadError;
pub use patterns::AccessPattern;
pub use queries::{FileRef, QueryFamily, QueryWorkload, QueryWorkloadOptions, TpchQueryTemplate};
