//! Day-resolution access log: the source of truth the monthly series is a
//! view of.
//!
//! The tier optimizer's *features* stay monthly (the paper aggregates
//! "monthly read and write accesses for the last few months"), but billing
//! is day-granular: storage is pro-rated by days and early deletion is
//! billed per day of unmet residency. [`DailyAccessLog`] records accesses
//! at day resolution; [`DailyAccessLog::monthly_view`] aggregates it into
//! the legacy [`AccessSeries`], making the monthly series a derived view
//! rather than the generator's native output.

use crate::access_log::{AccessSeries, MonthlyAccess};
use serde::{Deserialize, Serialize};

/// Days per billing month used when aggregating day-stamped records into
/// monthly buckets (mirrors `scope_cloudsim::timeline::DAYS_PER_MONTH`; the
/// constant is duplicated because this crate does not depend on the cloud
/// substrate).
pub const DAYS_PER_MONTH: u32 = 30;

/// Read/write counts of one dataset on one day.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DailyAccess {
    /// Dataset id the accesses belong to.
    pub dataset: usize,
    /// Day index (0-based) from the start of the simulated history.
    pub day: u32,
    /// Number of read accesses on this day.
    pub reads: f64,
    /// Number of write accesses on this day.
    pub writes: f64,
    /// Average fraction of the dataset scanned per read (1.0 = full scans).
    pub read_fraction: f64,
}

/// Day-resolution access log over a horizon of consecutive days.
///
/// Records are stored in insertion order; the generator emits them sorted
/// by `(dataset, day)` but the log itself imposes no ordering.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DailyAccessLog {
    records: Vec<DailyAccess>,
    horizon_days: u32,
}

impl DailyAccessLog {
    /// Create an empty log covering `horizon_days` days.
    pub fn new(horizon_days: u32) -> Self {
        DailyAccessLog {
            records: Vec::new(),
            horizon_days,
        }
    }

    /// Number of days covered.
    pub fn horizon_days(&self) -> u32 {
        self.horizon_days
    }

    /// Append a record. Records at or beyond the horizon are ignored, like
    /// out-of-range months in [`AccessSeries::set`].
    pub fn push(&mut self, record: DailyAccess) {
        if record.day < self.horizon_days {
            self.records.push(record);
        }
    }

    /// The recorded day-stamped accesses.
    pub fn records(&self) -> &[DailyAccess] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total reads of one dataset over a day range `[from, to)`.
    pub fn total_reads(&self, dataset: usize, from_day: u32, to_day: u32) -> f64 {
        self.records
            .iter()
            .filter(|r| r.dataset == dataset && r.day >= from_day && r.day < to_day)
            .map(|r| r.reads)
            .sum()
    }

    /// Aggregate the day-stamped records into the legacy monthly series:
    /// reads and writes are summed per `DAYS_PER_MONTH`-day bucket and the
    /// monthly read fraction is the read-weighted average of the daily
    /// fractions (1.0 when a month has no reads, matching
    /// [`MonthlyAccess::default`]-adjacent semantics of "fraction is
    /// irrelevant without reads").
    pub fn monthly_view(&self) -> AccessSeries {
        let months = self.horizon_days.div_ceil(DAYS_PER_MONTH);
        let mut series = AccessSeries::new(months);
        // (reads, writes, volume-weighted fraction) per (dataset, month).
        let mut acc: std::collections::BTreeMap<(usize, u32), (f64, f64, f64)> =
            std::collections::BTreeMap::new();
        for r in &self.records {
            let month = r.day / DAYS_PER_MONTH;
            let e = acc.entry((r.dataset, month)).or_insert((0.0, 0.0, 0.0));
            e.0 += r.reads;
            e.1 += r.writes;
            e.2 += r.reads * r.read_fraction;
        }
        for ((dataset, month), (reads, writes, weighted)) in acc {
            let read_fraction = if reads > 0.0 { weighted / reads } else { 1.0 };
            series.set(
                dataset,
                month,
                MonthlyAccess {
                    reads,
                    writes,
                    read_fraction,
                },
            );
        }
        series
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(dataset: usize, day: u32, reads: f64, writes: f64, fraction: f64) -> DailyAccess {
        DailyAccess {
            dataset,
            day,
            reads,
            writes,
            read_fraction: fraction,
        }
    }

    #[test]
    fn push_and_horizon_filtering() {
        let mut log = DailyAccessLog::new(60);
        log.push(record(0, 0, 1.0, 0.0, 1.0));
        log.push(record(0, 59, 2.0, 1.0, 0.5));
        log.push(record(0, 60, 99.0, 0.0, 1.0)); // beyond horizon: dropped
        assert_eq!(log.len(), 2);
        assert_eq!(log.horizon_days(), 60);
        assert!(!log.is_empty());
        assert_eq!(log.total_reads(0, 0, 60), 3.0);
        assert_eq!(log.total_reads(0, 30, 60), 2.0);
    }

    #[test]
    fn monthly_view_buckets_by_30_days() {
        let mut log = DailyAccessLog::new(90);
        log.push(record(0, 3, 4.0, 1.0, 1.0));
        log.push(record(0, 29, 6.0, 0.0, 0.5));
        log.push(record(0, 30, 8.0, 2.0, 0.25));
        log.push(record(1, 75, 1.0, 0.0, 1.0));
        let series = log.monthly_view();
        assert_eq!(series.months(), 3);
        let m0 = series.get(0, 0);
        assert_eq!(m0.reads, 10.0);
        assert_eq!(m0.writes, 1.0);
        // Read-weighted fraction: (4*1.0 + 6*0.5) / 10.
        assert!((m0.read_fraction - 0.7).abs() < 1e-12);
        assert_eq!(series.get(0, 1).reads, 8.0);
        assert_eq!(series.get(1, 2).reads, 1.0);
        assert_eq!(series.get(1, 0).reads, 0.0);
    }

    #[test]
    fn monthly_view_of_writes_only_day_keeps_default_fraction() {
        let mut log = DailyAccessLog::new(30);
        log.push(record(0, 5, 0.0, 3.0, 0.4));
        let m = log.monthly_view().get(0, 0);
        assert_eq!(m.writes, 3.0);
        assert_eq!(m.reads, 0.0);
        assert_eq!(m.read_fraction, 1.0);
    }

    #[test]
    fn empty_log_views_as_empty_series() {
        let log = DailyAccessLog::new(45);
        let series = log.monthly_view();
        assert_eq!(series.months(), 2);
        assert_eq!(series.dataset_count(), 0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The derived monthly view is *exactly* the independent
            /// aggregation of the day-stamped records: reads and writes sum
            /// per 30-day bucket, the monthly read fraction is the
            /// read-weighted average of daily fractions (1.0 for read-less
            /// months), and out-of-horizon records never contribute.
            #[test]
            fn monthly_view_equals_independent_aggregation(
                horizon_days in 1u32..200,
                datasets in proptest::collection::vec(0usize..5, 1..40),
                days in proptest::collection::vec(0u32..230, 40),
                reads in proptest::collection::vec(0.0f64..50.0, 40),
                writes in proptest::collection::vec(0.0f64..20.0, 40),
                fractions in proptest::collection::vec(0.0f64..1.0, 40),
            ) {
                let mut log = DailyAccessLog::new(horizon_days);
                for (i, &dataset) in datasets.iter().enumerate() {
                    log.push(DailyAccess {
                        dataset,
                        day: days[i % days.len()],
                        reads: reads[i % reads.len()],
                        writes: writes[i % writes.len()],
                        read_fraction: fractions[i % fractions.len()],
                    });
                }
                let series = log.monthly_view();

                // Independent reference aggregation straight off the raw
                // record list (kept by the log in insertion order).
                let months = horizon_days.div_ceil(DAYS_PER_MONTH);
                prop_assert_eq!(series.months(), months);
                for dataset in 0..6 {
                    for month in 0..months + 2 {
                        let in_bucket: Vec<&DailyAccess> = log
                            .records()
                            .iter()
                            .filter(|r| {
                                r.dataset == dataset && r.day / DAYS_PER_MONTH == month
                            })
                            .collect();
                        let reads: f64 = in_bucket.iter().map(|r| r.reads).sum();
                        let writes: f64 = in_bucket.iter().map(|r| r.writes).sum();
                        let weighted: f64 =
                            in_bucket.iter().map(|r| r.reads * r.read_fraction).sum();
                        let got = series.get(dataset, month);
                        prop_assert_eq!(
                            got.reads, reads,
                            "dataset {} month {}", dataset, month
                        );
                        prop_assert_eq!(got.writes, writes);
                        if in_bucket.is_empty() {
                            // Untouched buckets come back as the series
                            // default, whose fraction is meaningless
                            // without reads.
                            prop_assert_eq!(got, MonthlyAccess::default());
                        } else {
                            let expect_fraction =
                                if reads > 0.0 { weighted / reads } else { 1.0 };
                            prop_assert!(
                                (got.read_fraction - expect_fraction).abs() <= 1e-12,
                                "fraction {} vs {}", got.read_fraction, expect_fraction
                            );
                        }
                    }
                }
                // Horizon filtering happened at push time: no record beyond
                // the horizon is in the log at all.
                prop_assert!(log.records().iter().all(|r| r.day < horizon_days));
            }
        }
    }
}
