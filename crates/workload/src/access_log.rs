//! Monthly access series: the (synthetic) access log.
//!
//! The tier optimizer and tier predictor consume *monthly aggregated* read
//! and write counts per dataset — exactly the granularity the paper's
//! features use ("aggregated monthly read and write accesses for the last
//! few months"). [`AccessSeries`] is that aggregation.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Read/write counts for one dataset in one month.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MonthlyAccess {
    /// Number of read accesses.
    pub reads: f64,
    /// Number of write accesses.
    pub writes: f64,
    /// Average fraction of the dataset scanned per read (1.0 = full scans).
    pub read_fraction: f64,
}

/// Per-dataset, per-month access counts over a horizon of consecutive
/// months.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AccessSeries {
    /// `counts[dataset_id][month]`.
    counts: BTreeMap<usize, Vec<MonthlyAccess>>,
    /// Number of months covered.
    months: u32,
}

impl AccessSeries {
    /// Create an empty series covering `months` months.
    pub fn new(months: u32) -> Self {
        AccessSeries {
            counts: BTreeMap::new(),
            months,
        }
    }

    /// Number of months covered.
    pub fn months(&self) -> u32 {
        self.months
    }

    /// Number of datasets with at least one recorded month.
    pub fn dataset_count(&self) -> usize {
        self.counts.len()
    }

    /// Record (overwrite) the access counts of a dataset in a month.
    pub fn set(&mut self, dataset: usize, month: u32, access: MonthlyAccess) {
        let entry = self
            .counts
            .entry(dataset)
            .or_insert_with(|| vec![MonthlyAccess::default(); self.months as usize]);
        if (month as usize) < entry.len() {
            entry[month as usize] = access;
        }
    }

    /// Access counts of a dataset in a month (zero if never recorded).
    pub fn get(&self, dataset: usize, month: u32) -> MonthlyAccess {
        self.counts
            .get(&dataset)
            .and_then(|v| v.get(month as usize))
            .copied()
            .unwrap_or_default()
    }

    /// Total reads of a dataset over a month range `[from, to)`.
    pub fn total_reads(&self, dataset: usize, from: u32, to: u32) -> f64 {
        (from..to.min(self.months))
            .map(|m| self.get(dataset, m).reads)
            .sum()
    }

    /// Total writes of a dataset over a month range `[from, to)`.
    pub fn total_writes(&self, dataset: usize, from: u32, to: u32) -> f64 {
        (from..to.min(self.months))
            .map(|m| self.get(dataset, m).writes)
            .sum()
    }

    /// Total reads across all datasets in one month.
    pub fn reads_in_month(&self, month: u32) -> f64 {
        self.counts.keys().map(|&d| self.get(d, month).reads).sum()
    }

    /// Total writes across all datasets in one month.
    pub fn writes_in_month(&self, month: u32) -> f64 {
        self.counts.keys().map(|&d| self.get(d, month).writes).sum()
    }

    /// Total reads per dataset over the whole horizon, as a map.
    pub fn reads_per_dataset(&self) -> BTreeMap<usize, f64> {
        self.counts
            .keys()
            .map(|&d| (d, self.total_reads(d, 0, self.months)))
            .collect()
    }

    /// Share of total reads received by each dataset, sorted descending —
    /// the quantity plotted in Fig 1a ("% accesses vs dataset index").
    pub fn access_share_sorted(&self) -> Vec<f64> {
        let per: Vec<f64> = self.reads_per_dataset().values().copied().collect();
        let total: f64 = per.iter().sum();
        if total <= 0.0 {
            return vec![0.0; per.len()];
        }
        let mut shares: Vec<f64> = per.iter().map(|r| 100.0 * r / total).collect();
        shares.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        shares
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_and_totals() {
        let mut s = AccessSeries::new(6);
        s.set(
            0,
            1,
            MonthlyAccess {
                reads: 10.0,
                writes: 2.0,
                read_fraction: 1.0,
            },
        );
        s.set(
            0,
            3,
            MonthlyAccess {
                reads: 5.0,
                writes: 0.0,
                read_fraction: 0.5,
            },
        );
        s.set(
            1,
            1,
            MonthlyAccess {
                reads: 1.0,
                writes: 1.0,
                read_fraction: 1.0,
            },
        );
        assert_eq!(s.get(0, 1).reads, 10.0);
        assert_eq!(s.get(0, 0).reads, 0.0);
        assert_eq!(s.get(99, 0).reads, 0.0);
        assert_eq!(s.total_reads(0, 0, 6), 15.0);
        assert_eq!(s.total_reads(0, 2, 6), 5.0);
        assert_eq!(s.total_writes(0, 0, 6), 2.0);
        assert_eq!(s.reads_in_month(1), 11.0);
        assert_eq!(s.writes_in_month(1), 3.0);
        assert_eq!(s.dataset_count(), 2);
        assert_eq!(s.months(), 6);
    }

    #[test]
    fn out_of_range_months_are_ignored() {
        let mut s = AccessSeries::new(2);
        s.set(
            0,
            5,
            MonthlyAccess {
                reads: 99.0,
                writes: 0.0,
                read_fraction: 1.0,
            },
        );
        assert_eq!(s.total_reads(0, 0, 10), 0.0);
    }

    #[test]
    fn access_share_sums_to_100_and_is_sorted() {
        let mut s = AccessSeries::new(1);
        for (d, r) in [(0, 80.0), (1, 15.0), (2, 5.0)] {
            s.set(
                d,
                0,
                MonthlyAccess {
                    reads: r,
                    writes: 0.0,
                    read_fraction: 1.0,
                },
            );
        }
        let shares = s.access_share_sorted();
        assert_eq!(shares.len(), 3);
        assert!((shares.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        assert!(shares[0] >= shares[1] && shares[1] >= shares[2]);
        assert_eq!(shares[0], 80.0);
    }

    #[test]
    fn empty_series_has_zero_shares() {
        let s = AccessSeries::new(3);
        assert!(s.access_share_sorted().is_empty());
        assert_eq!(s.reads_in_month(0), 0.0);
    }
}
