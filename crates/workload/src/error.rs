//! Error type for the workload crate.

use std::fmt;

/// Errors produced by workload generators.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// A generator option was invalid.
    InvalidOption(String),
    /// A dataset id was referenced that does not exist in the catalog.
    UnknownDataset(usize),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::InvalidOption(msg) => write!(f, "invalid option: {msg}"),
            WorkloadError::UnknownDataset(id) => write!(f, "unknown dataset id: {id}"),
        }
    }
}

impl std::error::Error for WorkloadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(WorkloadError::InvalidOption("x".into())
            .to_string()
            .contains('x'));
        assert!(WorkloadError::UnknownDataset(3).to_string().contains('3'));
    }
}
