//! Query-family workloads.
//!
//! DATAPART (§VI) defines a *query family* as "all queries that map to the
//! same files in the data tables"; the initial partitions it merges are
//! exactly those file sets, weighted by access frequency. COMPREDICT's
//! query-based sampling likewise derives its training samples from the rows
//! touched by queries. This module models both:
//!
//! * [`TpchQueryTemplate`] — the 22 TPC-H query templates reduced to their
//!   *data-access footprint*: which tables they touch and how selectively
//!   (a date-range over the fact table, a full dimension scan, a point
//!   lookup, ...). The join/aggregation logic of the SQL is irrelevant to
//!   storage costs; only the footprint matters.
//! * [`QueryWorkload`] — a generated set of [`QueryFamily`]s over the files
//!   of a set of tables, with a uniform or Zipf-skewed frequency
//!   distribution (the paper generates 20 queries per template for TPC-H
//!   and Zipf-distributed queries for Enterprise Data II).

use crate::error::WorkloadError;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scope_table::Zipf;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A reference to one file (horizontal slice) of a table.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FileRef {
    /// Table the file belongs to.
    pub table: String,
    /// Index of the file within the table's file sequence.
    pub file_index: usize,
}

impl FileRef {
    /// Create a file reference.
    pub fn new(table: impl Into<String>, file_index: usize) -> Self {
        FileRef {
            table: table.into(),
            file_index,
        }
    }
}

/// A query family: the set of files accessed together, with an expected
/// access frequency over the projection horizon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryFamily {
    /// Stable id.
    pub id: usize,
    /// Files read by queries of this family (deduplicated, sorted).
    pub files: Vec<FileRef>,
    /// Expected number of executions of this family over the horizon.
    pub frequency: f64,
    /// Template index this family was generated from (for reporting).
    pub template: usize,
}

impl QueryFamily {
    /// Number of distinct files touched.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }
}

/// One of the 22 TPC-H query templates, reduced to its access footprint.
#[derive(Debug, Clone, PartialEq)]
pub struct TpchQueryTemplate {
    /// Template number (1..=22).
    pub number: usize,
    /// Per-table footprint: `(table name, fraction of files touched,
    /// contiguous?)`. Contiguous footprints model date-range predicates
    /// over time-ordered files; scattered footprints model key/attribute
    /// predicates.
    pub footprint: Vec<(&'static str, f64, bool)>,
}

impl TpchQueryTemplate {
    /// The 22 TPC-H templates. Fractions follow the templates' dominant
    /// predicates: Q1/Q6 scan a large shipdate range of lineitem, Q2/Q11
    /// touch part/partsupp/supplier, Q13 is customer×orders, etc.
    pub fn all() -> Vec<TpchQueryTemplate> {
        let t = |number, footprint: &[(&'static str, f64, bool)]| TpchQueryTemplate {
            number,
            footprint: footprint.to_vec(),
        };
        vec![
            t(1, &[("lineitem", 0.95, true)]),
            t(
                2,
                &[
                    ("part", 0.2, false),
                    ("supplier", 1.0, false),
                    ("partsupp", 0.3, false),
                    ("nation", 1.0, false),
                    ("region", 1.0, false),
                ],
            ),
            t(
                3,
                &[
                    ("customer", 0.2, false),
                    ("orders", 0.5, true),
                    ("lineitem", 0.5, true),
                ],
            ),
            t(4, &[("orders", 0.25, true), ("lineitem", 0.25, true)]),
            t(
                5,
                &[
                    ("customer", 1.0, false),
                    ("orders", 0.15, true),
                    ("lineitem", 0.15, true),
                    ("supplier", 1.0, false),
                    ("nation", 1.0, false),
                    ("region", 1.0, false),
                ],
            ),
            t(6, &[("lineitem", 0.15, true)]),
            t(
                7,
                &[
                    ("supplier", 1.0, false),
                    ("lineitem", 0.3, true),
                    ("orders", 0.3, true),
                    ("customer", 1.0, false),
                    ("nation", 1.0, false),
                ],
            ),
            t(
                8,
                &[
                    ("part", 0.05, false),
                    ("supplier", 1.0, false),
                    ("lineitem", 0.3, true),
                    ("orders", 0.3, true),
                    ("customer", 1.0, false),
                    ("nation", 1.0, false),
                    ("region", 1.0, false),
                ],
            ),
            t(
                9,
                &[
                    ("part", 0.1, false),
                    ("supplier", 1.0, false),
                    ("lineitem", 0.6, false),
                    ("partsupp", 0.4, false),
                    ("orders", 0.6, false),
                    ("nation", 1.0, false),
                ],
            ),
            t(
                10,
                &[
                    ("customer", 1.0, false),
                    ("orders", 0.1, true),
                    ("lineitem", 0.1, true),
                    ("nation", 1.0, false),
                ],
            ),
            t(
                11,
                &[
                    ("partsupp", 0.5, false),
                    ("supplier", 1.0, false),
                    ("nation", 1.0, false),
                ],
            ),
            t(12, &[("orders", 0.3, true), ("lineitem", 0.15, true)]),
            t(13, &[("customer", 1.0, false), ("orders", 1.0, false)]),
            t(14, &[("lineitem", 0.08, true), ("part", 0.3, false)]),
            t(15, &[("lineitem", 0.12, true), ("supplier", 1.0, false)]),
            t(
                16,
                &[
                    ("partsupp", 0.6, false),
                    ("part", 0.3, false),
                    ("supplier", 0.2, false),
                ],
            ),
            t(17, &[("lineitem", 0.1, false), ("part", 0.02, false)]),
            t(
                18,
                &[
                    ("customer", 0.3, false),
                    ("orders", 0.6, false),
                    ("lineitem", 0.6, false),
                ],
            ),
            t(19, &[("lineitem", 0.05, false), ("part", 0.05, false)]),
            t(
                20,
                &[
                    ("supplier", 1.0, false),
                    ("nation", 1.0, false),
                    ("partsupp", 0.3, false),
                    ("part", 0.1, false),
                    ("lineitem", 0.2, true),
                ],
            ),
            t(
                21,
                &[
                    ("supplier", 1.0, false),
                    ("lineitem", 0.5, false),
                    ("orders", 0.5, false),
                    ("nation", 1.0, false),
                ],
            ),
            t(22, &[("customer", 0.3, false), ("orders", 0.4, false)]),
        ]
    }
}

/// Options for generating a query workload.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryWorkloadOptions {
    /// Number of query instances generated per template (the paper uses 20).
    pub queries_per_template: usize,
    /// Optional Zipf exponent over templates: when set, some templates run
    /// far more often than others (skewed query workload).
    pub template_skew: Option<f64>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QueryWorkloadOptions {
    fn default() -> Self {
        QueryWorkloadOptions {
            queries_per_template: 20,
            template_skew: None,
            seed: 11,
        }
    }
}

/// A generated query workload: a set of query families over table files.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryWorkload {
    /// The query families, each with its deduplicated file footprint.
    pub families: Vec<QueryFamily>,
}

impl QueryWorkload {
    /// Generate a TPC-H-style workload over tables whose physical layout is
    /// given as `(table name, number of files)` pairs.
    ///
    /// Each query instance picks a template (uniformly or Zipf-skewed),
    /// instantiates its footprint with random placement (a random contiguous
    /// window for range predicates, a random scatter for point predicates)
    /// and is then grouped with all other instances touching the *same* file
    /// set into one [`QueryFamily`].
    pub fn generate_tpch(
        table_files: &[(String, usize)],
        options: &QueryWorkloadOptions,
    ) -> Result<Self, WorkloadError> {
        if options.queries_per_template == 0 {
            return Err(WorkloadError::InvalidOption(
                "queries_per_template must be > 0".to_string(),
            ));
        }
        if table_files.is_empty() {
            return Err(WorkloadError::InvalidOption(
                "table_files must not be empty".to_string(),
            ));
        }
        let templates = TpchQueryTemplate::all();
        let mut rng = SmallRng::seed_from_u64(options.seed);
        let total_queries = options.queries_per_template * templates.len();
        let zipf = options.template_skew.map(|s| Zipf::new(templates.len(), s));

        let file_count = |table: &str| -> usize {
            table_files
                .iter()
                .find(|(name, _)| name == table)
                .map(|(_, n)| *n)
                .unwrap_or(0)
        };

        // footprint (sorted set of files) -> (frequency, template)
        // BTreeMap: family construction order must not depend on hash seeds.
        let mut grouped: std::collections::BTreeMap<Vec<FileRef>, (f64, usize)> =
            std::collections::BTreeMap::new();
        for q in 0..total_queries {
            let template_idx = match &zipf {
                Some(z) => z.sample(&mut rng),
                None => q % templates.len(),
            };
            let template = &templates[template_idx];
            let mut files: BTreeSet<FileRef> = BTreeSet::new();
            for &(table, fraction, contiguous) in &template.footprint {
                let n_files = file_count(table);
                if n_files == 0 {
                    continue;
                }
                let touched = ((n_files as f64 * fraction).ceil() as usize).clamp(1, n_files);
                if contiguous {
                    // Date-range predicates concentrate on *recent* data
                    // (the recency effect of Fig 1b): the window's start is
                    // drawn with a quadratic bias towards the tail of the
                    // file sequence, so different instances of the same
                    // template overlap heavily on the hot recent files and
                    // the head of the table stays cold.
                    let slack = n_files - touched;
                    let u: f64 = rng.gen();
                    let start = ((1.0 - u * u) * slack as f64).floor() as usize;
                    for i in start..start + touched {
                        files.insert(FileRef::new(table, i));
                    }
                } else {
                    // Scatter: sample `touched` distinct file indices.
                    let mut indices: Vec<usize> = (0..n_files).collect();
                    for i in 0..touched {
                        let j = rng.gen_range(i..n_files);
                        indices.swap(i, j);
                    }
                    for &i in indices.iter().take(touched) {
                        files.insert(FileRef::new(table, i));
                    }
                }
            }
            if files.is_empty() {
                continue;
            }
            let key: Vec<FileRef> = files.into_iter().collect();
            let entry = grouped.entry(key).or_insert((0.0, template.number));
            entry.0 += 1.0;
        }

        let mut families: Vec<QueryFamily> = grouped
            .into_iter()
            .map(|(files, (frequency, template))| QueryFamily {
                id: 0,
                files,
                frequency,
                template,
            })
            .collect();
        // Deterministic ordering, then assign ids.
        families.sort_by(|a, b| {
            a.template
                .cmp(&b.template)
                .then_with(|| a.files.cmp(&b.files))
        });
        for (i, f) in families.iter_mut().enumerate() {
            f.id = i;
        }
        Ok(QueryWorkload { families })
    }

    /// Generate an Enterprise-Data-II-style workload: `n_tables` tables,
    /// each split into `files_per_table` files, with `n_queries` queries
    /// whose (table, file-window) choices follow a Zipf distribution — the
    /// "queries generated based on a skewed power-law (Zipf-like)
    /// distribution" of §III.
    pub fn generate_enterprise(
        n_tables: usize,
        files_per_table: usize,
        n_queries: usize,
        zipf_exponent: f64,
        seed: u64,
    ) -> Result<Self, WorkloadError> {
        if n_tables == 0 || files_per_table == 0 || n_queries == 0 {
            return Err(WorkloadError::InvalidOption(
                "n_tables, files_per_table and n_queries must all be > 0".to_string(),
            ));
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        let table_zipf = Zipf::new(n_tables, zipf_exponent);
        let start_zipf = Zipf::new(files_per_table, zipf_exponent);
        // BTreeMap: family construction order must not depend on hash seeds.
        let mut grouped: std::collections::BTreeMap<Vec<FileRef>, f64> =
            std::collections::BTreeMap::new();
        for _ in 0..n_queries {
            let table = table_zipf.sample(&mut rng);
            let start = start_zipf.sample(&mut rng);
            let window = 1 + rng.gen_range(0..files_per_table.div_ceil(4).max(1));
            let end = (start + window).min(files_per_table);
            let files: Vec<FileRef> = (start..end)
                .map(|i| FileRef::new(format!("table-{table}"), i))
                .collect();
            if files.is_empty() {
                continue;
            }
            *grouped.entry(files).or_insert(0.0) += 1.0;
        }
        let mut families: Vec<QueryFamily> = grouped
            .into_iter()
            .map(|(files, frequency)| QueryFamily {
                id: 0,
                files,
                frequency,
                template: 0,
            })
            .collect();
        families.sort_by(|a, b| a.files.cmp(&b.files));
        for (i, f) in families.iter_mut().enumerate() {
            f.id = i;
        }
        Ok(QueryWorkload { families })
    }

    /// Total query executions across all families.
    pub fn total_queries(&self) -> f64 {
        self.families.iter().map(|f| f.frequency).sum()
    }

    /// All distinct files referenced by any family.
    pub fn all_files(&self) -> Vec<FileRef> {
        let set: BTreeSet<FileRef> = self
            .families
            .iter()
            .flat_map(|f| f.files.iter().cloned())
            .collect();
        set.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tpch_layout() -> Vec<(String, usize)> {
        vec![
            ("lineitem".to_string(), 40),
            ("orders".to_string(), 10),
            ("customer".to_string(), 4),
            ("part".to_string(), 4),
            ("supplier".to_string(), 1),
            ("partsupp".to_string(), 6),
            ("nation".to_string(), 1),
            ("region".to_string(), 1),
        ]
    }

    #[test]
    fn there_are_22_templates_with_valid_fractions() {
        let templates = TpchQueryTemplate::all();
        assert_eq!(templates.len(), 22);
        for t in &templates {
            assert!(!t.footprint.is_empty());
            for &(_, frac, _) in &t.footprint {
                assert!(frac > 0.0 && frac <= 1.0);
            }
        }
        assert_eq!(templates[0].number, 1);
        assert_eq!(templates[21].number, 22);
    }

    #[test]
    fn tpch_workload_covers_templates_and_respects_layout() {
        let w =
            QueryWorkload::generate_tpch(&tpch_layout(), &QueryWorkloadOptions::default()).unwrap();
        assert!(!w.families.is_empty());
        // Total query executions = 22 templates * 20 queries.
        assert_eq!(w.total_queries(), 440.0);
        // All referenced files must exist in the layout.
        for f in w.all_files() {
            let n = tpch_layout()
                .iter()
                .find(|(t, _)| *t == f.table)
                .map(|(_, n)| *n)
                .unwrap();
            assert!(f.file_index < n, "{f:?} out of range");
        }
        // Ids are dense and ordered.
        for (i, fam) in w.families.iter().enumerate() {
            assert_eq!(fam.id, i);
            assert!(fam.file_count() > 0);
        }
    }

    #[test]
    fn workload_generation_is_deterministic() {
        let a =
            QueryWorkload::generate_tpch(&tpch_layout(), &QueryWorkloadOptions::default()).unwrap();
        let b =
            QueryWorkload::generate_tpch(&tpch_layout(), &QueryWorkloadOptions::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn skewed_template_distribution_concentrates_frequency() {
        let skewed = QueryWorkload::generate_tpch(
            &tpch_layout(),
            &QueryWorkloadOptions {
                template_skew: Some(2.0),
                ..Default::default()
            },
        )
        .unwrap();
        // Under heavy skew, the most frequent family should account for a
        // noticeable share of all queries.
        let max_freq = skewed
            .families
            .iter()
            .map(|f| f.frequency)
            .fold(0.0, f64::max);
        assert!(max_freq / skewed.total_queries() > 0.05);
    }

    #[test]
    fn enterprise_workload_is_zipf_skewed_over_tables() {
        let w = QueryWorkload::generate_enterprise(3, 20, 300, 1.5, 7).unwrap();
        assert!(!w.families.is_empty());
        assert_eq!(w.total_queries(), 300.0);
        // Table 0 (the Zipf head) must receive the most queries.
        let per_table = |name: &str| -> f64 {
            w.families
                .iter()
                .filter(|f| f.files.iter().any(|fr| fr.table == name))
                .map(|f| f.frequency)
                .sum()
        };
        assert!(per_table("table-0") > per_table("table-2"));
    }

    #[test]
    fn invalid_options_rejected() {
        assert!(QueryWorkload::generate_tpch(&[], &QueryWorkloadOptions::default()).is_err());
        assert!(QueryWorkload::generate_tpch(
            &tpch_layout(),
            &QueryWorkloadOptions {
                queries_per_template: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(QueryWorkload::generate_enterprise(0, 1, 1, 1.0, 0).is_err());
        assert!(QueryWorkload::generate_enterprise(1, 0, 1, 1.0, 0).is_err());
        assert!(QueryWorkload::generate_enterprise(1, 1, 0, 1.0, 0).is_err());
    }

    #[test]
    fn query_families_with_identical_footprints_are_merged() {
        // With a single 1-file table every query touches the same footprint,
        // so there must be exactly one family carrying all the frequency.
        let layout = vec![("lineitem".to_string(), 1)];
        let w = QueryWorkload::generate_tpch(
            &layout,
            &QueryWorkloadOptions {
                queries_per_template: 5,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(w.families.len(), 1);
        // Only templates touching lineitem contribute (those exist), so the
        // single family's frequency equals the number of lineitem queries.
        assert!(w.families[0].frequency > 0.0);
        assert_eq!(w.all_files().len(), 1);
    }
}
