//! Deterministic fault-injection plans for chaos-testing the serving loop.
//!
//! A [`FaultPlan`] is a **pure function** of `(seed, epoch, shard/object
//! id)`: no wall clock, no global RNG, no hidden state. The same plan
//! replayed over the same trace injects bit-identical faults, which is
//! what lets the chaos suites assert exact recovery equalities instead of
//! "it didn't crash":
//!
//! * **Intake faults** ([`FaultPlan::corrupt_batch`],
//!   [`FaultPlan::deliver`]): corrupt event volumes (NaN with varied
//!   payloads, negative), tear batches (truncated columns), duplicate and
//!   locally reorder batch delivery. Each corruption also yields the
//!   *clean* stream a fault-free twin engine should be fed so the two
//!   engines' heat states stay bit-comparable.
//! * **Compute faults** ([`FaultPlan::shard_faults`]): per-epoch,
//!   per-shard re-solve failures and deadline overruns, mapped onto
//!   [`scope_serve::ShardFault`].
//! * **Crashes** ([`FaultPlan::crash_after_epoch`]): which epochs end in a
//!   simulated crash, exercising checkpoint/restore/replay.
//! * **Storage faults** ([`storage`]): seeded failure schedules for the
//!   write-ahead intake journal — failed/partial appends, failed syncs,
//!   torn tails, bit rot and crash points — applied through the
//!   [`FaultyStorage`] wrapper over any `scope-wal` backend.
//!
//! [`expected_intake`] is an independent reference implementation of the
//! serving intake's validation rules (horizon drop, quarantine, unknown
//! skip, torn-batch truncation); the differential suites pit it against
//! [`scope_serve::ServeEngine::ingest`] so neither implementation can
//! drift silently.

#![warn(missing_docs)]

pub mod storage;

pub use storage::{AppendFault, FaultyStorage, StorageFaultPlan, StorageFaultRates};

use std::fmt;

use scope_cloudsim::EventColumns;
use scope_serve::{QuarantineReason, QuarantinedEvent, ShardFault};

/// Domain separators so the same `(epoch, id)` never reuses a draw across
/// fault kinds.
const DOMAIN_CORRUPT: u64 = 0x01;
const DOMAIN_CORRUPT_KIND: u64 = 0x02;
const DOMAIN_TRUNCATE: u64 = 0x03;
const DOMAIN_DUPLICATE: u64 = 0x04;
const DOMAIN_REORDER: u64 = 0x05;
const DOMAIN_SHARD_FAIL: u64 = 0x06;
const DOMAIN_SHARD_OVERRUN: u64 = 0x07;
const DOMAIN_CRASH: u64 = 0x08;

/// Errors from building a fault plan.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// A rate was outside `[0, 1]` or not finite.
    InvalidRate {
        /// Which rate field was invalid.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::InvalidRate { name, value } => {
                write!(f, "fault rate {name} must be in [0, 1], got {value}")
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// Per-kind fault probabilities, each in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Per-event probability of corrupting the volume (NaN or negative).
    pub corrupt_event: f64,
    /// Per-batch probability of tearing the batch (truncated columns).
    pub truncate_batch: f64,
    /// Per-batch probability of delivering it twice.
    pub duplicate_batch: f64,
    /// Per-batch probability of swapping it with its successor.
    pub reorder_batch: f64,
    /// Per-`(epoch, shard)` probability of a re-solve failure.
    pub shard_failure: f64,
    /// Per-`(epoch, shard)` probability of a deadline overrun.
    pub deadline_overrun: f64,
    /// Per-epoch probability of a crash after the epoch completes.
    pub crash: f64,
}

impl FaultRates {
    /// No faults at all (the plan becomes a no-op).
    pub fn none() -> Self {
        FaultRates {
            corrupt_event: 0.0,
            truncate_batch: 0.0,
            duplicate_batch: 0.0,
            reorder_batch: 0.0,
            shard_failure: 0.0,
            deadline_overrun: 0.0,
            crash: 0.0,
        }
    }

    /// A light chaos mix: rare corruption, occasional delivery mischief
    /// and shard faults.
    pub fn light() -> Self {
        FaultRates {
            corrupt_event: 0.01,
            truncate_batch: 0.05,
            duplicate_batch: 0.10,
            reorder_batch: 0.10,
            shard_failure: 0.05,
            deadline_overrun: 0.05,
            crash: 0.10,
        }
    }

    /// A heavy chaos mix: pervasive corruption and frequent faults.
    pub fn heavy() -> Self {
        FaultRates {
            corrupt_event: 0.10,
            truncate_batch: 0.20,
            duplicate_batch: 0.30,
            reorder_batch: 0.30,
            shard_failure: 0.25,
            deadline_overrun: 0.15,
            crash: 0.30,
        }
    }

    fn validate(&self) -> Result<(), FaultError> {
        for (name, value) in [
            ("corrupt_event", self.corrupt_event),
            ("truncate_batch", self.truncate_batch),
            ("duplicate_batch", self.duplicate_batch),
            ("reorder_batch", self.reorder_batch),
            ("shard_failure", self.shard_failure),
            ("deadline_overrun", self.deadline_overrun),
            ("crash", self.crash),
        ] {
            if !(0.0..=1.0).contains(&value) || !value.is_finite() {
                return Err(FaultError::InvalidRate { name, value });
            }
        }
        Ok(())
    }
}

/// One batch after intake-fault injection.
#[derive(Debug, Clone, PartialEq)]
pub struct CorruptedBatch {
    /// What the chaos engine receives: corrupted volumes, possibly torn
    /// columns (parallel arrays of unequal length).
    pub delivered: EventColumns,
    /// What a fault-free twin should be fed instead: the delivered events
    /// minus everything the validating intake diverts — in-horizon corrupt
    /// events (quarantined) and the torn tail (truncated). Out-of-horizon
    /// events stay (corrupt or not, they are *dropped*, and the twin must
    /// drop them too).
    pub clean: EventColumns,
    /// Events this batch will add to the quarantine (in-horizon corrupt).
    pub expected_quarantined: u64,
    /// Events this batch loses to torn columns.
    pub expected_truncated: u64,
}

/// A seeded, stateless fault schedule (see the [module docs](self)).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rates: FaultRates,
}

impl FaultPlan {
    /// Build a plan; every rate must be a probability in `[0, 1]`.
    pub fn new(seed: u64, rates: FaultRates) -> Result<Self, FaultError> {
        rates.validate()?;
        Ok(FaultPlan { seed, rates })
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The plan's rates.
    pub fn rates(&self) -> &FaultRates {
        &self.rates
    }

    /// SplitMix64-style avalanche over `(seed, domain, epoch, id)`.
    pub(crate) fn mix(&self, domain: u64, epoch: u64, id: u64) -> u64 {
        let mut z = self
            .seed
            .wrapping_add(domain.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add(epoch.wrapping_mul(0xbf58_476d_1ce4_e5b9))
            .wrapping_add(id.wrapping_mul(0x94d0_49bb_1331_11eb));
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Bernoulli draw with probability `rate` from the hash stream.
    pub(crate) fn chance(&self, domain: u64, epoch: u64, id: u64, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        // 53 uniform bits -> [0, 1).
        let unit = (self.mix(domain, epoch, id) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < rate
    }

    /// Inject intake corruption into batch `seq`: flip some volumes to
    /// NaN (with hash-varied payloads) or negative values, and possibly
    /// tear the batch by truncating a suffix of the `volumes`/`kinds`
    /// columns. Pure in `(seed, seq, event index)`.
    pub fn corrupt_batch(
        &self,
        seq: u64,
        columns: &EventColumns,
        horizon_days: u32,
    ) -> CorruptedBatch {
        let mut delivered = columns.clone();
        let mut expected_quarantined = 0u64;
        for i in 0..delivered.volumes.len() {
            let id = (seq << 32) | (i as u64 & 0xffff_ffff);
            if !self.chance(DOMAIN_CORRUPT, 0, id, self.rates.corrupt_event) {
                continue;
            }
            let h = self.mix(DOMAIN_CORRUPT_KIND, 0, id);
            delivered.volumes[i] = if h & 1 == 0 {
                // A quiet NaN with a varied payload: quarantine records
                // store raw bits, so payloads must survive round trips.
                f64::from_bits(0x7ff8_0000_0000_0000 | ((h >> 16) & 0xffff))
            } else {
                -1.0 - ((h >> 32) & 0xff) as f64 / 16.0
            };
        }
        // Tear the batch: drop a short suffix of two of the four columns
        // the intake reads, so the parallel arrays disagree in length.
        let mut torn = 0usize;
        if !delivered.volumes.is_empty()
            && self.chance(DOMAIN_TRUNCATE, 0, seq, self.rates.truncate_batch)
        {
            let h = self.mix(DOMAIN_TRUNCATE, 1, seq);
            torn = (1 + (h % 3) as usize).min(delivered.volumes.len());
            delivered.volumes.truncate(columns.volumes.len() - torn);
            delivered.kinds.truncate(columns.kinds.len() - torn);
        }
        // The clean twin's stream: delivered events the validating intake
        // will actually fold or drop (skip quarantined, skip the torn tail).
        let usable = delivered.volumes.len();
        let mut clean = EventColumns::default();
        for i in 0..usable {
            let volume = delivered.volumes[i];
            let quarantined =
                delivered.days[i] < horizon_days && (!volume.is_finite() || volume < 0.0);
            if quarantined {
                expected_quarantined += 1;
            } else {
                clean.push_resolved(
                    delivered.days[i],
                    delivered.object_ids[i],
                    delivered.kinds[i],
                    volume,
                );
            }
        }
        CorruptedBatch {
            delivered,
            clean,
            expected_quarantined,
            expected_truncated: torn as u64,
        }
    }

    /// Delivery schedule for sequenced batches: adjacent pairs may swap
    /// (bounded reordering — displacement never exceeds 1, so the
    /// engine's reorder buffer cannot overflow) and individual batches
    /// may be delivered twice. Returns `(seq, batch)` pairs in delivery
    /// order. Pure in `(seed, epoch, batch index)`.
    pub fn deliver(&self, epoch: u64, batches: &[(u64, EventColumns)]) -> Vec<(u64, EventColumns)> {
        let mut order: Vec<usize> = (0..batches.len()).collect();
        let mut i = 0;
        while i + 1 < order.len() {
            if self.chance(DOMAIN_REORDER, epoch, i as u64, self.rates.reorder_batch) {
                order.swap(i, i + 1);
                i += 2;
            } else {
                i += 1;
            }
        }
        let mut out = Vec::new();
        for &idx in &order {
            out.push(batches[idx].clone());
            if self.chance(
                DOMAIN_DUPLICATE,
                epoch,
                idx as u64,
                self.rates.duplicate_batch,
            ) {
                out.push(batches[idx].clone());
            }
        }
        out
    }

    /// The compute fault (if any) shard `shard` suffers in `epoch`.
    pub fn shard_fault(&self, epoch: u64, shard: usize) -> Option<ShardFault> {
        if self.chance(
            DOMAIN_SHARD_FAIL,
            epoch,
            shard as u64,
            self.rates.shard_failure,
        ) {
            Some(ShardFault::SolveFailure)
        } else if self.chance(
            DOMAIN_SHARD_OVERRUN,
            epoch,
            shard as u64,
            self.rates.deadline_overrun,
        ) {
            Some(ShardFault::DeadlineOverrun)
        } else {
            None
        }
    }

    /// Per-shard fault vector for `epoch`, ready for
    /// [`scope_serve::ServeEngine::reoptimize_with_faults`].
    pub fn shard_faults(&self, epoch: u64, shards: usize) -> Vec<Option<ShardFault>> {
        (0..shards).map(|s| self.shard_fault(epoch, s)).collect()
    }

    /// Whether the engine crashes after completing `epoch` (the chaos
    /// runner then restores from its last checkpoint and replays).
    pub fn crash_after_epoch(&self, epoch: u64) -> bool {
        self.chance(DOMAIN_CRASH, epoch, 0, self.rates.crash)
    }
}

/// What an in-order, exactly-once intake of `batches` must produce —
/// computed by an **independent** implementation of the validation rules
/// (horizon drop first, then quarantine, then unknown skip; torn batches
/// ingest their common column prefix).
#[derive(Debug, Clone, PartialEq)]
pub struct ExpectedIntake {
    /// Quarantine records, bounded by `capacity`, in intake order.
    pub records: Vec<QuarantinedEvent>,
    /// Total quarantined events (including past capacity).
    pub quarantined: u64,
    /// Events lost to torn columns.
    pub truncated: u64,
    /// Out-of-horizon events dropped.
    pub dropped: u64,
    /// Events folded into heat.
    pub folded: u64,
    /// In-horizon events naming unknown objects.
    pub unknown: u64,
    /// Every event examined (the ordinal space).
    pub events_seen: u64,
}

/// Reference intake over `batches` in order (see [`ExpectedIntake`]).
/// `known_objects` is the number of registered (interned) object ids;
/// `capacity` bounds the retained quarantine records.
pub fn expected_intake(
    batches: &[EventColumns],
    horizon_days: u32,
    known_objects: u32,
    capacity: usize,
) -> ExpectedIntake {
    let mut out = ExpectedIntake {
        records: Vec::new(),
        quarantined: 0,
        truncated: 0,
        dropped: 0,
        folded: 0,
        unknown: 0,
        events_seen: 0,
    };
    for columns in batches {
        let usable = columns
            .days
            .len()
            .min(columns.object_ids.len())
            .min(columns.kinds.len())
            .min(columns.volumes.len());
        let intended = columns
            .days
            .len()
            .max(columns.object_ids.len())
            .max(columns.kinds.len())
            .max(columns.volumes.len());
        out.truncated += (intended - usable) as u64;
        for i in 0..usable {
            let ordinal = out.events_seen;
            out.events_seen += 1;
            if columns.days[i] >= horizon_days {
                out.dropped += 1;
                continue;
            }
            let volume = columns.volumes[i];
            if !volume.is_finite() || volume < 0.0 {
                out.quarantined += 1;
                if out.records.len() < capacity {
                    out.records.push(QuarantinedEvent {
                        ordinal,
                        day: columns.days[i],
                        object_id: columns.object_ids[i],
                        volume_bits: volume.to_bits(),
                        reason: if volume.is_finite() {
                            QuarantineReason::NegativeVolume
                        } else {
                            QuarantineReason::NonFiniteVolume
                        },
                    });
                }
                continue;
            }
            if columns.object_ids[i] >= known_objects {
                out.unknown += 1;
                continue;
            }
            out.folded += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_cloudsim::AccessKind;

    /// Bit-exact digest of a column batch: NaN volumes compare by their
    /// raw bits (`PartialEq` on `f64` would make NaN != NaN).
    type ColumnBits = (Vec<u32>, Vec<u32>, Vec<AccessKind>, Vec<u64>);

    fn bits(c: &EventColumns) -> ColumnBits {
        (
            c.days.clone(),
            c.object_ids.clone(),
            c.kinds.clone(),
            c.volumes.iter().map(|v| v.to_bits()).collect(),
        )
    }

    fn batch_bits(b: &CorruptedBatch) -> (ColumnBits, ColumnBits, u64, u64) {
        (
            bits(&b.delivered),
            bits(&b.clean),
            b.expected_quarantined,
            b.expected_truncated,
        )
    }

    fn sample_columns(n: usize) -> EventColumns {
        let mut columns = EventColumns::default();
        for i in 0..n {
            let kind = if i % 5 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            columns.push_resolved((i % 40) as u32, (i % 7) as u32, kind, 0.1 + i as f64 * 0.03);
        }
        columns
    }

    #[test]
    fn rates_are_validated() {
        let mut rates = FaultRates::none();
        rates.crash = 1.5;
        assert_eq!(
            FaultPlan::new(1, rates).unwrap_err(),
            FaultError::InvalidRate {
                name: "crash",
                value: 1.5
            }
        );
        rates.crash = f64::NAN;
        assert!(matches!(
            FaultPlan::new(1, rates),
            Err(FaultError::InvalidRate { name: "crash", .. })
        ));
        assert!(FaultPlan::new(1, FaultRates::heavy()).is_ok());
    }

    #[test]
    fn plans_are_pure_functions_of_seed_epoch_and_id() {
        let a = FaultPlan::new(0xfeed, FaultRates::heavy()).unwrap();
        let b = FaultPlan::new(0xfeed, FaultRates::heavy()).unwrap();
        let columns = sample_columns(200);
        for seq in 0..8u64 {
            assert_eq!(
                batch_bits(&a.corrupt_batch(seq, &columns, 30)),
                batch_bits(&b.corrupt_batch(seq, &columns, 30))
            );
        }
        for epoch in 0..16u64 {
            assert_eq!(a.shard_faults(epoch, 12), b.shard_faults(epoch, 12));
            assert_eq!(a.crash_after_epoch(epoch), b.crash_after_epoch(epoch));
        }
        // A different seed draws a different schedule somewhere.
        let c = FaultPlan::new(0xbeef, FaultRates::heavy()).unwrap();
        let differs = (0..16u64).any(|e| a.shard_faults(e, 12) != c.shard_faults(e, 12))
            || (0..8u64).any(|s| {
                batch_bits(&a.corrupt_batch(s, &columns, 30))
                    != batch_bits(&c.corrupt_batch(s, &columns, 30))
            });
        assert!(differs, "seeds 0xfeed and 0xbeef drew identical schedules");
    }

    #[test]
    fn zero_rates_are_a_no_op_and_unit_rates_always_fire() {
        let none = FaultPlan::new(7, FaultRates::none()).unwrap();
        let columns = sample_columns(50);
        let batch = none.corrupt_batch(0, &columns, 60);
        assert_eq!(batch.delivered, columns);
        assert_eq!(batch.clean, columns);
        assert_eq!(batch.expected_quarantined, 0);
        assert_eq!(batch.expected_truncated, 0);
        assert_eq!(none.shard_faults(3, 8), vec![None; 8]);
        assert!(!none.crash_after_epoch(3));

        let mut all = FaultRates::none();
        all.corrupt_event = 1.0;
        all.shard_failure = 1.0;
        all.crash = 1.0;
        let always = FaultPlan::new(7, all).unwrap();
        let batch = always.corrupt_batch(0, &columns, 60);
        assert_eq!(batch.expected_quarantined, 50);
        assert!(batch.clean.is_empty());
        assert!(batch
            .delivered
            .volumes
            .iter()
            .all(|v| !v.is_finite() || *v < 0.0));
        assert_eq!(
            always.shard_faults(0, 3),
            vec![Some(ShardFault::SolveFailure); 3]
        );
        assert!(always.crash_after_epoch(11));
    }

    #[test]
    fn corruption_spares_out_of_horizon_events_from_the_clean_filter() {
        // horizon 10: events on days >= 10 stay in the clean stream even
        // when corrupted, because both engines drop them identically.
        let mut all = FaultRates::none();
        all.corrupt_event = 1.0;
        let plan = FaultPlan::new(3, all).unwrap();
        let mut columns = EventColumns::default();
        columns.push_resolved(5, 0, AccessKind::Read, 1.0);
        columns.push_resolved(25, 1, AccessKind::Read, 1.0);
        let batch = plan.corrupt_batch(0, &columns, 10);
        assert_eq!(batch.expected_quarantined, 1);
        assert_eq!(batch.clean.len(), 1);
        assert_eq!(batch.clean.days[0], 25);
    }

    #[test]
    fn torn_batches_truncate_some_columns_and_filter_the_tail() {
        let mut rates = FaultRates::none();
        rates.truncate_batch = 1.0;
        let plan = FaultPlan::new(11, rates).unwrap();
        let columns = sample_columns(20);
        let batch = plan.corrupt_batch(4, &columns, 60);
        let torn = batch.expected_truncated as usize;
        assert!((1..=3).contains(&torn));
        assert_eq!(batch.delivered.volumes.len(), 20 - torn);
        assert_eq!(batch.delivered.days.len(), 20);
        assert_eq!(batch.clean.len(), 20 - torn);
    }

    #[test]
    fn delivery_reorders_locally_and_duplicates_exactly() {
        let mut rates = FaultRates::none();
        rates.reorder_batch = 0.5;
        rates.duplicate_batch = 0.5;
        let plan = FaultPlan::new(0x5eed, rates).unwrap();
        let batches: Vec<(u64, EventColumns)> =
            (0..32u64).map(|s| (s, sample_columns(3))).collect();
        let delivered = plan.deliver(2, &batches);
        assert_eq!(delivered, plan.deliver(2, &batches));
        // Every original batch appears at least once; displacement of the
        // first occurrence never exceeds 1; total length counts the dups.
        let mut dups = 0usize;
        let mut seen: Vec<u64> = Vec::new();
        for (pos, (seq, _)) in delivered.iter().enumerate() {
            if seen.contains(seq) {
                dups += 1;
            } else {
                seen.push(*seq);
                let original = *seq as i64;
                let first = (pos - dups) as i64;
                assert!(
                    (first - original).abs() <= 1,
                    "batch {seq} displaced from {original} to {first}"
                );
            }
        }
        assert_eq!(seen.len(), batches.len());
        assert_eq!(delivered.len(), batches.len() + dups);
        assert!(dups > 0, "duplicate rate 0.5 over 32 batches drew none");
    }

    #[test]
    fn expected_intake_implements_the_validation_order() {
        let mut columns = EventColumns::default();
        columns.push_resolved(1, 0, AccessKind::Read, 1.0); // folded
        columns.push_resolved(99, 0, AccessKind::Read, f64::NAN); // dropped, not quarantined
        columns.push_resolved(2, 9, AccessKind::Read, -1.0); // quarantined (unknown id!)
        columns.push_resolved(3, 9, AccessKind::Read, 1.0); // unknown
        let out = expected_intake(&[columns], 60, 5, 16);
        assert_eq!(out.folded, 1);
        assert_eq!(out.dropped, 1);
        assert_eq!(out.quarantined, 1);
        assert_eq!(out.unknown, 1);
        assert_eq!(out.events_seen, 4);
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.records[0].ordinal, 2);
        assert_eq!(out.records[0].reason, QuarantineReason::NegativeVolume);
    }
}
