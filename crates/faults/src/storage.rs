//! Seeded storage-fault plans for the write-ahead intake journal.
//!
//! [`StorageFaultPlan`] extends the chaos vocabulary below the engine:
//! instead of corrupting *events*, it corrupts the *storage operations*
//! the journal performs — failed and partial appends, failed syncs, torn
//! tails at crash, bit rot in durable bytes, and the crash schedule
//! itself. Like [`crate::FaultPlan`] it is a pure function of
//! `(seed, generation, op index)`: replaying the same plan over the same
//! operation stream injects bit-identical faults.
//!
//! The **generation** axis is what keeps crash-recovery loops live: the
//! recovery harness bumps the generation on every crash, so an operation
//! that failed in generation `g` re-draws in generation `g + 1` instead
//! of deterministically failing forever. (The per-process op counter
//! resets at a crash; without the generation mixed in, the replayed op
//! stream would hit the exact same faults and livelock.)
//!
//! [`FaultyStorage`] wraps any [`Storage`] backend and applies the plan
//! on the journal's durability hot path — `append` and `sync` — turning
//! draws into typed [`WalError::Io`] failures (with partial appends
//! leaving a real prefix behind, exactly what a failed `write` syscall
//! can do). Crash shapes that need backend cooperation (torn tails, bit
//! flips) stay in the harness: the plan picks *where*, the in-memory
//! backend's corruption hooks do *how*.

use crate::{FaultError, FaultPlan, FaultRates};
use scope_wal::{Storage, WalError};

/// Domain separators for storage draws, disjoint from the intake/compute
/// domains in the crate root (`0x01..=0x08`).
const DOMAIN_STORE_APPEND: u64 = 0x09;
const DOMAIN_STORE_PARTIAL: u64 = 0x0a;
const DOMAIN_STORE_SYNC: u64 = 0x0b;
const DOMAIN_STORE_CRASH: u64 = 0x0c;
const DOMAIN_STORE_TORN: u64 = 0x0d;
const DOMAIN_STORE_FLIP: u64 = 0x0e;
const DOMAIN_STORE_FUZZ: u64 = 0x0f;

/// Per-kind storage fault probabilities, each in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageFaultRates {
    /// Per-append probability the append fails outright (no bytes land).
    pub fail_append: f64,
    /// Per-append probability of a partial write: a strict prefix of the
    /// bytes lands, then the append reports failure.
    pub partial_append: f64,
    /// Per-sync probability the durability barrier fails.
    pub fail_sync: f64,
    /// Per-crash probability the crash tears the last pending object
    /// (an arbitrary prefix of its unsynced tail survives).
    pub torn_tail: f64,
    /// Per-crash probability one durable bit flips somewhere.
    pub bit_flip: f64,
    /// Per-opportunity probability of a crash (the harness samples this
    /// at its crash points, e.g. after each delivery).
    pub crash: f64,
}

impl StorageFaultRates {
    /// No storage faults at all.
    pub fn none() -> Self {
        StorageFaultRates {
            fail_append: 0.0,
            partial_append: 0.0,
            fail_sync: 0.0,
            torn_tail: 0.0,
            bit_flip: 0.0,
            crash: 0.0,
        }
    }

    /// Rare failures, occasional crashes with mild corruption.
    pub fn light() -> Self {
        StorageFaultRates {
            fail_append: 0.01,
            partial_append: 0.01,
            fail_sync: 0.02,
            torn_tail: 0.25,
            bit_flip: 0.10,
            crash: 0.05,
        }
    }

    /// Frequent failures, crash-heavy, corruption on most crashes.
    pub fn heavy() -> Self {
        StorageFaultRates {
            fail_append: 0.05,
            partial_append: 0.05,
            fail_sync: 0.10,
            torn_tail: 0.50,
            bit_flip: 0.30,
            crash: 0.15,
        }
    }

    fn validate(&self) -> Result<(), FaultError> {
        for (name, value) in [
            ("fail_append", self.fail_append),
            ("partial_append", self.partial_append),
            ("fail_sync", self.fail_sync),
            ("torn_tail", self.torn_tail),
            ("bit_flip", self.bit_flip),
            ("crash", self.crash),
        ] {
            if !(0.0..=1.0).contains(&value) || !value.is_finite() {
                return Err(FaultError::InvalidRate { name, value });
            }
        }
        Ok(())
    }
}

/// What a plan injects into one append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendFault {
    /// The append fails; no bytes reach the backend.
    Fail,
    /// A strict prefix of this many bytes lands, then the append fails.
    Partial(usize),
}

/// A seeded, stateless storage-fault schedule (see the [module
/// docs](self)).
#[derive(Debug, Clone, PartialEq)]
pub struct StorageFaultPlan {
    draws: FaultPlan,
    rates: StorageFaultRates,
}

impl StorageFaultPlan {
    /// Build a plan; every rate must be a probability in `[0, 1]`.
    pub fn new(seed: u64, rates: StorageFaultRates) -> Result<Self, FaultError> {
        rates.validate()?;
        Ok(StorageFaultPlan {
            // Reuse the crate's mix/chance stream; storage rates live
            // here, so the embedded intake rates are all-zero.
            draws: FaultPlan::new(seed, FaultRates::none())?,
            rates,
        })
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.draws.seed()
    }

    /// The plan's rates.
    pub fn rates(&self) -> &StorageFaultRates {
        &self.rates
    }

    /// The fault (if any) injected into append number `op` of crash
    /// generation `generation`; `len` is the append's byte length.
    pub fn append_fault(&self, generation: u64, op: u64, len: usize) -> Option<AppendFault> {
        if self
            .draws
            .chance(DOMAIN_STORE_APPEND, generation, op, self.rates.fail_append)
        {
            return Some(AppendFault::Fail);
        }
        if len > 1
            && self.draws.chance(
                DOMAIN_STORE_PARTIAL,
                generation,
                op,
                self.rates.partial_append,
            )
        {
            let keep =
                1 + (self.draws.mix(DOMAIN_STORE_PARTIAL, generation, !op) as usize % (len - 1));
            return Some(AppendFault::Partial(keep));
        }
        None
    }

    /// Whether sync number `op` of `generation` fails.
    pub fn sync_fails(&self, generation: u64, op: u64) -> bool {
        self.draws
            .chance(DOMAIN_STORE_SYNC, generation, op, self.rates.fail_sync)
    }

    /// Whether the harness crashes at crash-opportunity `op` of
    /// `generation`.
    pub fn crash_at(&self, generation: u64, op: u64) -> bool {
        self.draws
            .chance(DOMAIN_STORE_CRASH, generation, op, self.rates.crash)
    }

    /// For a crash with `pending` unsynced bytes in the tail object: how
    /// many of them a torn write leaves durable, or `None` when this
    /// crash does not tear (all pending bytes are simply lost).
    pub fn torn_keep(&self, generation: u64, op: u64, pending: usize) -> Option<usize> {
        if pending == 0
            || !self
                .draws
                .chance(DOMAIN_STORE_TORN, generation, op, self.rates.torn_tail)
        {
            return None;
        }
        Some(self.draws.mix(DOMAIN_STORE_TORN, generation, !op) as usize % pending)
    }

    /// For a crash: the durable bit to flip (the harness takes it modulo
    /// the chosen object's bit length), or `None` when this crash leaves
    /// durable bytes intact.
    pub fn flip_bit(&self, generation: u64, op: u64) -> Option<u64> {
        if !self
            .draws
            .chance(DOMAIN_STORE_FLIP, generation, op, self.rates.bit_flip)
        {
            return None;
        }
        Some(self.draws.mix(DOMAIN_STORE_FLIP, generation, !op))
    }

    /// `k` distinct, sorted crash points in `0..n` (fuzzed positions in
    /// an `n`-operation schedule). Deterministic in the seed; returns
    /// fewer only when `n < k`.
    pub fn fuzz_points(&self, n: u64, k: usize) -> Vec<u64> {
        let k = (k as u64).min(n);
        let mut points = Vec::new();
        let mut draw = 0u64;
        while (points.len() as u64) < k {
            let p = self.draws.mix(DOMAIN_STORE_FUZZ, draw, 0) % n;
            if !points.contains(&p) {
                points.push(p);
            }
            draw += 1;
        }
        points.sort_unstable();
        points
    }
}

/// A [`Storage`] backend with plan-driven fault injection on the
/// durability hot path (`append` and `sync`). All other operations pass
/// through untouched — recovery itself is assumed reliable; what is
/// being tested is what recovery finds.
#[derive(Debug, Clone)]
pub struct FaultyStorage<S: Storage> {
    inner: S,
    plan: StorageFaultPlan,
    generation: u64,
    ops: u64,
}

impl<S: Storage> FaultyStorage<S> {
    /// Wrap `inner` under `plan`, starting at crash generation 0.
    pub fn new(inner: S, plan: StorageFaultPlan) -> Self {
        FaultyStorage {
            inner,
            plan,
            generation: 0,
            ops: 0,
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Mutable access to the wrapped backend (for the harness's crash
    /// corruption hooks).
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Unwrap the backend.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// The current crash generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Fault-relevant operations (appends + syncs) performed so far in
    /// this generation.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Record a crash: bump the generation and reset the op counter, so
    /// the replayed operation stream draws a fresh fault schedule
    /// instead of deterministically re-failing.
    pub fn bump_generation(&mut self) {
        self.generation += 1;
        self.ops = 0;
    }

    fn injected(op: &'static str, what: &str, object: &str) -> WalError {
        WalError::Io {
            object: object.to_string(),
            op,
            reason: format!("injected fault: {what}"),
        }
    }
}

impl<S: Storage> Storage for FaultyStorage<S> {
    fn list(&self) -> Result<Vec<String>, WalError> {
        self.inner.list()
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, WalError> {
        self.inner.read(name)
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), WalError> {
        let op = self.ops;
        self.ops += 1;
        match self.plan.append_fault(self.generation, op, bytes.len()) {
            Some(AppendFault::Fail) => Err(Self::injected("append", "write failed", name)),
            Some(AppendFault::Partial(keep)) => {
                self.inner.append(name, &bytes[..keep])?;
                Err(Self::injected("append", "partial write", name))
            }
            None => self.inner.append(name, bytes),
        }
    }

    fn sync(&mut self, name: &str) -> Result<(), WalError> {
        let op = self.ops;
        self.ops += 1;
        if self.plan.sync_fails(self.generation, op) {
            return Err(Self::injected("sync", "sync failed", name));
        }
        self.inner.sync(name)
    }

    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> Result<(), WalError> {
        self.inner.write_atomic(name, bytes)
    }

    fn delete(&mut self, name: &str) -> Result<(), WalError> {
        self.inner.delete(name)
    }

    fn truncate(&mut self, name: &str, len: u64) -> Result<(), WalError> {
        self.inner.truncate(name, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_wal::MemStorage;

    #[test]
    fn storage_rates_are_validated() {
        let mut rates = StorageFaultRates::none();
        rates.bit_flip = -0.1;
        assert_eq!(
            StorageFaultPlan::new(1, rates).unwrap_err(),
            FaultError::InvalidRate {
                name: "bit_flip",
                value: -0.1
            }
        );
        assert!(StorageFaultPlan::new(1, StorageFaultRates::heavy()).is_ok());
    }

    #[test]
    fn plans_are_pure_and_generation_sensitive() {
        let a = StorageFaultPlan::new(0xfeed, StorageFaultRates::heavy()).unwrap();
        let b = StorageFaultPlan::new(0xfeed, StorageFaultRates::heavy()).unwrap();
        for gen in 0..4u64 {
            for op in 0..64u64 {
                assert_eq!(a.append_fault(gen, op, 100), b.append_fault(gen, op, 100));
                assert_eq!(a.sync_fails(gen, op), b.sync_fails(gen, op));
                assert_eq!(a.crash_at(gen, op), b.crash_at(gen, op));
                assert_eq!(a.torn_keep(gen, op, 40), b.torn_keep(gen, op, 40));
                assert_eq!(a.flip_bit(gen, op), b.flip_bit(gen, op));
            }
        }
        // The same op stream draws differently across generations
        // somewhere — this is the livelock escape hatch.
        let g0: Vec<_> = (0..64u64).map(|op| a.append_fault(0, op, 100)).collect();
        let g1: Vec<_> = (0..64u64).map(|op| a.append_fault(1, op, 100)).collect();
        assert_ne!(g0, g1, "generations drew identical append schedules");
    }

    #[test]
    fn zero_rates_pass_through_and_unit_rates_always_fault() {
        let mut store = FaultyStorage::new(
            MemStorage::new(),
            StorageFaultPlan::new(9, StorageFaultRates::none()).unwrap(),
        );
        for op in 0..32 {
            store.append("a", &[op as u8; 16]).unwrap();
        }
        store.sync("a").unwrap();
        assert_eq!(store.read("a").unwrap().len(), 32 * 16);

        let mut rates = StorageFaultRates::none();
        rates.fail_append = 1.0;
        rates.fail_sync = 1.0;
        let mut store =
            FaultyStorage::new(MemStorage::new(), StorageFaultPlan::new(9, rates).unwrap());
        assert!(matches!(
            store.append("a", b"xx"),
            Err(WalError::Io { op: "append", .. })
        ));
        assert!(matches!(
            store.sync("a"),
            Err(WalError::Io { op: "sync", .. })
        ));
        // Nothing leaked through.
        assert!(store.inner().durable_objects().is_empty());
        assert!(store.inner().pending_objects().is_empty());
    }

    #[test]
    fn partial_appends_leave_a_strict_prefix_then_fail() {
        let mut rates = StorageFaultRates::none();
        rates.partial_append = 1.0;
        let mut store =
            FaultyStorage::new(MemStorage::new(), StorageFaultPlan::new(5, rates).unwrap());
        let bytes = [7u8; 64];
        assert!(matches!(
            store.append("seg", &bytes),
            Err(WalError::Io { op: "append", .. })
        ));
        let landed = store.inner().pending_objects();
        assert_eq!(landed.len(), 1);
        assert!((1..64).contains(&landed[0].1), "prefix must be strict");
        // Single-byte appends cannot be torn — they fail whole or land.
        store.bump_generation();
        let before = store.inner().pending_objects();
        let _ = store.append("seg", &[1u8]);
        let after = store.inner().pending_objects();
        assert!(after == before || after[0].1 == before[0].1 + 1);
    }

    #[test]
    fn torn_keep_and_flip_bit_shape_their_draws() {
        let plan = StorageFaultPlan::new(0xabc, StorageFaultRates::heavy()).unwrap();
        assert_eq!(plan.torn_keep(0, 0, 0), None, "no pending bytes, no tear");
        let mut tore = 0;
        for op in 0..64u64 {
            if let Some(keep) = plan.torn_keep(1, op, 40) {
                assert!(keep < 40);
                tore += 1;
            }
        }
        assert!(tore > 0, "torn_tail 0.5 over 64 crashes drew none");
        let none = StorageFaultPlan::new(0xabc, StorageFaultRates::none()).unwrap();
        assert_eq!(none.torn_keep(1, 3, 40), None);
        assert_eq!(none.flip_bit(1, 3), None);
    }

    #[test]
    fn fuzz_points_are_distinct_sorted_and_in_range() {
        let plan = StorageFaultPlan::new(0x77, StorageFaultRates::none()).unwrap();
        let points = plan.fuzz_points(100, 5);
        assert_eq!(points, plan.fuzz_points(100, 5));
        assert_eq!(points.len(), 5);
        assert!(points.windows(2).all(|w| w[0] < w[1]));
        assert!(points.iter().all(|&p| p < 100));
        // Tiny schedules clamp instead of spinning.
        assert_eq!(plan.fuzz_points(2, 5).len(), 2);
        assert_eq!(plan.fuzz_points(0, 5), Vec::<u64>::new());
    }
}
