//! # scope
//!
//! Umbrella crate for the SCOPe reproduction ("Towards Optimizing Storage
//! Costs on the Cloud", ICDE 2023). It re-exports the workspace crates so
//! downstream users can depend on a single package, and it owns the
//! workspace-level integration tests (`tests/`) and examples (`examples/`).

pub use scope_cloudsim as cloudsim;
pub use scope_compredict as compredict;
pub use scope_compress as compress;
pub use scope_core as core;
pub use scope_datapart as datapart;
pub use scope_learn as learn;
pub use scope_optassign as optassign;
pub use scope_table as table;
pub use scope_workload as workload;
