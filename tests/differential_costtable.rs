//! Differential proptests for the cost-table engine and the deterministic
//! parallel fan-out.
//!
//! The PR-4 contract is *bit-for-bit* equivalence, not approximate
//! agreement: the table-driven greedy / branch-and-bound / Hungarian
//! matching must return **exactly** the assignments (choices, objective
//! f64s, breakdowns) of the historical model-driven paths preserved in
//! `scope_optassign::reference`; the cached schedule DP must return exactly
//! the plans of the uncached transition arithmetic (replicated here as an
//! independent oracle); the predictor's label encoding must equal
//! reference-greedy labels; and the parallel fan-outs (cost-table build,
//! per-dataset schedule planning, the core sweeps) must equal their
//! sequential loops. Every comparison below is `assert_eq!` on structures
//! containing raw `f64`s — no tolerances.

use proptest::prelude::*;
use scope_cloudsim::parallel::parallel_map_with_threads;
use scope_cloudsim::{CostModel, ProviderCatalog, TierCatalog, TierId, DAYS_PER_MONTH};
use scope_optassign::reference::{
    solve_branch_and_bound_reference, solve_equal_size_matching_reference, solve_greedy_reference,
};
use scope_optassign::{
    ideal_tier_labels, plan_tier_schedule_with_model, solve_branch_and_bound,
    solve_equal_size_matching, solve_greedy, CompressionOption, OptAssignProblem, PartitionSpec,
    PeriodAccess, ScheduleOptions, TierSchedule,
};

/// Random OPTASSIGN instance over either the Azure ladder or the merged
/// 3-provider catalog, with mixed current tiers, residencies, latency
/// thresholds and compression options.
#[allow(clippy::too_many_arguments)]
fn build_problem(
    multi: bool,
    n_parts: usize,
    sizes: &[f64],
    accesses: &[f64],
    ratios: &[f64],
    thresholds: &[f64],
    current_picks: &[usize],
    residencies: &[u32],
) -> OptAssignProblem {
    let providers = ProviderCatalog::azure_s3_gcs();
    let n_tiers = if multi { 12 } else { 4 };
    let parts: Vec<PartitionSpec> = (0..n_parts)
        .map(|i| {
            let mut p = PartitionSpec::new(
                i,
                format!("p{i}"),
                sizes[i % sizes.len()],
                accesses[i % accesses.len()],
            )
            .with_compression_option(CompressionOption::new(
                "z",
                ratios[i % ratios.len()],
                ratios[(i + 1) % ratios.len()] / 4.0,
            ))
            .with_residency_days(residencies[i % residencies.len()]);
            // Thresholds drawn log-ish: some exclude archives, some nothing.
            let thr = thresholds[i % thresholds.len()];
            if thr < 5.0 {
                p = p.with_latency_threshold(thr.max(0.2));
            }
            let pick = current_picks[i % current_picks.len()];
            if pick % (n_tiers + 1) < n_tiers {
                p = p.with_current_tier(TierId(pick % (n_tiers + 1)));
            }
            p
        })
        .collect();
    if multi {
        OptAssignProblem::multi_provider(&providers, parts, 6.0)
    } else {
        OptAssignProblem::new(TierCatalog::azure_adls_gen2(), parts, 6.0)
    }
}

/// Independent re-implementation of the schedule DP *without* the hoisted
/// stay/change cost tables — the exact pre-PR-4 transition arithmetic,
/// evaluated through the model on every transition. Serves as the
/// bit-for-bit oracle for the cached DP.
fn plan_tier_schedule_uncached(
    model: &CostModel,
    size_gb: f64,
    periods: &[PeriodAccess],
    options: &ScheduleOptions,
) -> TierSchedule {
    let catalog = model.catalog();
    let usable: Vec<TierId> = catalog
        .iter()
        .filter(|(_, t)| t.ttfb_seconds <= options.latency_threshold_seconds)
        .map(|(id, _)| id)
        .collect();
    assert!(!usable.is_empty());
    let retier_every = options.retier_every.max(1);
    let period_cost = |tier: TierId, access: &PeriodAccess| {
        model.storage_cost(tier, size_gb, 1.0)
            + model.read_cost(tier, access.read_gb, 1.0)
            + model.write_cost(tier, access.write_gb)
    };
    let penalty = |tier: TierId, days: u32| {
        model
            .early_deletion_penalty(tier, size_gb, days)
            .expect("tier from this catalog")
    };
    let n = periods.len();
    let n_tiers = usable.len();
    let idx = |t: usize, e: usize| t * n + e;
    let inf = f64::INFINITY;
    let mut cost = vec![inf; n_tiers * n];
    let mut parents: Vec<Vec<usize>> = Vec::with_capacity(n);
    for (ti, &tier) in usable.iter().enumerate() {
        let mut c = model.tier_change_cost(options.current_tier, tier, size_gb);
        if let Some(from) = options.current_tier {
            if from != tier {
                c += penalty(from, options.residency_days);
            }
        }
        c += period_cost(tier, &periods[0]);
        cost[idx(ti, 0)] = c;
    }
    parents.push(vec![usize::MAX; n_tiers * n]);
    for (p, period) in periods.iter().enumerate().skip(1) {
        let mut next = vec![inf; n_tiers * n];
        let mut parent = vec![usize::MAX; n_tiers * n];
        let may_move = (p as u32) % retier_every == 0;
        for (ti, &tier) in usable.iter().enumerate() {
            for e in 0..p {
                let s = idx(ti, e);
                if cost[s] == inf {
                    continue;
                }
                let stay = cost[s] + period_cost(tier, period);
                if stay < next[s] {
                    next[s] = stay;
                    parent[s] = s;
                }
                if !may_move {
                    continue;
                }
                let mut days_served = (p - e) as u32 * DAYS_PER_MONTH;
                if e == 0 && options.current_tier == Some(tier) {
                    days_served += options.residency_days;
                }
                let pen = penalty(tier, days_served);
                for (ui, &to) in usable.iter().enumerate() {
                    if ui == ti {
                        continue;
                    }
                    let c = cost[s]
                        + model.tier_change_cost(Some(tier), to, size_gb)
                        + pen
                        + period_cost(to, period);
                    let d = idx(ui, p);
                    if c < next[d] {
                        next[d] = c;
                        parent[d] = s;
                    }
                }
            }
        }
        cost = next;
        parents.push(parent);
    }
    let (mut best_state, best_cost) = cost
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, &c)| (i, c))
        .unwrap();
    assert!(best_cost.is_finite());
    let mut tiers = vec![usable[0]; n];
    for p in (0..n).rev() {
        tiers[p] = usable[best_state / n];
        best_state = parents[p][best_state];
    }
    TierSchedule {
        tiers,
        planned_cost: best_cost,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Table-driven greedy ≡ model-driven greedy, bit for bit (choices,
    /// objective and breakdown f64s), on single- and multi-provider
    /// instances.
    #[test]
    fn table_greedy_is_bit_identical_to_model_greedy(
        n_parts in 1usize..8,
        sizes in proptest::collection::vec(0.1f64..500.0, 4),
        accesses in proptest::collection::vec(0.0f64..300.0, 4),
        ratios in proptest::collection::vec(1.1f64..8.0, 4),
        thresholds in proptest::collection::vec(0.0f64..10.0, 4),
        current_picks in proptest::collection::vec(0usize..16, 4),
        residencies in proptest::collection::vec(0u32..200, 4),
        multi in proptest::arbitrary::any::<bool>(),
    ) {
        let problem = build_problem(
            multi, n_parts, &sizes, &accesses, &ratios, &thresholds, &current_picks, &residencies,
        );
        match (solve_greedy(&problem), solve_greedy_reference(&problem)) {
            (Ok(table), Ok(reference)) => prop_assert_eq!(table, reference),
            (Err(_), Err(_)) => {} // both report the same infeasibility
            (a, b) => prop_assert!(false, "paths disagree: {a:?} vs {b:?}"),
        }
    }

    /// Table-driven B&B ≡ model-driven B&B: identical assignments *and*
    /// identical search statistics (same candidates → same tree).
    #[test]
    fn table_branch_and_bound_is_bit_identical_to_model_path(
        n_parts in 1usize..6,
        sizes in proptest::collection::vec(0.1f64..200.0, 4),
        accesses in proptest::collection::vec(0.0f64..300.0, 4),
        ratios in proptest::collection::vec(1.1f64..8.0, 4),
        thresholds in proptest::collection::vec(0.0f64..10.0, 4),
        current_picks in proptest::collection::vec(0usize..16, 4),
        residencies in proptest::collection::vec(0u32..200, 4),
        cap_units in proptest::collection::vec(0usize..5, 2),
        multi in proptest::arbitrary::any::<bool>(),
    ) {
        let mut problem = build_problem(
            multi, n_parts, &sizes, &accesses, &ratios, &thresholds, &current_picks, &residencies,
        );
        // Bound a couple of tiers (by name, ladder-dependent) so the search
        // actually branches; leave the archives unbounded for feasibility.
        let bounded = if multi { ["azure:Premium", "s3:Standard"] } else { ["Premium", "Hot"] };
        for (name, &units) in bounded.iter().zip(&cap_units) {
            problem.catalog.set_capacity(name, 50.0 * units as f64).unwrap();
        }
        match (
            solve_branch_and_bound(&problem, 2_000_000),
            solve_branch_and_bound_reference(&problem, 2_000_000),
        ) {
            (Ok((ta, ts)), Ok((ra, rs))) => {
                prop_assert_eq!(ta, ra);
                prop_assert_eq!(ts, rs);
            }
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "paths disagree: {a:?} vs {b:?}"),
        }
    }

    /// Table-driven Hungarian matching ≡ model-driven matching on random
    /// capacity-bounded equal-size instances.
    #[test]
    fn table_matching_is_bit_identical_to_model_path(
        n_parts in 1usize..7,
        size in 1.0f64..100.0,
        accesses in proptest::collection::vec(0.0f64..5000.0, 4),
        thresholds in proptest::collection::vec(0.0f64..10.0, 4),
        cap_units in proptest::collection::vec(0usize..4, 3),
        multi in proptest::arbitrary::any::<bool>(),
    ) {
        let providers = ProviderCatalog::azure_s3_gcs();
        let n_tiers = if multi { 12 } else { 4 };
        let parts: Vec<PartitionSpec> = (0..n_parts)
            .map(|i| {
                let mut p = PartitionSpec::new(i, format!("p{i}"), size, accesses[i % accesses.len()]);
                let thr = thresholds[i % thresholds.len()];
                if thr < 5.0 {
                    p = p.with_latency_threshold(thr.max(0.2));
                }
                let _ = n_tiers;
                p
            })
            .collect();
        let mut problem = if multi {
            OptAssignProblem::multi_provider(&providers, parts, 6.0)
        } else {
            OptAssignProblem::new(TierCatalog::azure_adls_gen2(), parts, 6.0)
        };
        let bounded = if multi { ["azure:Hot", "gcs:Standard", "s3:Standard-IA"] } else { ["Premium", "Hot", "Cool"] };
        for (name, &units) in bounded.iter().zip(&cap_units) {
            problem.catalog.set_capacity(name, size * units as f64).unwrap();
        }
        match (
            solve_equal_size_matching(&problem),
            solve_equal_size_matching_reference(&problem),
        ) {
            (Ok(table), Ok(reference)) => prop_assert_eq!(table, reference),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "paths disagree: {a:?} vs {b:?}"),
        }
    }

    /// The cached schedule DP ≡ the uncached per-transition arithmetic, bit
    /// for bit, including on egress-aware merged catalogs.
    #[test]
    fn cached_schedule_dp_is_bit_identical_to_uncached(
        n_periods in 1usize..6,
        volumes in proptest::collection::vec(0.0f64..500.0, 8),
        size_gb in 0.0f64..300.0,
        current_pick in 0usize..14,
        residency in 0u32..200,
        retier_every in 1u32..3,
        threshold in 0.0f64..10.0,
        multi in proptest::arbitrary::any::<bool>(),
    ) {
        let model = if multi {
            let providers = ProviderCatalog::azure_s3_gcs();
            CostModel::with_topology(providers.merged_catalog(), providers.topology())
        } else {
            CostModel::new(TierCatalog::azure_adls_gen2())
        };
        let n_tiers = model.catalog().len();
        let periods: Vec<PeriodAccess> = (0..n_periods)
            .map(|p| PeriodAccess::new(
                volumes[2 * p % volumes.len()],
                volumes[(2 * p + 1) % volumes.len()] / 10.0,
            ))
            .collect();
        // A sub-5s threshold keeps at least the fast tiers usable on both
        // ladders (ms-latency tiers exist everywhere).
        let latency = if threshold < 5.0 { threshold.max(0.2) } else { f64::INFINITY };
        let options = ScheduleOptions {
            current_tier: (current_pick % (n_tiers + 1) < n_tiers)
                .then_some(TierId(current_pick % (n_tiers + 1))),
            residency_days: residency,
            latency_threshold_seconds: latency,
            retier_every,
        };
        let cached = plan_tier_schedule_with_model(&model, size_gb, &periods, &options, None).unwrap();
        let uncached = plan_tier_schedule_uncached(&model, size_gb, &periods, &options);
        prop_assert_eq!(cached, uncached);
    }

    /// The deterministic fan-out returns exactly the sequential map for
    /// every thread count, on float-producing work.
    #[test]
    fn parallel_map_equals_sequential_for_any_thread_count(
        items in proptest::collection::vec(0.0f64..1000.0, 40),
        threads in 1usize..12,
    ) {
        let f = |i: usize, &x: &f64| (x * 1.000001 + i as f64).sqrt() * (x + 0.5).ln_1p();
        let sequential = parallel_map_with_threads(&items, 1, f);
        let parallel = parallel_map_with_threads(&items, threads, f);
        prop_assert_eq!(sequential, parallel);
    }
}

/// The predictor's label encoding is greedy-derived; it must equal the
/// labels obtained by running the *reference* greedy on the identically
/// constructed problem — i.e. the table rewrite changed nothing about what
/// the RF model trains on.
#[test]
fn ideal_tier_labels_match_reference_greedy_labels() {
    use scope_workload::{EnterpriseOptions, EnterpriseWorkload};
    let w = EnterpriseWorkload::generate(EnterpriseOptions {
        n_datasets: 80,
        history_months: 6,
        future_months: 4,
        seed: 11,
        ..Default::default()
    })
    .unwrap();
    let catalog = TierCatalog::azure_hot_cool_archive();
    let hot = catalog.tier_id("Hot").unwrap();
    let (from_month, horizon) = (6u32, 4u32);
    let labels =
        ideal_tier_labels(&catalog, &w.catalog, &w.series, from_month, horizon, hot).unwrap();

    // Reconstruct the label problem exactly as the predictor does and run
    // the model-driven reference greedy on it.
    let partitions: Vec<PartitionSpec> = w
        .catalog
        .iter()
        .map(|d| {
            let mut reads = 0.0;
            let mut volume_weighted_fraction = 0.0;
            for m in from_month..from_month + horizon {
                let acc = w.series.get(d.id, m);
                reads += acc.reads;
                volume_weighted_fraction += acc.reads * acc.read_fraction;
            }
            let read_fraction = if reads > 0.0 {
                (volume_weighted_fraction / reads).clamp(0.0, 1.0)
            } else {
                1.0
            };
            PartitionSpec::new(d.id, d.name.clone(), d.size_gb, reads)
                .with_latency_threshold(d.latency_threshold_seconds)
                .with_current_tier(hot)
                .with_read_fraction(read_fraction)
        })
        .collect();
    let problem = OptAssignProblem::new(catalog, partitions, horizon as f64);
    let reference = solve_greedy_reference(&problem).unwrap();
    let reference_labels: Vec<TierId> = reference.choices.iter().map(|&(t, _)| t).collect();
    assert_eq!(labels, reference_labels);
}

/// The parallel per-dataset schedule fan-out equals the sequential
/// per-dataset loop exactly.
#[test]
fn parallel_schedule_fanout_equals_sequential_planning() {
    use scope_optassign::ideal_tier_schedules_with_model;
    use scope_workload::{EnterpriseOptions, EnterpriseWorkload};
    let w = EnterpriseWorkload::generate(EnterpriseOptions {
        n_datasets: 60,
        history_months: 6,
        future_months: 4,
        seed: 23,
        ..Default::default()
    })
    .unwrap();
    let providers = ProviderCatalog::azure_s3_gcs();
    let model = CostModel::with_topology(providers.merged_catalog(), providers.topology());
    let home = providers.merged_tier_id("azure", "Hot").unwrap();
    let write_fraction = 0.05;
    let fanned = ideal_tier_schedules_with_model(
        &model,
        None,
        &w.catalog,
        &w.series,
        6,
        4,
        home,
        write_fraction,
        1,
    )
    .unwrap();
    // Sequential oracle: one plan_tier_schedule_with_model call per dataset.
    let sequential: Vec<TierSchedule> = w
        .catalog
        .iter()
        .map(|d| {
            let periods: Vec<PeriodAccess> = (6..10)
                .map(|m| {
                    let acc = w.series.get(d.id, m);
                    PeriodAccess {
                        read_gb: acc.reads * acc.read_fraction * d.size_gb,
                        write_gb: acc.writes * write_fraction * d.size_gb,
                    }
                })
                .collect();
            let options = ScheduleOptions {
                current_tier: Some(home),
                latency_threshold_seconds: d.latency_threshold_seconds,
                retier_every: 1,
                ..Default::default()
            };
            plan_tier_schedule_with_model(&model, d.size_gb, &periods, &options, None).unwrap()
        })
        .collect();
    assert_eq!(fanned, sequential);
}

/// The parallel tradeoff sweep equals running each α point on its own —
/// the fan-out merge cannot reorder or perturb the curve.
#[test]
fn parallel_tradeoff_sweep_equals_per_alpha_points() {
    use scope_core::scenario::{tpch_scenario, ScenarioOptions};
    use scope_core::tradeoff::{tradeoff_sweep, PredictorVariant};
    let inputs = tpch_scenario(&ScenarioOptions {
        nominal_total_gb: 1.0,
        generator_scale: 0.05,
        queries_per_template: 4,
        total_files: 24,
        ..Default::default()
    })
    .unwrap();
    let alphas = [0.0, 0.1, 0.3, 1.0, 3.0, 10.0];
    let swept = tradeoff_sweep(&inputs, PredictorVariant::RandomForest, &alphas, 1.0).unwrap();
    for (i, &alpha) in alphas.iter().enumerate() {
        let single =
            tradeoff_sweep(&inputs, PredictorVariant::RandomForest, &[alpha], 1.0).unwrap();
        assert_eq!(swept[i], single[0], "alpha = {alpha}");
    }
}
