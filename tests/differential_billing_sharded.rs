//! Differential pins for the PR-7 sharded billing engine: the
//! struct-of-arrays column replay
//! (`BillingSimulator::run_columns_with_threads`) must be **bit-for-bit**
//! identical to the preserved sequential engine
//! (`scope_cloudsim::reference::run_days_reference`) — monthly breakdowns,
//! per-object totals, `dropped_events` and error values — for every worker
//! thread count, including counts that split the object list and the trace
//! into uneven shards.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scope_cloudsim::reference::run_days_reference;
use scope_cloudsim::{
    BillingEvent, BillingSimulator, ObjectSpec, Placement, PlacementSchedule, TierCatalog,
    DAYS_PER_MONTH,
};

/// A randomized simulator + trace: objects across all azure tiers with
/// mixed schedules (constant, mid-horizon moves, day-0 moves, same-tier
/// recompressions), and a trace with reads, writes, unknown names and
/// beyond-horizon days. Object counts like 23 and thread counts like 7
/// guarantee uneven shards under the contiguous-chunk fan-out.
fn random_fixture(
    n_objects: usize,
    n_events: usize,
    seed: u64,
) -> (BillingSimulator, Vec<BillingEvent>, u32) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let catalog = TierCatalog::azure_adls_gen2();
    let tiers = [
        catalog.tier_id("Premium").unwrap(),
        catalog.tier_id("Hot").unwrap(),
        catalog.tier_id("Cool").unwrap(),
        catalog.tier_id("Archive").unwrap(),
    ];
    let horizon = DAYS_PER_MONTH * rng.gen_range(1u32..7);
    let mut sim = BillingSimulator::new(catalog);
    for i in 0..n_objects {
        let name = format!("obj-{i}");
        let spec = ObjectSpec::new(&name, rng.gen_range(0.1f64..400.0))
            .on_tier(tiers[rng.gen_range(0usize..4)])
            .with_residency_days(rng.gen_range(0u32..200));
        let placement = |rng: &mut SmallRng| Placement {
            tier: tiers[rng.gen_range(0usize..4)],
            compression_ratio: if rng.gen_bool(0.5) {
                1.0
            } else {
                rng.gen_range(1.1f64..6.0)
            },
            decompression_seconds: rng.gen_range(0.0f64..2.0),
        };
        let mut schedule = PlacementSchedule::constant(placement(&mut rng));
        for _ in 0..rng.gen_range(0usize..3) {
            schedule = schedule.with_transition(rng.gen_range(0..horizon + 5), placement(&mut rng));
        }
        sim.place_scheduled(spec, schedule).unwrap();
    }
    let mut events = Vec::with_capacity(n_events);
    for _ in 0..n_events {
        let name = if rng.gen_bool(0.05) {
            "no-such-object".to_string()
        } else {
            format!("obj-{}", rng.gen_range(0..n_objects.max(1)))
        };
        let day = rng.gen_range(0..horizon + DAYS_PER_MONTH); // some dropped
        let volume = rng.gen_range(0.0f64..50.0);
        events.push(if rng.gen_bool(0.2) {
            BillingEvent::write(name, day, volume)
        } else {
            BillingEvent::read(name, day, volume)
        });
    }
    (sim, events, horizon)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sharded_replay_is_bit_identical_to_sequential_reference(
        n_objects in 1usize..40,
        n_events in 0usize..600,
        seed in proptest::arbitrary::any::<u64>(),
    ) {
        let (sim, events, horizon) = random_fixture(n_objects, n_events, seed);
        let expected = run_days_reference(&sim, horizon, &events).unwrap();
        for threads in [1usize, 2, 7] {
            let got = sim.run_days_with_threads(horizon, &events, threads).unwrap();
            prop_assert_eq!(&got, &expected, "threads={}", threads);
        }
        // The column path over prebuilt columns agrees too, and the
        // default-thread entry point is just a special case of the same.
        let columns = sim.build_columns(&events);
        prop_assert_eq!(columns.len(), events.len());
        for threads in [1usize, 2, 7] {
            let got = sim.run_columns_with_threads(horizon, &columns, threads).unwrap();
            prop_assert_eq!(&got, &expected, "columns threads={}", threads);
        }
        prop_assert_eq!(&sim.run_days(horizon, &events).unwrap(), &expected);
    }

    /// Error agreement: a trace with invalid volumes must fail with the
    /// reference's exact error (the first invalid event in trace order),
    /// regardless of which shard computes it. NaN payloads break
    /// `PartialEq`, so errors are compared by their rendered form.
    #[test]
    fn sharded_replay_reports_reference_errors(
        n_objects in 1usize..20,
        n_events in 10usize..300,
        bad_slots in proptest::collection::vec(0usize..300, 3),
        seed in proptest::arbitrary::any::<u64>(),
    ) {
        let (sim, mut events, horizon) = random_fixture(n_objects, n_events, seed);
        let bad = [f64::NAN, -1.5, f64::INFINITY];
        for (k, slot) in bad_slots.iter().enumerate() {
            let i = slot % events.len();
            events[i].volume_gb = bad[k % bad.len()];
        }
        let expected = run_days_reference(&sim, horizon, &events);
        for threads in [1usize, 2, 7] {
            let got = sim.run_days_with_threads(horizon, &events, threads);
            prop_assert_eq!(format!("{:?}", got), format!("{:?}", expected), "threads={}", threads);
        }
    }

    /// `dropped_events` alone (cheap cross-check): counted identically
    /// however the trace is sharded, even when every event is dropped.
    #[test]
    fn dropped_event_counts_agree_across_thread_counts(
        n_events in 0usize..200,
        seed in proptest::arbitrary::any::<u64>(),
    ) {
        let (sim, mut events, horizon) = random_fixture(3, n_events, seed);
        // Push a prefix of the trace entirely past the horizon.
        for ev in events.iter_mut().take(n_events / 2) {
            ev.day += horizon;
        }
        let expected = run_days_reference(&sim, horizon, &events).unwrap();
        for threads in [1usize, 2, 7] {
            let got = sim.run_days_with_threads(horizon, &events, threads).unwrap();
            prop_assert_eq!(got.dropped_events, expected.dropped_events, "threads={}", threads);
            prop_assert_eq!(&got, &expected);
        }
    }
}
