//! Golden-pin test for the Table II enterprise experiment: the per-account
//! benefit percentages are snapshotted into a checked-in fixture and
//! compared for **exact** (shortest-round-trip formatted, i.e. bit-level)
//! equality. The whole pipeline — enterprise generator RNG, OPTASSIGN
//! labels, day-granular billing replay — is deterministic, so any drift in
//! these numbers means a refactor changed the paper's headline results and
//! must be reviewed (and, if intended, re-pinned).
//!
//! To re-pin after an *intentional* change:
//! `UPDATE_GOLDEN=1 cargo test --test golden_table2`

use scope_core::customer_benefit_table;
use scope_workload::EnterpriseOptions;

const FIXTURE: &str = "tests/fixtures/table2_golden.csv";

fn accounts() -> Vec<(String, EnterpriseOptions)> {
    let account = |seed: u64, n: usize| EnterpriseOptions {
        n_datasets: n,
        history_months: 10,
        future_months: 6,
        seed,
        ..Default::default()
    };
    vec![
        ("Customer A".to_string(), account(1, 120)),
        ("Customer B".to_string(), account(2, 90)),
        ("Customer C".to_string(), account(3, 60)),
    ]
}

/// Render the table with shortest-round-trip float formatting (`{:?}`):
/// parsing the field back yields the identical f64, so string equality is
/// bit-level equality of the results.
fn render() -> String {
    let rows = customer_benefit_table(&accounts()).expect("table II computes");
    let mut out = String::from("customer,total_size_pb,benefit_2_months,benefit_6_months\n");
    for r in &rows {
        out.push_str(&format!(
            "{},{:?},{:?},{:?}\n",
            r.customer, r.total_size_pb, r.benefit_2_months, r.benefit_6_months
        ));
    }
    out
}

#[test]
fn table2_benefits_match_the_pinned_fixture_exactly() {
    let actual = render();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(FIXTURE, &actual).expect("fixture written");
        return;
    }
    let expected = std::fs::read_to_string(FIXTURE)
        .expect("golden fixture exists (regenerate with UPDATE_GOLDEN=1)");
    assert_eq!(
        actual, expected,
        "Table II drifted from the pinned fixture. If the change is \
         intentional, re-pin with UPDATE_GOLDEN=1 cargo test --test golden_table2"
    );
}

#[test]
fn pinned_benefits_stay_in_the_papers_ballpark() {
    // Guard against re-pinning nonsense: the fixture itself must describe
    // the paper's qualitative result (50–92% six-month benefit, six-month
    // beats two-month).
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        // The sibling test is (re)writing the fixture concurrently; skip
        // the stale read and let the next plain run validate it.
        return;
    }
    let expected = std::fs::read_to_string(FIXTURE)
        .expect("golden fixture exists (regenerate with UPDATE_GOLDEN=1)");
    let mut rows = 0;
    for line in expected.lines().skip(1) {
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields.len(), 4, "malformed fixture line: {line}");
        let b2: f64 = fields[2].parse().unwrap();
        let b6: f64 = fields[3].parse().unwrap();
        assert!(
            (0.0..100.0).contains(&b2),
            "2-month benefit out of range: {b2}"
        );
        assert!(
            b6 > 20.0 && b6 < 100.0,
            "6-month benefit out of range: {b6}"
        );
        assert!(b6 > b2, "6-month benefit should exceed 2-month: {line}");
        rows += 1;
    }
    assert_eq!(rows, accounts().len());
}
