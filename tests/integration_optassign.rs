//! Integration and property-based tests of the OPTASSIGN solvers against
//! the cloud cost model.

use proptest::prelude::*;
use scope_cloudsim::{CostWeights, TierCatalog};
use scope_optassign::{
    solve_branch_and_bound, solve_equal_size_matching, solve_greedy, CompressionOption,
    OptAssignProblem, PartitionSpec,
};

fn partition(id: usize, size: f64, accesses: f64) -> PartitionSpec {
    PartitionSpec::new(id, format!("p{id}"), size, accesses)
        .with_compression_option(CompressionOption::new("gzip", 3.5, 4.0))
        .with_compression_option(CompressionOption::new("snappy", 1.8, 0.4))
}

#[test]
fn greedy_and_branch_and_bound_agree_without_capacities() {
    let catalog = TierCatalog::azure_adls_gen2();
    let parts: Vec<_> = (0..10)
        .map(|i| partition(i, 5.0 + 17.0 * i as f64, (i * i % 23) as f64))
        .collect();
    let problem = OptAssignProblem::new(catalog, parts, 6.0);
    let greedy = solve_greedy(&problem).unwrap();
    let (exact, stats) = solve_branch_and_bound(&problem, 10_000_000).unwrap();
    assert!(stats.proved_optimal);
    assert!((greedy.objective - exact.objective).abs() < 1e-6);
}

#[test]
fn matching_agrees_with_exact_solver_on_equal_size_instances() {
    let mut catalog = TierCatalog::azure_adls_gen2();
    catalog.set_capacity("Premium", 100.0).unwrap();
    catalog.set_capacity("Hot", 150.0).unwrap();
    let parts: Vec<_> = (0..6)
        .map(|i| PartitionSpec::new(i, format!("p{i}"), 50.0, (i * 40) as f64))
        .collect();
    let problem = OptAssignProblem::new(catalog, parts, 6.0);
    let matched = solve_equal_size_matching(&problem).unwrap();
    let (exact, stats) = solve_branch_and_bound(&problem, 10_000_000).unwrap();
    assert!(stats.proved_optimal);
    assert!(
        (matched.objective - exact.objective).abs() < 1e-6,
        "matching {} vs exact {}",
        matched.objective,
        exact.objective
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The greedy solution is optimal for every unbounded-capacity instance:
    /// no single-partition deviation can reduce the objective.
    #[test]
    fn greedy_has_no_improving_single_swap(
        sizes in proptest::collection::vec(1.0f64..500.0, 1..8),
        accesses in proptest::collection::vec(0.0f64..200.0, 8),
        horizon in 1.0f64..12.0,
    ) {
        let catalog = TierCatalog::azure_adls_gen2();
        let parts: Vec<_> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| partition(i, s, accesses[i % accesses.len()]))
            .collect();
        let problem = OptAssignProblem::new(catalog, parts, horizon);
        let solution = solve_greedy(&problem).unwrap();
        for (p, &(tier, k)) in problem.partitions.iter().zip(&solution.choices) {
            let chosen = problem.placement_cost(p, tier, k);
            for alt_tier in problem.catalog.tier_ids() {
                for alt_k in 0..p.compression_options.len() {
                    if problem.is_feasible(p, alt_tier, alt_k) {
                        prop_assert!(
                            chosen <= problem.placement_cost(p, alt_tier, alt_k) + 1e-9
                        );
                    }
                }
            }
        }
    }

    /// The objective value recomputed from the returned choices always
    /// matches the assignment's stored objective, and weighted objectives
    /// respond monotonically to scaling all weights.
    #[test]
    fn assignment_objective_is_consistent(
        sizes in proptest::collection::vec(1.0f64..300.0, 1..6),
        scale in 1.0f64..10.0,
    ) {
        let catalog = TierCatalog::azure_adls_gen2();
        let parts: Vec<_> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| partition(i, s, (i * 13 % 40) as f64))
            .collect();
        let problem = OptAssignProblem::new(catalog.clone(), parts.clone(), 6.0);
        let solution = solve_greedy(&problem).unwrap();
        let recomputed: f64 = problem
            .partitions
            .iter()
            .zip(&solution.choices)
            .map(|(p, &(t, k))| problem.placement_cost(p, t, k))
            .sum();
        prop_assert!((recomputed - solution.objective).abs() < 1e-6);

        // Scaling every weight scales the optimal objective by that factor.
        let scaled_problem = OptAssignProblem::new(catalog, parts, 6.0)
            .with_weights(CostWeights::new(scale, scale, scale));
        let scaled = solve_greedy(&scaled_problem).unwrap();
        prop_assert!((scaled.objective - scale * solution.objective).abs() < 1e-6 * scale.max(1.0));
    }

    /// Latency constraints are always respected by the greedy solution.
    #[test]
    fn latency_thresholds_are_respected(
        threshold in 0.05f64..10.0,
        size in 1.0f64..100.0,
        accesses in 0.0f64..100.0,
    ) {
        let catalog = TierCatalog::azure_adls_gen2();
        let parts = vec![partition(0, size, accesses).with_latency_threshold(threshold)];
        let problem = OptAssignProblem::new(catalog, parts, 6.0);
        if let Ok(solution) = solve_greedy(&problem) {
            let (tier, k) = solution.choices[0];
            prop_assert!(problem.latency_seconds(&problem.partitions[0], tier, k) <= threshold);
        }
    }
}
