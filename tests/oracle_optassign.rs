//! Oracle-grade tests for the optimizers: brute-force enumeration oracles
//! and differential tests between independent solvers.
//!
//! * The per-period schedule DP is checked against exhaustive enumeration
//!   of every `(tier, period)` plan on small instances (≤ 3 tiers × ≤ 4
//!   periods), in both single-provider and egress-aware two-provider
//!   catalogs — this is the class of instance where off-by-one-period
//!   residency bugs are visible.
//! * The greedy solver is checked against the exact branch-and-bound on
//!   random unbounded instances (where the documented approximation bound
//!   is *equality*, Theorem 3), and B&B is checked against the Hungarian
//!   matching on capacity-constrained equal-size instances (two exact
//!   solvers must agree).

use proptest::prelude::*;
use scope_cloudsim::{CostModel, Provider, ProviderCatalog, Tier, TierCatalog, TierId};
use scope_optassign::{
    plan_tier_schedule_with_model, schedule_cost_with_model, solve_branch_and_bound,
    solve_equal_size_matching, solve_greedy, CompressionOption, OptAssignProblem, PartitionSpec,
    PeriodAccess, ScheduleOptions,
};

/// Decode flat random vectors into a small tier ladder. `params` supplies
/// per-tier (storage, read, write, residency-days) draws.
fn small_catalog(n_tiers: usize, params: &[f64]) -> TierCatalog {
    let tiers = (0..n_tiers)
        .map(|t| {
            let at = |j: usize| params[(t * 4 + j) % params.len()];
            Tier::new(
                format!("t{t}"),
                0.1 + at(0),           // storage c/GB/mo in [0.1, 10.1)
                0.01 + at(1) / 2.0,    // read c/GB
                0.001 + at(2) / 100.0, // write c/GB
                0.01,
            )
            .with_early_deletion_days((at(3) * 12.0) as u32) // 0..120 days
        })
        .collect();
    TierCatalog::new(tiers).expect("non-empty ladder")
}

/// Enumerate every |tiers|^|periods| plan and return the cheapest cost.
fn brute_force_min(
    model: &CostModel,
    size_gb: f64,
    periods: &[PeriodAccess],
    options: &ScheduleOptions,
) -> f64 {
    let tier_ids = model.catalog().tier_ids();
    let n = periods.len();
    let mut best = f64::INFINITY;
    let mut plan = vec![0usize; n];
    loop {
        let tiers: Vec<TierId> = plan.iter().map(|&i| tier_ids[i]).collect();
        let cost = schedule_cost_with_model(model, size_gb, periods, &tiers, options)
            .expect("well-formed plan prices");
        // Respect the retier_every granularity the DP is constrained by:
        // skip plans that change tier at a disallowed boundary.
        let granular = tiers
            .windows(2)
            .enumerate()
            .all(|(p, w)| w[0] == w[1] || (p as u32 + 1) % options.retier_every.max(1) == 0);
        if granular && cost < best {
            best = cost;
        }
        // Odometer increment.
        let mut digit = 0;
        loop {
            if digit == n {
                return best;
            }
            plan[digit] += 1;
            if plan[digit] < tier_ids.len() {
                break;
            }
            plan[digit] = 0;
            digit += 1;
        }
    }
}

fn schedule_options(
    n_tiers: usize,
    current_pick: usize,
    residency: u32,
    retier_every: u32,
) -> ScheduleOptions {
    ScheduleOptions {
        // current_pick == n_tiers encodes "newly ingested".
        current_tier: (current_pick < n_tiers).then_some(TierId(current_pick)),
        residency_days: residency,
        latency_threshold_seconds: f64::INFINITY,
        retier_every,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The schedule DP's plan cost is exactly the minimum over all
    /// (tier, period) plans — the brute-force oracle.
    #[test]
    fn schedule_dp_is_exactly_minimal(
        n_tiers in 1usize..4,
        n_periods in 1usize..5,
        params in proptest::collection::vec(0.0f64..10.0, 12),
        volumes in proptest::collection::vec(0.0f64..500.0, 8),
        size_gb in 0.0f64..300.0,
        current_pick in 0usize..5,
        residency in 0u32..200,
        retier_every in 1u32..3,
    ) {
        let catalog = small_catalog(n_tiers, &params);
        let model = CostModel::new(catalog);
        let periods: Vec<PeriodAccess> = (0..n_periods)
            .map(|p| PeriodAccess::new(volumes[2 * p % volumes.len()], volumes[(2 * p + 1) % volumes.len()] / 10.0))
            .collect();
        let options = schedule_options(n_tiers, current_pick % (n_tiers + 1), residency, retier_every);
        let dp = plan_tier_schedule_with_model(&model, size_gb, &periods, &options, None).unwrap();
        let oracle = brute_force_min(&model, size_gb, &periods, &options);
        prop_assert!(
            (dp.planned_cost - oracle).abs() <= 1e-9 * (1.0 + oracle.abs()),
            "dp {} vs oracle {} (tiers {}, periods {})",
            dp.planned_cost, oracle, n_tiers, n_periods
        );
        // And the DP's own plan re-prices to its claimed cost.
        let repriced = schedule_cost_with_model(&model, size_gb, &periods, &dp.tiers, &options).unwrap();
        prop_assert!((dp.planned_cost - repriced).abs() <= 1e-9 * (1.0 + repriced.abs()));
    }

    /// Same oracle over an egress-aware two-provider catalog: the DP must
    /// stay exactly minimal when transitions carry egress charges.
    #[test]
    fn multi_provider_schedule_dp_is_exactly_minimal(
        n_periods in 1usize..5,
        params in proptest::collection::vec(0.0f64..10.0, 12),
        volumes in proptest::collection::vec(0.0f64..500.0, 8),
        size_gb in 0.0f64..300.0,
        egress_ab in 0.0f64..20.0,
        egress_ba in 0.0f64..20.0,
        current_pick in 0usize..4,
        residency in 0u32..200,
    ) {
        // Provider A: 2 tiers, provider B: 1 tier → merged 3-tier space.
        let providers = ProviderCatalog::new(
            vec![
                Provider { name: "a".to_string(), tiers: small_catalog(2, &params) },
                Provider { name: "b".to_string(), tiers: small_catalog(1, &params[4..]) },
            ],
            vec![vec![0.0, egress_ab], vec![egress_ba, 0.0]],
        ).unwrap();
        let model = CostModel::with_topology(providers.merged_catalog(), providers.topology());
        let periods: Vec<PeriodAccess> = (0..n_periods)
            .map(|p| PeriodAccess::new(volumes[2 * p % volumes.len()], volumes[(2 * p + 1) % volumes.len()] / 10.0))
            .collect();
        let options = schedule_options(3, current_pick % 4, residency, 1);
        let dp = plan_tier_schedule_with_model(&model, size_gb, &periods, &options, None).unwrap();
        let oracle = brute_force_min(&model, size_gb, &periods, &options);
        prop_assert!(
            (dp.planned_cost - oracle).abs() <= 1e-9 * (1.0 + oracle.abs()),
            "dp {} vs oracle {} (egress {} / {})",
            dp.planned_cost, oracle, egress_ab, egress_ba
        );
    }

    /// Differential: on unbounded instances greedy equals the exact
    /// branch-and-bound (Theorem 3 — the approximation bound is equality),
    /// in both single- and multi-provider tier spaces.
    #[test]
    fn greedy_matches_exact_solver_without_capacities(
        n_parts in 1usize..5,
        sizes in proptest::collection::vec(0.1f64..500.0, 4),
        accesses in proptest::collection::vec(0.0f64..300.0, 4),
        ratios in proptest::collection::vec(1.1f64..8.0, 4),
        current_picks in proptest::collection::vec(0usize..16, 4),
        residencies in proptest::collection::vec(0u32..200, 4),
        multi in proptest::arbitrary::any::<bool>(),
    ) {
        let providers = ProviderCatalog::azure_s3_gcs();
        let n_tiers = if multi { providers.merged_catalog().len() } else { 4 };
        let parts: Vec<PartitionSpec> = (0..n_parts)
            .map(|i| {
                let mut p = PartitionSpec::new(
                    i,
                    format!("p{i}"),
                    sizes[i % sizes.len()],
                    accesses[i % accesses.len()],
                )
                .with_compression_option(CompressionOption::new(
                    "z",
                    ratios[i % ratios.len()],
                    ratios[(i + 1) % ratios.len()] / 4.0,
                ))
                .with_residency_days(residencies[i % residencies.len()]);
                let pick = current_picks[i % current_picks.len()];
                if pick % (n_tiers + 1) < n_tiers {
                    p = p.with_current_tier(TierId(pick % (n_tiers + 1)));
                }
                p
            })
            .collect();
        let problem = if multi {
            OptAssignProblem::multi_provider(&providers, parts, 6.0)
        } else {
            OptAssignProblem::new(TierCatalog::azure_adls_gen2(), parts, 6.0)
        };
        let greedy = solve_greedy(&problem).unwrap();
        let (exact, stats) = solve_branch_and_bound(&problem, 50_000_000).unwrap();
        prop_assert!(stats.proved_optimal);
        // Greedy is never better than the proven optimum…
        prop_assert!(greedy.objective >= exact.objective - 1e-9 * (1.0 + exact.objective.abs()));
        // …and without capacities it attains it exactly.
        prop_assert!(
            (greedy.objective - exact.objective).abs() <= 1e-6 * (1.0 + exact.objective.abs()),
            "greedy {} vs exact {}", greedy.objective, exact.objective
        );
    }

    /// Differential: on capacity-constrained equal-size no-compression
    /// instances the two exact solvers (branch-and-bound, Hungarian
    /// matching) agree, and the capacity-oblivious greedy lower-bounds
    /// them.
    #[test]
    fn exact_solvers_agree_under_capacity_pressure(
        n_parts in 1usize..5,
        size in 1.0f64..100.0,
        accesses in proptest::collection::vec(0.0f64..5000.0, 4),
        cap_units in proptest::collection::vec(0usize..4, 3),
    ) {
        let mut catalog = TierCatalog::azure_adls_gen2();
        // Bound three tiers in units of the common partition size; leave
        // Archive unbounded so the instance is always feasible.
        for (name, &units) in ["Premium", "Hot", "Cool"].iter().zip(&cap_units) {
            catalog.set_capacity(name, size * units as f64).unwrap();
        }
        let parts: Vec<PartitionSpec> = (0..n_parts)
            .map(|i| PartitionSpec::new(i, format!("p{i}"), size, accesses[i % accesses.len()]))
            .collect();
        let problem = OptAssignProblem::new(catalog, parts, 6.0);
        let matched = solve_equal_size_matching(&problem).unwrap();
        let (exact, stats) = solve_branch_and_bound(&problem, 50_000_000).unwrap();
        prop_assert!(stats.proved_optimal);
        prop_assert!(
            (matched.objective - exact.objective).abs() <= 1e-6 * (1.0 + exact.objective.abs()),
            "matching {} vs b&b {}", matched.objective, exact.objective
        );
        // The capacity-free greedy is a valid lower bound on both.
        let greedy = solve_greedy(&problem).unwrap();
        prop_assert!(greedy.objective <= exact.objective + 1e-9 * (1.0 + exact.objective.abs()));
        // Capacities are actually respected by the exact solution.
        for (tier_id, tier) in problem.catalog.iter() {
            if let Some(cap) = tier.capacity_gb {
                let used: f64 = problem
                    .partitions
                    .iter()
                    .zip(&exact.choices)
                    .filter(|(_, &(t, _))| t == tier_id)
                    .map(|(p, &(_, k))| p.stored_gb(k))
                    .sum();
                prop_assert!(used <= cap + 1e-9, "{}: {} > {}", tier.name, used, cap);
            }
        }
    }
}
