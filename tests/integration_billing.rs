//! Integration and property-based tests of the day-granular billing
//! engine: cost invariants, the month-aligned equivalence contract, and
//! day-exact early-deletion accounting.

use proptest::prelude::*;
use scope_cloudsim::{
    billing::Placement, AccessEvent, AccessKind, BillingEvent, BillingReport, BillingSimulator,
    CostBreakdown, CostModel, MonthlyCost, ObjectSpec, PlacementSchedule, TierCatalog, TierId,
    DAYS_PER_MONTH,
};

/// A generated object + placement-schedule fixture, decoded from flat
/// proptest primitives.
struct Fixture {
    objects: Vec<(ObjectSpec, PlacementSchedule)>,
    events: Vec<BillingEvent>,
}

/// Decode flat random vectors into objects, schedules and events. `months`
/// aligns transitions to period boundaries when `month_aligned` is true;
/// otherwise transitions land on arbitrary days.
#[allow(clippy::too_many_arguments)]
fn build_fixture(
    catalog: &TierCatalog,
    sizes: &[f64],
    tier_picks: &[usize],
    residencies: &[u32],
    transition_days: &[u32],
    event_volumes: &[f64],
    horizon_days: u32,
    month_aligned: bool,
) -> Fixture {
    let n_tiers = catalog.len();
    let mut objects = Vec::new();
    for (i, &size) in sizes.iter().enumerate() {
        let pick = |j: usize| TierId(tier_picks[(i * 3 + j) % tier_picks.len()] % n_tiers);
        let current = if tier_picks[i % tier_picks.len()] % 3 == 0 {
            None
        } else {
            Some(pick(0))
        };
        let mut obj = ObjectSpec::new(format!("obj-{i}"), size)
            .with_residency_days(residencies[i % residencies.len()]);
        if let Some(t) = current {
            obj = obj.on_tier(t);
        }
        let mut schedule = PlacementSchedule::constant(Placement::uncompressed(pick(1)));
        let raw_day = transition_days[i % transition_days.len()] % horizon_days.max(1);
        let day = if month_aligned {
            (raw_day / DAYS_PER_MONTH) * DAYS_PER_MONTH
        } else {
            raw_day
        };
        if day > 0 {
            schedule = schedule.with_transition(day, Placement::uncompressed(pick(2)));
        }
        objects.push((obj, schedule));
    }
    let events = event_volumes
        .iter()
        .enumerate()
        .map(|(k, &v)| {
            let object = format!("obj-{}", k % sizes.len().max(1));
            let day = (transition_days[k % transition_days.len()] ^ k as u32) % (horizon_days + 5);
            if k % 3 == 0 {
                BillingEvent::write(object, day, v)
            } else {
                BillingEvent::read(object, day, v)
            }
        })
        .collect();
    Fixture { objects, events }
}

/// Independent reference implementation of the month-granular replay (the
/// legacy algorithm plus the residency-pro-rated early-deletion fix): whole
/// months of storage, moves and penalties booked in month 0, accesses in
/// their month. The day-granular engine must reproduce it bit-for-bit on
/// month-aligned inputs.
fn reference_monthly_replay(
    catalog: &TierCatalog,
    objects: &[(ObjectSpec, Placement)],
    horizon_months: u32,
    accesses: &[AccessEvent],
) -> BillingReport {
    let model = CostModel::new(catalog.clone());
    let mut months: Vec<MonthlyCost> = (0..horizon_months)
        .map(|m| MonthlyCost {
            month: m,
            ..Default::default()
        })
        .collect();
    let mut per_object: std::collections::BTreeMap<std::sync::Arc<str>, f64> =
        std::collections::BTreeMap::new();
    for (obj, placement) in objects {
        let stored_gb = obj.size_gb / placement.compression_ratio.max(f64::MIN_POSITIVE);
        let mut obj_total = 0.0;
        for m in months.iter_mut() {
            let c = model.storage_cost(placement.tier, stored_gb, 1.0);
            m.breakdown.storage += c;
            obj_total += c;
        }
        let change = model.tier_change_cost(obj.current_tier, placement.tier, stored_gb);
        months[0].breakdown.write += change;
        obj_total += change;
        if let Some(from) = obj.current_tier {
            if from != placement.tier {
                let from_tier = catalog.tier(from).unwrap();
                if from_tier.early_deletion_days > obj.residency_days {
                    let unmet = from_tier.early_deletion_days - obj.residency_days;
                    let penalty = from_tier.storage_cost_cents_per_gb_month
                        * obj.size_gb
                        * (unmet as f64 / 30.0);
                    months[0].early_deletion_penalty += penalty;
                    obj_total += penalty;
                }
            }
        }
        per_object.insert(obj.name.as_str().into(), obj_total);
    }
    let mut dropped_events = 0u64;
    for ev in accesses {
        if ev.month >= horizon_months {
            dropped_events += 1;
            continue;
        }
        let Some((_, placement)) = objects.iter().find(|(o, _)| o.name == ev.object) else {
            continue;
        };
        let effective_gb = ev.volume_gb / placement.compression_ratio.max(f64::MIN_POSITIVE);
        let m = &mut months[ev.month as usize];
        let cost = match ev.kind {
            AccessKind::Read => {
                let read = model.read_cost(placement.tier, effective_gb, 1.0);
                let decomp = model.decompression_cost(placement.decompression_seconds, 1.0);
                m.breakdown.read += read;
                m.breakdown.decompression += decomp;
                read + decomp
            }
            AccessKind::Write => {
                let w = model.write_cost(placement.tier, effective_gb);
                m.breakdown.write += w;
                w
            }
        };
        *per_object.entry(ev.object.as_str().into()).or_insert(0.0) += cost;
    }
    BillingReport {
        months,
        per_object,
        dropped_events,
    }
}

fn assert_finite_non_negative(report: &BillingReport) -> Result<(), String> {
    for m in &report.months {
        for c in [
            m.breakdown.storage,
            m.breakdown.read,
            m.breakdown.write,
            m.breakdown.decompression,
            m.early_deletion_penalty,
        ] {
            if !(c.is_finite() && c >= 0.0) {
                return Err(format!("month {} has invalid cost {c}", m.month));
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All costs of a day-granular run are finite and non-negative, the
    /// per-period totals sum to the report total, the component breakdowns
    /// sum consistently, and the per-object attribution accounts for every
    /// cent.
    #[test]
    fn day_engine_cost_invariants(
        sizes in proptest::collection::vec(0.0f64..2000.0, 1..6),
        tier_picks in proptest::collection::vec(0usize..12, 6),
        residencies in proptest::collection::vec(0u32..400, 4),
        transition_days in proptest::collection::vec(0u32..400, 5),
        event_volumes in proptest::collection::vec(0.0f64..100.0, 0..24),
        horizon_days in 1u32..220,
    ) {
        let catalog = TierCatalog::azure_adls_gen2();
        let fixture = build_fixture(
            &catalog, &sizes, &tier_picks, &residencies, &transition_days,
            &event_volumes, horizon_days, false,
        );
        let mut sim = BillingSimulator::new(catalog);
        for (obj, schedule) in &fixture.objects {
            sim.place_scheduled(obj.clone(), schedule.clone()).unwrap();
        }
        let report = sim.run_days(horizon_days, &fixture.events).unwrap();

        prop_assert_eq!(report.months.len() as u32, horizon_days.div_ceil(DAYS_PER_MONTH));
        prop_assert!(assert_finite_non_negative(&report).is_ok(),
            "{:?}", assert_finite_non_negative(&report));

        // Per-period totals sum to the grand total.
        let month_sum: f64 = report.months.iter().map(|m| m.total()).sum();
        prop_assert!((month_sum - report.total()).abs() <= 1e-9 * (1.0 + month_sum.abs()));

        // The breakdown aggregation is consistent with the period entries.
        let agg: CostBreakdown = report.total_breakdown();
        let agg_sum = agg.total()
            + report.months.iter().map(|m| m.early_deletion_penalty).sum::<f64>();
        prop_assert!((agg_sum - report.total()).abs() <= 1e-9 * (1.0 + report.total().abs()));

        // Every cent is attributed to an object (unknown-object events are
        // ignored by construction: all events name placed objects).
        let attributed: f64 = report.per_object.values().sum();
        prop_assert!(
            (attributed - report.total()).abs() <= 1e-6 * (1.0 + report.total().abs()),
            "attributed {} vs total {}", attributed, report.total()
        );

        // Dropped events are exactly the out-of-horizon ones.
        let expected_dropped = fixture.events.iter().filter(|e| e.day >= horizon_days).count() as u64;
        prop_assert_eq!(report.dropped_events, expected_dropped);
    }

    /// The equivalence contract of the refactor: on month-aligned inputs
    /// (constant placements, monthly events) the day-granular engine
    /// reproduces the legacy monthly replay **bit-for-bit** — same months,
    /// same per-object totals, same drop counts.
    #[test]
    fn day_engine_matches_legacy_monthly_replay_bit_for_bit(
        sizes in proptest::collection::vec(0.0f64..2000.0, 1..6),
        tier_picks in proptest::collection::vec(0usize..12, 6),
        residencies in proptest::collection::vec(0u32..400, 4),
        event_volumes in proptest::collection::vec(0.0f64..100.0, 0..24),
        event_months in proptest::collection::vec(0u32..10, 8),
        horizon_months in 1u32..8,
    ) {
        let catalog = TierCatalog::azure_adls_gen2();
        let n_tiers = catalog.len();
        let mut placed: Vec<(ObjectSpec, Placement)> = Vec::new();
        for (i, &size) in sizes.iter().enumerate() {
            let pick = |j: usize| TierId(tier_picks[(i * 3 + j) % tier_picks.len()] % n_tiers);
            let mut obj = ObjectSpec::new(format!("obj-{i}"), size)
                .with_residency_days(residencies[i % residencies.len()]);
            if tier_picks[i % tier_picks.len()] % 3 != 0 {
                obj = obj.on_tier(pick(0));
            }
            placed.push((obj, Placement::uncompressed(pick(1))));
        }
        let accesses: Vec<AccessEvent> = event_volumes
            .iter()
            .enumerate()
            .map(|(k, &v)| {
                let object = format!("obj-{}", k % sizes.len());
                let month = event_months[k % event_months.len()];
                if k % 3 == 0 {
                    AccessEvent::write(object, month, v)
                } else {
                    AccessEvent::read(object, month, v)
                }
            })
            .collect();

        let mut sim = BillingSimulator::new(catalog.clone());
        for (obj, placement) in &placed {
            sim.place(obj.clone(), *placement).unwrap();
        }
        let day_engine = sim.run(horizon_months, &accesses).unwrap();
        let reference = reference_monthly_replay(&catalog, &placed, horizon_months, &accesses);

        // Bit-for-bit: no tolerance anywhere.
        prop_assert_eq!(&day_engine.months, &reference.months);
        prop_assert_eq!(&day_engine.per_object, &reference.per_object);
        prop_assert_eq!(day_engine.dropped_events, reference.dropped_events);
    }

    /// Early-deletion penalties are exact to the day: for a single object
    /// leaving a residency-bearing tier at day `d`, the penalty equals the
    /// closed-form unmet-days formula.
    #[test]
    fn early_deletion_penalty_is_exact_to_the_day(
        size in 0.1f64..500.0,
        residency in 0u32..200,
        leave_day in 1u32..180,
    ) {
        let catalog = TierCatalog::azure_adls_gen2();
        let archive = catalog.tier_id("Archive").unwrap();
        let hot = catalog.tier_id("Hot").unwrap();
        let rate = catalog.tier(archive).unwrap().storage_cost_cents_per_gb_month;
        let window = catalog.tier(archive).unwrap().early_deletion_days;
        let mut sim = BillingSimulator::new(catalog);
        let schedule = PlacementSchedule::constant(Placement::uncompressed(archive))
            .with_transition(leave_day, Placement::uncompressed(hot));
        sim.place_scheduled(
            ObjectSpec::new("a", size).on_tier(archive).with_residency_days(residency),
            schedule,
        )
        .unwrap();
        let report = sim.run_days(200, &[]).unwrap();
        let days_served = residency + leave_day;
        let expected = if window > days_served {
            rate * size * ((window - days_served) as f64 / DAYS_PER_MONTH as f64)
        } else {
            0.0
        };
        let charged: f64 = report.months.iter().map(|m| m.early_deletion_penalty).sum();
        prop_assert!(
            (charged - expected).abs() <= 1e-9 * (1.0 + expected),
            "served {} days, charged {} expected {}", days_served, charged, expected
        );
        // And it is booked in the period of the move.
        let period = (leave_day / DAYS_PER_MONTH) as usize;
        prop_assert_eq!(report.months[period].early_deletion_penalty, charged);
    }

    /// For period-aligned schedules, each period's storage charge is the
    /// full-month rate of the tier in force during that period.
    #[test]
    fn month_aligned_schedules_charge_whole_month_storage(
        size in 0.1f64..500.0,
        switch_period in 1u32..5,
        tier_a in 0usize..4,
        tier_b in 0usize..4,
    ) {
        let catalog = TierCatalog::azure_adls_gen2();
        let a = TierId(tier_a);
        let b = TierId(tier_b);
        let rate = |t: TierId| catalog.tier(t).unwrap().storage_cost_cents_per_gb_month;
        let mut sim = BillingSimulator::new(catalog.clone());
        let schedule = PlacementSchedule::constant(Placement::uncompressed(a))
            .with_transition(switch_period * DAYS_PER_MONTH, Placement::uncompressed(b));
        sim.place_scheduled(ObjectSpec::new("a", size).on_tier(a), schedule).unwrap();
        let horizon = 6 * DAYS_PER_MONTH;
        let report = sim.run_days(horizon, &[]).unwrap();
        for (p, m) in report.months.iter().enumerate() {
            let tier = if (p as u32) < switch_period { a } else { b };
            let expected = rate(tier) * size;
            prop_assert!(
                (m.breakdown.storage - expected).abs() <= 1e-9 * (1.0 + expected),
                "period {}: storage {} expected {}", p, m.breakdown.storage, expected
            );
        }
    }
}

#[test]
fn lifted_monthly_events_round_trip_through_run_days() {
    // `run` is documented as a thin lifting of monthly traces onto the day
    // axis; spot-check the two entry points agree on a mixed trace.
    let catalog = TierCatalog::azure_adls_gen2();
    let hot = catalog.tier_id("Hot").unwrap();
    let cool = catalog.tier_id("Cool").unwrap();
    let mut sim = BillingSimulator::new(catalog);
    sim.place(
        ObjectSpec::new("a", 50.0).on_tier(hot),
        Placement::uncompressed(cool),
    )
    .unwrap();
    let monthly = vec![
        AccessEvent::read("a", 0, 5.0),
        AccessEvent::read("a", 2, 50.0),
        AccessEvent::write("a", 1, 2.5),
        AccessEvent::read("a", 9, 1.0), // beyond the horizon
    ];
    let via_months = sim.run(3, &monthly).unwrap();
    let via_days = sim
        .run_days(
            3 * DAYS_PER_MONTH,
            &scope_cloudsim::events_from_monthly(&monthly),
        )
        .unwrap();
    assert_eq!(via_months, via_days);
    assert_eq!(via_months.dropped_events, 1);
}
