//! Integration and property-based tests of COMPREDICT against the real
//! codecs, data generator and query workloads.

use proptest::prelude::*;
use scope_compredict::{
    predictor::build_examples, query_samples, random_samples, CompressionPredictor,
    FeatureExtractor, FeatureSet, ModelKind, PredictionTask,
};
use scope_compress::{measure, CompressionScheme, GzipishCodec, Lz4ishCodec, SnappyishCodec};
use scope_table::{format, DataLayout, TpchGenerator, TpchOptions, TpchTable};
use scope_workload::{QueryWorkload, QueryWorkloadOptions};

#[test]
fn query_sampled_predictor_beats_random_sampled_predictor() {
    // The Table V conclusion: training on the rows queries actually touch
    // gives a better ratio predictor (evaluated on query-derived samples)
    // than training on random row subsets.
    let gen = TpchGenerator::new(TpchOptions {
        scale_factor: 0.2,
        ..Default::default()
    })
    .unwrap();
    let orders = gen.generate(TpchTable::Orders);
    let files = orders.split_into_files(30).unwrap();
    let workload = QueryWorkload::generate_tpch(
        &[("orders".to_string(), files.len())],
        &QueryWorkloadOptions {
            queries_per_template: 8,
            ..Default::default()
        },
    )
    .unwrap();
    let extractor = FeatureExtractor::new(FeatureSet::WeightedEntropy);
    let query_tables = query_samples(&orders, &files, &workload.families).unwrap();
    let random_tables = random_samples(&orders, query_tables.len(), 60, 3).unwrap();

    let query_examples = build_examples(
        &query_tables,
        CompressionScheme::Gzip,
        DataLayout::Csv,
        &extractor,
    );
    let random_examples = build_examples(
        &random_tables,
        CompressionScheme::Gzip,
        DataLayout::Csv,
        &extractor,
    );

    let split = query_examples.len() * 2 / 3;
    let (train_q, test_q) = query_examples.split_at(split.max(4));
    let model_q = CompressionPredictor::train(
        train_q,
        PredictionTask::CompressionRatio,
        ModelKind::RandomForest,
        extractor,
        1,
    )
    .unwrap();
    let model_r = CompressionPredictor::train(
        &random_examples,
        PredictionTask::CompressionRatio,
        ModelKind::RandomForest,
        extractor,
        1,
    )
    .unwrap();
    let eval_q = model_q.evaluate(test_q);
    let eval_r = model_r.evaluate(test_q);
    assert!(
        eval_q.mae <= eval_r.mae * 1.2,
        "query-sample MAE {} should not be worse than random-sample MAE {}",
        eval_q.mae,
        eval_r.mae
    );
    assert!(
        eval_q.mape < 25.0,
        "query-sample MAPE too high: {}",
        eval_q.mape
    );
}

#[test]
fn codec_ordering_holds_on_generated_tables_in_both_layouts() {
    // gzip compresses at least as well as lz4 and snappy on both the row
    // (csv) and columnar (parquet-like) layouts of every generated table —
    // the property the scheme choice in OPTASSIGN relies on. The scale
    // factor keeps every serialized table above a few tens of KB so that
    // fixed per-stream header overheads do not dominate the comparison.
    let gen = TpchGenerator::new(TpchOptions {
        scale_factor: 0.5,
        ..Default::default()
    })
    .unwrap();
    for table in [TpchTable::Orders, TpchTable::Customer, TpchTable::Part] {
        let t = gen.generate(table);
        for layout in [DataLayout::Csv, DataLayout::Columnar] {
            let bytes = format::serialize(&t, layout);
            let gz = measure(&GzipishCodec::default(), &bytes);
            let lz = measure(&Lz4ishCodec::default(), &bytes);
            let sn = measure(&SnappyishCodec::default(), &bytes);
            assert!(
                gz.ratio >= lz.ratio * 0.98,
                "{table:?}/{layout:?}: gzip {} vs lz4 {}",
                gz.ratio,
                lz.ratio
            );
            assert!(
                gz.ratio >= sn.ratio * 0.98,
                "{table:?}/{layout:?}: gzip {} vs snappy {}",
                gz.ratio,
                sn.ratio
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every codec round-trips arbitrary byte strings (the fundamental
    /// correctness property behind every measured ratio in the system).
    #[test]
    fn codecs_round_trip_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        for scheme in CompressionScheme::all() {
            let codec = scheme.codec();
            let compressed = codec.compress(&data);
            let restored = codec.decompress(&compressed).expect("round trip");
            prop_assert_eq!(&restored, &data, "{} failed", scheme.name());
        }
    }

    /// Repetition never hurts: duplicating a buffer's content doubles its
    /// size but compresses to (at most marginally more than) twice the
    /// original compressed size for the LZ codecs, so the measured ratio
    /// never drops by much.
    #[test]
    fn repetition_does_not_reduce_ratio(data in proptest::collection::vec(any::<u8>(), 64..1024)) {
        let codec = GzipishCodec::default();
        let single = measure(&codec, &data);
        let doubled: Vec<u8> = data.iter().chain(data.iter()).copied().collect();
        let double = measure(&codec, &doubled);
        prop_assert!(double.ratio >= single.ratio * 0.95,
            "doubling data dropped ratio from {} to {}", single.ratio, double.ratio);
    }

    /// Weighted-entropy features are finite, non-negative and their vector
    /// length always matches the declared feature names.
    #[test]
    fn features_are_well_formed(rows in 1usize..200, distinct in 1usize..20) {
        use scope_table::{ColumnData, ColumnType, Schema, Table};
        let schema = Schema::from_pairs(&[("id", ColumnType::Int), ("label", ColumnType::Text)]);
        let table = Table::new(
            "t",
            schema,
            vec![
                ColumnData::Int((0..rows as i64).collect()),
                ColumnData::Text((0..rows).map(|i| format!("v{}", i % distinct)).collect()),
            ],
        )
        .unwrap();
        for set in [FeatureSet::SizeOnly, FeatureSet::WeightedEntropy, FeatureSet::BucketedEntropy] {
            let extractor = FeatureExtractor::new(set);
            let features = extractor.extract(&table);
            prop_assert_eq!(features.len(), extractor.feature_names().len());
            prop_assert!(features.iter().all(|f| f.is_finite() && *f >= 0.0));
        }
    }
}
