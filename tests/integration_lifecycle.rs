//! End-to-end test of the lifecycle scenario: a generated enterprise
//! account whose datasets cool over time is planned with per-billing-period
//! tier schedules and replayed through the day-granular billing engine,
//! threading workload → optassign → cloudsim → core in one pass.

use scope_core::{lifecycle_tradeoff, run_lifecycle, LifecycleOptions};
use scope_workload::EnterpriseOptions;

fn options() -> LifecycleOptions {
    LifecycleOptions {
        workload: EnterpriseOptions {
            n_datasets: 80,
            history_months: 8,
            future_months: 6,
            seed: 7,
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn lifecycle_scenario_runs_end_to_end_and_beats_frozen_placements() {
    let outcome = run_lifecycle(&options()).unwrap();
    // The whole trace fits the horizon.
    assert_eq!(outcome.dropped_events, 0);
    // The optimized placements beat the all-hot platform default, and the
    // per-period schedules beat the best frozen placement: cooling datasets
    // make mid-horizon re-tiering worth real money.
    assert!(outcome.benefit_static > 0.0, "{outcome:?}");
    assert!(
        outcome.benefit_scheduled > outcome.benefit_static,
        "{outcome:?}"
    );
    assert!(outcome.transitions > 0, "{outcome:?}");
    // Sanity: totals are positive and ordered.
    assert!(outcome.scheduled_total > 0.0);
    assert!(outcome.scheduled_total < outcome.static_total);
    assert!(outcome.static_total < outcome.all_hot_total);
}

#[test]
fn retier_granularity_tradeoff_is_monotone() {
    let sweep = lifecycle_tradeoff(&options(), &[1, 2, 6]).unwrap();
    assert_eq!(sweep.len(), 3);
    // Finer re-tiering granularity never costs more; the horizon-length
    // granularity degenerates to a frozen placement.
    for w in sweep.windows(2) {
        assert!(
            w[0].1.scheduled_total <= w[1].1.scheduled_total * (1.0 + 1e-9),
            "granularity {} total {} vs granularity {} total {}",
            w[0].0,
            w[0].1.scheduled_total,
            w[1].0,
            w[1].1.scheduled_total,
        );
    }
    assert_eq!(sweep[2].1.transitions, 0);
}
