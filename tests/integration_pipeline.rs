//! Cross-crate integration tests of the full SCOPe pipeline: scenario
//! generation (scope-table + scope-compress + scope-workload), partitioning
//! (scope-datapart), assignment (scope-optassign) and cost accounting
//! (scope-cloudsim) working together through scope-core.

use scope_core::{run_all_policies, run_policy, tpch_scenario, Policy, ScenarioOptions};

fn scenario() -> scope_core::PipelineInputs {
    tpch_scenario(&ScenarioOptions {
        nominal_total_gb: 100.0,
        generator_scale: 0.05,
        queries_per_template: 4,
        total_files: 40,
        ..Default::default()
    })
    .expect("scenario builds")
}

#[test]
fn full_pipeline_reproduces_table_x_shape() {
    // The qualitative shape of Table X:
    //   * the platform default (all premium, uncompressed, unpartitioned) is
    //     the most expensive storage configuration,
    //   * each individual ingredient (tiering alone, compression alone,
    //     partitioning alone) helps,
    //   * combining all three (SCOPe) gives the lowest total cost,
    //   * SCOPe's saving vs the default is large (paper: default is 5-13x
    //     the SCOPe total).
    let inputs = scenario();
    let outcomes = run_all_policies(&inputs).expect("all policies run");
    assert_eq!(outcomes.len(), 11);

    let cost = |name: &str| {
        outcomes
            .iter()
            .find(|o| o.policy == name)
            .unwrap_or_else(|| panic!("missing policy {name}"))
            .total_cost
    };
    let default = cost("Default (store on premium)");
    let compress_only = cost("Compress & store on premium");
    let tiering_only = cost("Multi-Tiering");
    let partition_only = cost("Partition & store on premium");
    let scope_best = cost("SCOPe (No capacity constraint)").min(cost("SCOPe (Total cost focused)"));

    assert!(compress_only < default, "compression alone should help");
    assert!(tiering_only < default, "tiering alone should help");
    assert!(partition_only < default, "partitioning alone should help");
    assert!(scope_best < compress_only);
    assert!(scope_best < tiering_only);
    assert!(scope_best < partition_only);
    assert!(
        scope_best < default / 2.0,
        "SCOPe should cut the platform cost at least in half (got {scope_best} vs {default})"
    );
}

#[test]
fn gpart_improves_every_baseline_it_is_added_to() {
    // The paper's ablation: adding G-PART partitioning to the premium-only,
    // tiering-only and compression-only baselines improves each of them.
    let inputs = scenario();
    let pairs = [
        (Policy::default_premium(), Policy::partition_premium()),
        (Policy::multi_tiering(), Policy::partition_tiering()),
        (Policy::compress_premium(), Policy::partition_compression()),
    ];
    for (without, with) in pairs {
        let base = run_policy(&inputs, &without).unwrap();
        let improved = run_policy(&inputs, &with).unwrap();
        assert!(
            improved.total_cost < base.total_cost,
            "{} ({}) should improve on {} ({})",
            with.name,
            improved.total_cost,
            without.name,
            base.total_cost
        );
    }
}

#[test]
fn outcomes_are_internally_consistent() {
    let inputs = scenario();
    for outcome in run_all_policies(&inputs).unwrap() {
        // Cost components sum to the total.
        let sum = outcome.storage_cost
            + outcome.read_cost
            + outcome.write_cost
            + outcome.decompression_cost;
        assert!(
            (outcome.total_cost - sum).abs() < 1e-6,
            "{}",
            outcome.policy
        );
        // Tier histogram covers every partition.
        assert_eq!(
            outcome.tiering_scheme.iter().sum::<usize>(),
            outcome.n_partitions,
            "{}",
            outcome.policy
        );
        // Latency numbers are physical.
        assert!(outcome.read_latency_ttfb >= 0.0);
        assert!(outcome.expected_decompression_ms >= 0.0);
        // No policy without compression should pay decompression costs.
        if outcome.policy == "Default (store on premium)"
            || outcome.policy == "Multi-Tiering"
            || outcome.policy == "Partition & store on premium"
            || outcome.policy == "Partitioning + Tiering"
        {
            assert_eq!(outcome.decompression_cost, 0.0, "{}", outcome.policy);
        }
    }
}

#[test]
fn scenario_scale_changes_costs_proportionally() {
    // A 1 TB-class scenario should cost roughly 10x the 100 GB-class one
    // under the same policy (costs are linear in bytes).
    let small = scenario();
    let large = tpch_scenario(&ScenarioOptions {
        nominal_total_gb: 1000.0,
        generator_scale: 0.05,
        queries_per_template: 4,
        total_files: 40,
        ..Default::default()
    })
    .unwrap();
    let policy = Policy::default_premium();
    let small_cost = run_policy(&small, &policy).unwrap().total_cost;
    let large_cost = run_policy(&large, &policy).unwrap().total_cost;
    let ratio = large_cost / small_cost;
    assert!((8.0..12.0).contains(&ratio), "scale ratio {ratio}");
}

#[test]
fn pipeline_outcomes_are_deterministic() {
    // Regression test: partition file order and float-accumulation order
    // once leaked hash-map iteration order into policy outcomes, making
    // borderline optimizer decisions (and therefore whole test runs) flap
    // from process to process. Two runs over the same inputs must agree
    // bit-for-bit. (Scenario *construction* measures real decompression
    // wall-clock time, so the inputs are built once.)
    let inputs = scenario();
    let first = run_all_policies(&inputs).unwrap();
    let second = run_all_policies(&inputs).unwrap();
    assert_eq!(first, second);
}

#[test]
fn tradeoff_sweep_integrates_with_the_scenario() {
    use scope_core::{tradeoff_sweep, PredictorVariant};
    let inputs = tpch_scenario(&ScenarioOptions {
        nominal_total_gb: 1.0,
        generator_scale: 0.05,
        queries_per_template: 3,
        total_files: 24,
        ..Default::default()
    })
    .unwrap();
    let alphas = [0.0, 0.5, 2.0];
    for variant in PredictorVariant::all() {
        let points = tradeoff_sweep(&inputs, variant, &alphas, 1.0).unwrap();
        assert_eq!(points.len(), alphas.len());
        assert!(points.iter().all(|p| p.total_cost > 0.0));
    }
}
