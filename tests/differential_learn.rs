//! Differential pins for the PR-5 learning fast path: the production
//! presort/parallel/index-bagged training paths must be **bit-for-bit**
//! equal to the preserved seed-shaped oracles in `scope_learn::reference`,
//! `scope_compredict::features::weighted_entropy_by_type_reference` and
//! `scope_datapart::solve_ordered_exact_reference` — tree structures,
//! forest votes, boosting predictions, predictor labels and ordered-DP
//! plans, on randomized single- and multi-feature instances (with heavy
//! value ties, the regime where a tie-break bug would surface).
//!
//! Also pins parallel-vs-sequential determinism: any worker-thread count
//! must fit the identical model.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scope_cloudsim::TierCatalog;
use scope_compredict::features::{weighted_entropy_by_type, weighted_entropy_by_type_reference};
use scope_compredict::predictor::build_examples;
use scope_compredict::{
    CompressionPredictor, FeatureExtractor, FeatureSet, ModelKind, PredictionTask,
};
use scope_datapart::{solve_ordered_exact, solve_ordered_exact_reference, OrderedPartition};
use scope_learn::boosting::BoostingParams;
use scope_learn::forest::ForestParams;
use scope_learn::reference::{
    fit_boosting_reference, fit_forest_classifier_reference, fit_forest_regressor_reference,
    fit_tree_classifier_reference, fit_tree_regressor_reference, knn_predict_reference,
};
use scope_learn::tree::TreeParams;
use scope_learn::{
    Classifier, ColumnMatrix, DecisionTreeClassifier, DecisionTreeRegressor,
    GradientBoostingRegressor, KnnRegressor, RandomForestClassifier, RandomForestRegressor,
    Regressor,
};
use scope_optassign::{ideal_tier_labels, PredictorFeatures, TierPredictor};
use scope_table::{TpchGenerator, TpchOptions, TpchTable};
use scope_workload::{EnterpriseOptions, EnterpriseWorkload};

/// Random instance with a mix of heavily-tied (quantized) and continuous
/// features — the regime where stable ordering and tie-breaks matter.
fn random_instance(n: usize, width: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut features = Vec::with_capacity(n);
    let mut targets = Vec::with_capacity(n);
    for _ in 0..n {
        let x: Vec<f64> = (0..width)
            .map(|f| {
                if f % 2 == 0 {
                    rng.gen_range(0..6) as f64 // quantized: many exact ties
                } else {
                    rng.gen_range(0.0..10.0)
                }
            })
            .collect();
        let noise: f64 = rng.gen_range(-0.5..0.5);
        let y = x
            .iter()
            .enumerate()
            .map(|(i, v)| v * (i + 1) as f64)
            .sum::<f64>()
            + noise;
        features.push(x);
        targets.push(y);
    }
    (features, targets)
}

#[test]
fn trees_match_reference_bit_for_bit() {
    for (case, (n, width)) in [(0u64, (50, 1)), (1, (120, 2)), (2, (250, 5)), (3, (80, 7))]
        .into_iter()
        .enumerate()
        .map(|(i, c)| (i as u64, c.1))
    {
        let (f, t) = random_instance(n, width, 100 + case);
        for params in [
            TreeParams::default(),
            TreeParams {
                max_depth: 4,
                min_samples_leaf: 3,
                min_samples_split: 6,
                max_features: Some(2),
            },
        ] {
            let fast = DecisionTreeRegressor::fit_seeded(&f, &t, params, 7 + case).unwrap();
            let slow = fit_tree_regressor_reference(&f, &t, params, 7 + case).unwrap();
            assert_eq!(fast, slow, "regressor n={n} width={width}");

            let labels: Vec<usize> = t.iter().map(|&y| (y.abs() as usize) % 4).collect();
            let fast = DecisionTreeClassifier::fit_seeded(&f, &labels, params, 7 + case).unwrap();
            let slow = fit_tree_classifier_reference(&f, &labels, params, 7 + case).unwrap();
            assert_eq!(fast, slow, "classifier n={n} width={width}");
        }
    }
}

#[test]
fn forests_match_reference_votes_and_structure() {
    let (f, t) = random_instance(200, 4, 11);
    let (queries, _) = random_instance(60, 4, 99);
    let params = ForestParams {
        n_trees: 15,
        seed: 3,
        ..Default::default()
    };
    let fast = RandomForestRegressor::fit(&f, &t, params).unwrap();
    let slow = fit_forest_regressor_reference(&f, &t, params).unwrap();
    assert_eq!(fast, slow, "forest regressor trees diverged");
    for q in &queries {
        assert_eq!(fast.predict_one(q).to_bits(), slow.predict_one(q).to_bits());
    }

    let labels: Vec<usize> = t.iter().map(|&y| (y.abs() as usize) % 3).collect();
    let fast = RandomForestClassifier::fit(&f, &labels, params).unwrap();
    let slow = fit_forest_classifier_reference(&f, &labels, params).unwrap();
    assert_eq!(fast, slow, "forest classifier trees diverged");
    for q in &queries {
        assert_eq!(
            Classifier::predict_one(&fast, q),
            Classifier::predict_one(&slow, q)
        );
        assert_eq!(fast.predict_proba_one(q), slow.predict_proba_one(q));
    }
}

#[test]
fn boosting_matches_reference_predictions() {
    let (f, t) = random_instance(180, 3, 21);
    let params = BoostingParams {
        n_estimators: 30,
        ..Default::default()
    };
    let fast = GradientBoostingRegressor::fit(&f, &t, params).unwrap();
    let slow = fit_boosting_reference(&f, &t, params).unwrap();
    assert_eq!(fast, slow, "boosting stages diverged");
    let (queries, _) = random_instance(40, 3, 77);
    for q in &queries {
        assert_eq!(fast.predict_one(q).to_bits(), slow.predict_one(q).to_bits());
    }
}

#[test]
fn training_is_thread_count_independent() {
    // Satellite: parallel-vs-sequential determinism of forest and boosting
    // training — a fixed seed fits the identical model for any worker
    // count (1 = the plain sequential loop).
    let (f, t) = random_instance(220, 4, 31);
    let fp = ForestParams {
        n_trees: 17,
        seed: 5,
        ..Default::default()
    };
    let forest_seq = RandomForestRegressor::fit_with_threads(&f, &t, fp, 1).unwrap();
    for threads in [2, 3, 5, 8, 13] {
        let forest_par = RandomForestRegressor::fit_with_threads(&f, &t, fp, threads).unwrap();
        assert_eq!(forest_seq, forest_par, "forest threads={threads}");
    }
    let labels: Vec<usize> = t.iter().map(|&y| (y.abs() as usize) % 3).collect();
    let clf_seq = RandomForestClassifier::fit_with_threads(&f, &labels, fp, 1).unwrap();
    for threads in [2, 7] {
        let clf_par = RandomForestClassifier::fit_with_threads(&f, &labels, fp, threads).unwrap();
        assert_eq!(clf_seq, clf_par, "classifier threads={threads}");
    }
    let bp = BoostingParams {
        n_estimators: 20,
        ..Default::default()
    };
    let gbt_seq = GradientBoostingRegressor::fit_with_threads(&f, &t, bp, 1).unwrap();
    for threads in [2, 6] {
        let gbt_par = GradientBoostingRegressor::fit_with_threads(&f, &t, bp, threads).unwrap();
        assert_eq!(gbt_seq, gbt_par, "boosting threads={threads}");
    }
}

#[test]
fn knn_bounded_selection_matches_sorted_reference() {
    let (f, t) = random_instance(300, 3, 41);
    let (queries, _) = random_instance(50, 3, 43);
    for k in [1, 5, 17, 300] {
        let knn =
            KnnRegressor::fit(&f, &t, k, scope_learn::knn::KnnWeighting::InverseDistance).unwrap();
        for q in &queries {
            assert_eq!(
                knn.predict_one(q).to_bits(),
                knn_predict_reference(&knn, q).to_bits(),
                "k={k}"
            );
        }
    }
}

#[test]
fn compression_predictor_labels_match_reference_forest() {
    // The production CompressionPredictor trains its forest through the
    // column-major fast path; a reference forest trained the seed way on
    // the same examples must predict identical (clamped) ratios.
    let gen = TpchGenerator::new(TpchOptions {
        scale_factor: 0.1,
        ..Default::default()
    })
    .unwrap();
    let orders = gen.generate(TpchTable::Orders);
    let extractor = FeatureExtractor::new(FeatureSet::WeightedEntropy);
    let mut samples = Vec::new();
    for rows in [40, 80, 150] {
        samples.extend(scope_compredict::random_samples(&orders, 5, rows, rows as u64).unwrap());
    }
    let examples = build_examples(
        &samples,
        scope_compress::CompressionScheme::Gzip,
        scope_table::DataLayout::Csv,
        &extractor,
    );
    let seed = 9;
    let predictor = CompressionPredictor::train(
        &examples,
        PredictionTask::CompressionRatio,
        ModelKind::RandomForest,
        extractor,
        seed,
    )
    .unwrap();
    let features: Vec<Vec<f64>> = examples.iter().map(|e| e.features.clone()).collect();
    let targets: Vec<f64> = examples.iter().map(|e| e.ratio).collect();
    let reference = fit_forest_regressor_reference(
        &features,
        &targets,
        ForestParams {
            seed,
            ..Default::default()
        },
    )
    .unwrap();
    for e in &examples {
        let fast = predictor.predict_features(&e.features);
        let slow = reference.predict_one(&e.features).max(0.1);
        assert_eq!(fast.to_bits(), slow.to_bits());
    }
}

#[test]
fn tier_predictor_labels_match_reference_forest() {
    // Rebuild the exact (features, ideal-label) training set TierPredictor
    // uses, train a seed-way reference forest on it, and require identical
    // tier labels from the production predictor's batched path.
    let w = EnterpriseWorkload::generate(EnterpriseOptions {
        n_datasets: 80,
        history_months: 10,
        future_months: 4,
        seed: 5,
        ..Default::default()
    })
    .unwrap();
    let catalog = TierCatalog::azure_hot_cool();
    let hot = catalog.tier_id("Hot").unwrap();
    let features = PredictorFeatures::default();
    let (train_until, horizon, seed) = (7u32, 2u32, 42u64);
    let predictor = TierPredictor::train(
        &catalog,
        &w.catalog,
        &w.series,
        train_until,
        horizon,
        hot,
        features,
        seed,
    )
    .unwrap();

    let mut xs: Vec<Vec<f64>> = Vec::new();
    let mut ys: Vec<usize> = Vec::new();
    for month in features.lookback_months..=train_until {
        if month + horizon > w.series.months() {
            break;
        }
        let labels =
            ideal_tier_labels(&catalog, &w.catalog, &w.series, month, horizon, hot).unwrap();
        for d in w.catalog.iter() {
            if d.created_month > month {
                continue;
            }
            xs.push(features.extract(d, &w.series, month));
            ys.push(labels[d.id].index());
        }
    }
    let reference = fit_forest_classifier_reference(
        &xs,
        &ys,
        ForestParams {
            n_trees: 60,
            seed,
            ..Default::default()
        },
    )
    .unwrap();

    let at_month = 10;
    let predicted = predictor.predict_all(&w.catalog, &w.series, at_month);
    for (d, &tier) in w.catalog.iter().zip(&predicted) {
        let x = features.extract(d, &w.series, at_month);
        let expect = Classifier::predict_one(&reference, &x).min(catalog.len() - 1);
        assert_eq!(tier.index(), expect, "dataset {}", d.id);
    }
}

#[test]
fn entropy_features_match_reference_bitwise() {
    let gen = TpchGenerator::new(TpchOptions {
        scale_factor: 0.08,
        ..Default::default()
    })
    .unwrap();
    for table in [TpchTable::Orders, TpchTable::Lineitem, TpchTable::Customer] {
        let t = gen.generate(table);
        let n = t.n_rows();
        for (start, end) in [(0, n), (n / 3, 2 * n / 3)] {
            let fast = weighted_entropy_by_type(&t, start, end);
            let slow = weighted_entropy_by_type_reference(&t, start, end);
            assert_eq!(fast.len(), slow.len());
            for (k, v) in &slow {
                assert_eq!(fast[k].to_bits(), v.to_bits(), "{table:?} {k:?}");
            }
        }
    }
}

#[test]
fn ordered_dp_plans_match_reference_bit_for_bit() {
    let mut rng = SmallRng::seed_from_u64(17);
    for case in 0..12 {
        let n = rng.gen_range(5..40);
        let mut parts = Vec::with_capacity(n);
        let mut end = 0.0f64;
        for _ in 0..n {
            end += rng.gen_range(0.5..4.0);
            let span = rng.gen_range(0.5..8.0);
            let freq = rng.gen_range(0..5) as f64 * rng.gen_range(0.5..1.5);
            parts.push(OrderedPartition::new(end - span, end, freq));
        }
        let min_cost: f64 = parts.iter().map(|p| p.span() * p.frequency).sum();
        let budget = (min_cost + rng.gen_range(1.0..50.0)) * rng.gen_range(1.0..2.0);
        let resolution = [0.5, 1.0, 4.0][case % 3];
        let fast = solve_ordered_exact(&parts, budget, resolution).unwrap();
        let slow = solve_ordered_exact_reference(&parts, budget, resolution).unwrap();
        assert_eq!(fast.merges, slow.merges, "case {case} n={n}");
        assert_eq!(fast.total_space.to_bits(), slow.total_space.to_bits());
        assert_eq!(fast.total_cost.to_bits(), slow.total_cost.to_bits());
    }
}

#[test]
fn batched_column_prediction_equals_row_prediction() {
    let (f, t) = random_instance(150, 4, 51);
    let cols = ColumnMatrix::from_rows(&f).unwrap();
    let forest = RandomForestRegressor::fit_default(&f, &t, 2).unwrap();
    let batched = forest.predict_columns(&cols);
    let scalar = forest.predict(&f);
    assert_eq!(batched.len(), scalar.len());
    for (a, b) in batched.iter().zip(&scalar) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    let gbt = GradientBoostingRegressor::fit_default(&f, &t).unwrap();
    for (a, b) in gbt.predict_columns(&cols).iter().zip(gbt.predict(&f)) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
