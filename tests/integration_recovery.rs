//! PR-10 recovery suite: storage corruption against the journaled
//! serving engine's crash-recovery contracts.
//!
//! Three layers of enforcement, all exact:
//!
//! * **Proptests** corrupt the raw storage under a journaled run —
//!   truncating the active segment tail and checkpoint objects at
//!   arbitrary byte offsets, flipping arbitrary single bits in arbitrary
//!   durable objects, duplicating arbitrary-length segment tails — and
//!   assert recovery never panics, fails only with typed [`WalError`]s,
//!   and that recover + re-delivery lands the engine bit-for-bit on a
//!   never-crashed twin.
//! * **Epoch-boundary cut** — when corruption forces recovery past every
//!   checkpoint, the replay tail is cut at the first epoch marker and
//!   the harness re-runs the boundary, so the decayed heat still matches
//!   the twin exactly.
//! * **End-to-end** — the `scope_core::recovery` scenario upholds every
//!   contract on generated enterprise traces under light and heavy
//!   storage-fault plans.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scope::core::recovery::{run_recovery, RecoveryOptions};
use scope_cloudsim::{AccessKind, EventColumns, TierCatalog, TierId};
use scope_faults::StorageFaultRates;
use scope_serve::{
    CompressionOption, JournaledEngine, ServeConfig, ServeEngine, ServeError, ServeObject,
};
use scope_wal::{parse_segment_name, JournalConfig, MemStorage, WalError};
use scope_workload::EnterpriseOptions;

const HORIZON_DAYS: u32 = 60;
const OBJECTS: usize = 10;
const ACCOUNTS: usize = 2;

fn schemes() -> Vec<CompressionOption> {
    vec![
        CompressionOption::none(),
        CompressionOption::new("zstd", 2.4, 0.35),
    ]
}

fn build_engine() -> Result<ServeEngine, ServeError> {
    let config = ServeConfig {
        horizon_days: HORIZON_DAYS,
        horizon_months: f64::from(HORIZON_DAYS) / 30.0,
        threads: 1,
        ..ServeConfig::default()
    };
    let mut engine = ServeEngine::new(TierCatalog::azure_hot_cool_archive(), schemes(), config)?;
    for i in 0..OBJECTS {
        engine.register(ServeObject::new(
            format!("obj-{i}"),
            format!("acct-{}", i % ACCOUNTS),
            1.0 + i as f64 * 0.37,
            TierId(0),
        ))?;
    }
    Ok(engine)
}

fn journal_cfg() -> JournalConfig {
    // Tiny segments so every run rolls several and corruption can land
    // in interior segments as well as the active tail.
    JournalConfig {
        segment_records: 2,
        keep_checkpoints: 2,
    }
}

/// A random event stream with everything the validating intake must
/// handle: out-of-horizon days, unknown object ids, NaN and negative
/// volumes, mixed reads and writes.
fn random_columns(rng: &mut SmallRng, n_events: usize) -> EventColumns {
    let mut cols = EventColumns::default();
    for _ in 0..n_events {
        let day = rng.gen_range(0..HORIZON_DAYS + 20);
        let id = rng.gen_range(0..OBJECTS as u32 + 3);
        let kind = if rng.gen_bool(0.2) {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let volume = match rng.gen_range(0u32..10) {
            0 => f64::NAN,
            1 => -rng.gen_range(0.1f64..5.0),
            _ => rng.gen_range(0.01f64..3.0),
        };
        cols.push_resolved(day, id, kind, volume);
    }
    cols
}

/// Split the stream into `n` sequenced batches, preserving order.
fn make_batches(rng: &mut SmallRng, n_events: usize, n: usize) -> Vec<EventColumns> {
    let columns = random_columns(rng, n_events);
    let total = columns.len();
    let per = total.div_ceil(n.max(1)).max(1);
    (0..n.max(1))
        .map(|b| {
            let lo = (b * per).min(total);
            let hi = ((b + 1) * per).min(total);
            let mut batch = EventColumns::default();
            batch.days.extend_from_slice(&columns.days[lo..hi]);
            batch.periods.extend_from_slice(&columns.periods[lo..hi]);
            batch
                .object_ids
                .extend_from_slice(&columns.object_ids[lo..hi]);
            batch.kinds.extend_from_slice(&columns.kinds[lo..hi]);
            batch.volumes.extend_from_slice(&columns.volumes[lo..hi]);
            batch
        })
        .collect()
}

/// The fixed schedule: deliver the first half, run an epoch boundary
/// (advance + re-solve + durable checkpoint when `publish`, marker =
/// position after the boundary), deliver the rest, sync — then crash.
/// The final epoch (advance to the horizon + re-solve) runs only on the
/// recovered engine and the twin.
fn journaled_run(batches: &[EventColumns], publish: bool) -> MemStorage {
    let mid = batches.len() / 2;
    let mut j =
        JournaledEngine::create(build_engine().unwrap(), MemStorage::new(), journal_cfg()).unwrap();
    for (seq, batch) in batches[..mid].iter().enumerate() {
        j.ingest_sequenced(seq as u64, batch).unwrap();
    }
    j.advance(HORIZON_DAYS / 2).unwrap();
    j.reoptimize().unwrap();
    if publish {
        j.checkpoint_durable(mid as u64 + 1).unwrap();
    }
    for (off, batch) in batches[mid..].iter().enumerate() {
        j.ingest_sequenced((mid + off) as u64, batch).unwrap();
    }
    j.sync().unwrap();
    let mut storage = j.crash();
    storage.crash();
    storage
}

/// The never-crashed twin over the same schedule, final epoch included.
fn twin_checkpoint(batches: &[EventColumns]) -> Vec<u8> {
    let mid = batches.len() / 2;
    let mut twin = build_engine().unwrap();
    for (seq, batch) in batches.iter().enumerate() {
        if seq == mid {
            twin.advance(HORIZON_DAYS / 2);
            twin.reoptimize().unwrap();
        }
        twin.ingest_sequenced(seq as u64, batch).unwrap();
    }
    twin.advance(HORIZON_DAYS);
    twin.reoptimize().unwrap();
    twin.checkpoint()
}

fn heat_bits(engine: &ServeEngine) -> Vec<Option<u64>> {
    (0..engine.len() as u32)
        .map(|id| engine.heat(id).map(f64::to_bits))
        .collect()
}

/// Recover from `storage` (rebuilding from scratch on a typed
/// `Unrecoverable`), re-deliver every batch recovery does not prove
/// durable, re-run un-covered epoch boundaries, run the final epoch, and
/// return the engine's checkpoint. Panics only on contract violations —
/// every corruption outcome must surface as a typed error or a clean
/// resume.
fn recover_and_finish(storage: MemStorage, batches: &[EventColumns]) -> Vec<u8> {
    let mid = batches.len() / 2;
    let (mut j, resume_pos) = match JournaledEngine::recover(
        storage,
        journal_cfg(),
        TierCatalog::azure_hot_cool_archive(),
        schemes(),
        build_engine,
    ) {
        Ok((j, report)) => {
            // Position semantics match the schedule in `journaled_run`:
            // delivery d sits at position d before the boundary and d+1
            // after it; the boundary itself is position `mid`.
            let d = usize::try_from(report.resume_deliveries).unwrap();
            let after_delivery = if d > mid { d + 1 } else { d };
            (
                j,
                after_delivery.max(usize::try_from(report.marker).unwrap()),
            )
        }
        Err(ServeError::Wal(WalError::Unrecoverable(_))) => (
            JournaledEngine::create(build_engine().unwrap(), MemStorage::new(), journal_cfg())
                .unwrap(),
            0,
        ),
        Err(err) => panic!("recovery failed with a non-storage error: {err}"),
    };
    for pos in resume_pos..batches.len() + 1 {
        if pos == mid {
            j.advance(HORIZON_DAYS / 2).unwrap();
            j.reoptimize().unwrap();
            j.checkpoint_durable(mid as u64 + 1).unwrap();
        } else {
            let seq = if pos > mid { pos - 1 } else { pos };
            j.ingest_sequenced(seq as u64, &batches[seq]).unwrap();
        }
    }
    j.advance(HORIZON_DAYS).unwrap();
    j.reoptimize().unwrap();
    j.engine().checkpoint()
}

/// Objects eligible for tail corruption: the active (highest-ordinal)
/// segment and every checkpoint.
fn tail_targets(storage: &MemStorage) -> Vec<String> {
    let mut names: Vec<String> = storage
        .durable_objects()
        .into_iter()
        .filter(|(_, len)| *len > 0)
        .map(|(name, _)| name)
        .collect();
    names.sort();
    let last_segment = names
        .iter()
        .rfind(|n| parse_segment_name(n).is_some())
        .cloned();
    names
        .into_iter()
        .filter(|n| parse_segment_name(n).is_none() || Some(n) == last_segment.as_ref())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Truncation at arbitrary byte offsets — of the active segment
    /// (the torn-tail crash model, including cuts on exact frame
    /// boundaries that silently drop acknowledged records) or of a
    /// checkpoint object (forcing walk-back or a fresh rebuild) — never
    /// panics, and recover + re-delivery matches the clean twin
    /// byte-for-byte.
    #[test]
    fn arbitrary_truncation_recovers_to_the_twin(
        n_events in 1usize..240,
        n_batches in 2usize..8,
        target in proptest::arbitrary::any::<u32>(),
        keep in proptest::arbitrary::any::<u64>(),
        seed in proptest::arbitrary::any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let batches = make_batches(&mut rng, n_events, n_batches);
        let mut storage = journaled_run(&batches, true);
        let targets = tail_targets(&storage);
        let name = &targets[target as usize % targets.len()];
        storage.corrupt_durable(name, |bytes| {
            bytes.truncate(keep as usize % (bytes.len() + 1));
        });
        prop_assert_eq!(recover_and_finish(storage, &batches), twin_checkpoint(&batches));
    }

    /// A single bit flip anywhere in any durable object — segment
    /// interiors included — is detected by the frame CRC (or the
    /// checkpoint's self-check), quarantined with a typed error, and
    /// recover + re-delivery still matches the clean twin byte-for-byte.
    #[test]
    fn arbitrary_single_bit_flips_recover_to_the_twin(
        n_events in 1usize..240,
        n_batches in 2usize..8,
        target in proptest::arbitrary::any::<u32>(),
        bit in proptest::arbitrary::any::<u64>(),
        seed in proptest::arbitrary::any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let batches = make_batches(&mut rng, n_events, n_batches);
        let mut storage = journaled_run(&batches, true);
        let mut names: Vec<String> = storage
            .durable_objects()
            .into_iter()
            .filter(|(_, len)| *len > 0)
            .map(|(name, _)| name)
            .collect();
        names.sort();
        let name = &names[target as usize % names.len()];
        storage.flip_durable_bit(name, bit);
        prop_assert_eq!(recover_and_finish(storage, &batches), twin_checkpoint(&batches));
    }

    /// Duplicating an arbitrary-length tail of any durable object never
    /// panics. Almost always the duplicate bytes fail the frame CRC and
    /// are truncated or quarantined; if the duplicated span happens to be
    /// exactly one whole frame it replays as a *valid duplicate
    /// delivery*, which the sequenced intake drops — so heat, quarantine
    /// and drop counters always match the twin, and the full checkpoint
    /// matches whenever no such synthetic duplicate was manufactured.
    #[test]
    fn duplicated_tails_recover_without_panicking(
        n_events in 1usize..240,
        n_batches in 2usize..8,
        target in proptest::arbitrary::any::<u32>(),
        dup in proptest::arbitrary::any::<u64>(),
        seed in proptest::arbitrary::any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let batches = make_batches(&mut rng, n_events, n_batches);
        let mut storage = journaled_run(&batches, true);
        let mut names: Vec<String> = storage
            .durable_objects()
            .into_iter()
            .filter(|(_, len)| *len > 0)
            .map(|(name, _)| name)
            .collect();
        names.sort();
        let name = &names[target as usize % names.len()];
        storage.corrupt_durable(name, |bytes| {
            let tail = bytes[bytes.len() - (dup as usize % bytes.len() + 1)..].to_vec();
            bytes.extend(tail);
        });
        let recovered = recover_and_finish(storage, &batches);
        let twin = twin_checkpoint(&batches);
        if recovered != twin {
            // The only admissible divergence: the duplicated tail formed
            // a whole valid frame, replayed, and was dropped by the
            // sequenced intake as a duplicate — heat, quarantine and
            // drop counters must still match; only the duplicate counter
            // (and therefore the checkpoint checksum) may differ.
            let rec = ServeEngine::restore(
                TierCatalog::azure_hot_cool_archive(), schemes(), &recovered).unwrap();
            let tw = ServeEngine::restore(
                TierCatalog::azure_hot_cool_archive(), schemes(), &twin).unwrap();
            prop_assert_eq!(heat_bits(&rec), heat_bits(&tw));
            prop_assert_eq!(rec.events_seen(), tw.events_seen());
            prop_assert_eq!(rec.dropped_events(), tw.dropped_events());
            prop_assert_eq!(rec.quarantine().entries(), tw.quarantine().entries());
            prop_assert!(
                rec.duplicate_batches() > tw.duplicate_batches(),
                "checkpoints differ but no synthetic duplicate was replayed"
            );
        }
    }
}

#[test]
fn epoch_boundary_cut_lands_on_the_twin_without_a_checkpoint() {
    // A crash after deliveries crossed an epoch boundary with no durable
    // checkpoint yet: the journal tail spans the boundary, so recovery
    // must cut it at the marker — replaying deliveries across an
    // un-replayable decay + re-solve would leave the heat off the clean
    // trajectory — and the harness re-runs the boundary itself.
    let mut rng = SmallRng::seed_from_u64(41);
    let batches = make_batches(&mut rng, 160, 6);
    let mid = batches.len() / 2;
    let storage = journaled_run(&batches, false);
    let (j, report) = JournaledEngine::recover(
        storage,
        journal_cfg(),
        TierCatalog::azure_hot_cool_archive(),
        schemes(),
        build_engine,
    )
    .unwrap();
    assert!(report.started_fresh, "no checkpoint was ever published");
    assert!(
        report.wal.epoch_cut_bytes > 0,
        "the tail crossed the boundary and must have been cut: {report:?}"
    );
    assert_eq!(
        report.resume_deliveries, mid as u64,
        "recovery must resume exactly at the boundary"
    );
    assert_eq!(report.marker, 0);

    // Resume: re-run the boundary, re-deliver the second half, final
    // epoch — byte-identical to the never-crashed twin.
    let mut j = j;
    j.advance(HORIZON_DAYS / 2).unwrap();
    j.reoptimize().unwrap();
    j.checkpoint_durable(mid as u64 + 1).unwrap();
    for (off, batch) in batches[mid..].iter().enumerate() {
        j.ingest_sequenced((mid + off) as u64, batch).unwrap();
    }
    j.advance(HORIZON_DAYS).unwrap();
    j.reoptimize().unwrap();
    assert_eq!(j.engine().checkpoint(), twin_checkpoint(&batches));
}

#[test]
fn recovery_scenario_upholds_every_contract_end_to_end() {
    for (seed, rates) in [
        (3u64, StorageFaultRates::light()),
        (17, StorageFaultRates::heavy()),
    ] {
        let outcome = run_recovery(&RecoveryOptions {
            workload: EnterpriseOptions {
                n_datasets: 40,
                history_months: 4,
                future_months: 4,
                seed: 5,
                ..Default::default()
            },
            seed,
            rates,
            ..Default::default()
        })
        .unwrap();
        assert!(outcome.crashes >= 3, "seed {seed}: {outcome:?}");
        assert!(
            outcome.checkpoints_bit_identical,
            "seed {seed}: {outcome:?}"
        );
        assert!(outcome.final_bit_identical, "seed {seed}: {outcome:?}");
        for (i, e) in outcome.epochs.iter().enumerate() {
            assert!(e.checkpoint_matches_twin, "seed {seed} epoch {i}");
            assert!(e.objective_bits_match, "seed {seed} epoch {i}");
        }
    }
}
