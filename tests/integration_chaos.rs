//! PR-9 chaos suite: fault injection against the serving engine's
//! degraded-mode contracts.
//!
//! Three layers of enforcement, all exact:
//!
//! * **Proptests** fuzz the validating intake against the independent
//!   [`scope_faults::expected_intake`] reference — quarantine contents
//!   and `dropped_events` must be invariant under arbitrary batch splits,
//!   duplicated and reordered delivery, and seeded fault plans.
//! * **Crash replay** — restoring a mid-stream checkpoint and replaying
//!   the surviving batches must land bit-for-bit on the never-crashed
//!   engine's state (checkpoints compared as raw bytes).
//! * **End-to-end** — the `scope_core::chaos` scenario upholds every
//!   contract on generated enterprise traces under light and heavy fault
//!   mixes.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scope::core::chaos::{run_chaos, ChaosOptions};
use scope_cloudsim::{AccessKind, EventColumns, TierCatalog, TierId};
use scope_faults::{expected_intake, FaultPlan, FaultRates};
use scope_serve::{CompressionOption, ServeConfig, ServeEngine, ServeObject};
use scope_workload::EnterpriseOptions;

const HORIZON_DAYS: u32 = 60;

fn schemes() -> Vec<CompressionOption> {
    vec![
        CompressionOption::none(),
        CompressionOption::new("zstd", 2.4, 0.35),
    ]
}

fn build_engine(objects: usize, accounts: usize) -> ServeEngine {
    let config = ServeConfig {
        horizon_days: HORIZON_DAYS,
        horizon_months: f64::from(HORIZON_DAYS) / 30.0,
        threads: 1,
        ..ServeConfig::default()
    };
    let mut engine =
        ServeEngine::new(TierCatalog::azure_hot_cool_archive(), schemes(), config).unwrap();
    for i in 0..objects {
        engine
            .register(ServeObject::new(
                format!("obj-{i}"),
                format!("acct-{}", i % accounts.max(1)),
                1.0 + i as f64 * 0.37,
                TierId(0),
            ))
            .unwrap();
    }
    engine
}

/// A random event stream with everything the validating intake must
/// handle: out-of-horizon days, unknown object ids, NaN and negative
/// volumes, mixed reads and writes.
fn random_columns(rng: &mut SmallRng, n_events: usize, objects: usize) -> EventColumns {
    let mut cols = EventColumns::default();
    for _ in 0..n_events {
        let day = rng.gen_range(0..HORIZON_DAYS + 20);
        let id = rng.gen_range(0..objects as u32 + 3);
        let kind = if rng.gen_bool(0.2) {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let volume = match rng.gen_range(0u32..10) {
            0 => f64::NAN,
            1 => -rng.gen_range(0.1f64..5.0),
            _ => rng.gen_range(0.01f64..3.0),
        };
        cols.push_resolved(day, id, kind, volume);
    }
    cols
}

/// Split `columns` at the (deduplicated, sorted) positions derived from
/// `cuts`, preserving order.
fn split_at(columns: &EventColumns, cuts: &[usize]) -> Vec<EventColumns> {
    let n = columns.len();
    let mut points: Vec<usize> = cuts.iter().map(|&c| c % (n + 1)).collect();
    points.push(0);
    points.push(n);
    points.sort_unstable();
    points.dedup();
    let mut out = Vec::new();
    for w in points.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        let mut batch = EventColumns::default();
        batch.days.extend_from_slice(&columns.days[lo..hi]);
        batch.periods.extend_from_slice(&columns.periods[lo..hi]);
        batch
            .object_ids
            .extend_from_slice(&columns.object_ids[lo..hi]);
        batch.kinds.extend_from_slice(&columns.kinds[lo..hi]);
        batch.volumes.extend_from_slice(&columns.volumes[lo..hi]);
        out.push(batch);
    }
    out
}

fn heat_bits(engine: &ServeEngine) -> Vec<Option<u64>> {
    (0..engine.len() as u32)
        .map(|id| engine.heat(id).map(f64::to_bits))
        .collect()
}

/// Assert `engine`'s intake state equals the reference over `batches`.
fn assert_matches_expected(engine: &ServeEngine, batches: &[EventColumns]) {
    let expected = expected_intake(
        batches,
        HORIZON_DAYS,
        engine.len() as u32,
        engine.quarantine().capacity(),
    );
    assert_eq!(engine.quarantine().entries(), expected.records.as_slice());
    assert_eq!(engine.quarantine().total(), expected.quarantined);
    assert_eq!(engine.quarantine().truncated(), expected.truncated);
    assert_eq!(engine.dropped_events(), expected.dropped);
    assert_eq!(engine.events_seen(), expected.events_seen);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite 3, part 1: however a stream is split into batches, the
    /// quarantine ledger (contents, order, counters), `dropped_events`,
    /// and per-object heat are identical — and equal to the independent
    /// intake reference over the unsplit stream.
    #[test]
    fn quarantine_and_drops_are_invariant_under_batch_splits(
        n_events in 0usize..400,
        cuts in proptest::collection::vec(0usize..400, 0..8),
        seed in proptest::arbitrary::any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let columns = random_columns(&mut rng, n_events, 12);

        let mut whole = build_engine(12, 3);
        whole.ingest(&columns);

        let mut split = build_engine(12, 3);
        let batches = split_at(&columns, &cuts);
        for batch in &batches {
            split.ingest(batch);
        }

        prop_assert_eq!(split.quarantine().entries(), whole.quarantine().entries());
        prop_assert_eq!(split.quarantine().total(), whole.quarantine().total());
        prop_assert_eq!(split.dropped_events(), whole.dropped_events());
        prop_assert_eq!(split.events_seen(), whole.events_seen());
        prop_assert_eq!(heat_bits(&split), heat_bits(&whole));
        assert_matches_expected(&whole, std::slice::from_ref(&columns));
        assert_matches_expected(&split, &batches);
    }

    /// Satellite 3, part 2: duplicated and locally reordered delivery
    /// through the sequenced intake leaves the engine bit-identical to an
    /// in-order, exactly-once delivery — quarantine, drops, and heat.
    #[test]
    fn sequenced_intake_neutralizes_duplication_and_reordering(
        n_events in 0usize..300,
        cuts in proptest::collection::vec(0usize..300, 0..6),
        dup_mask in proptest::arbitrary::any::<u32>(),
        swap_mask in proptest::arbitrary::any::<u32>(),
        seed in proptest::arbitrary::any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let columns = random_columns(&mut rng, n_events, 10);
        let batches = split_at(&columns, &cuts);

        // Build a chaotic delivery: adjacent swaps, then duplicates of
        // some batches appended right after the original.
        let mut order: Vec<u64> = (0..batches.len() as u64).collect();
        let mut i = 0;
        while i + 1 < order.len() {
            if swap_mask >> (i % 32) & 1 == 1 {
                order.swap(i, i + 1);
                i += 2;
            } else {
                i += 1;
            }
        }
        let mut delivery: Vec<u64> = Vec::new();
        for (k, &seq) in order.iter().enumerate() {
            delivery.push(seq);
            if dup_mask >> (k % 32) & 1 == 1 {
                delivery.push(seq);
            }
        }

        let mut inorder = build_engine(10, 2);
        for batch in &batches {
            inorder.ingest(batch);
        }
        let mut chaotic = build_engine(10, 2);
        let mut duplicates = 0u64;
        for &seq in &delivery {
            chaotic.ingest_sequenced(seq, &batches[seq as usize]).unwrap();
        }
        for (k, _) in order.iter().enumerate() {
            duplicates += u64::from(dup_mask >> (k % 32) & 1);
        }

        prop_assert_eq!(chaotic.pending_batches(), 0);
        prop_assert_eq!(chaotic.duplicate_batches(), duplicates);
        prop_assert_eq!(chaotic.quarantine().entries(), inorder.quarantine().entries());
        prop_assert_eq!(chaotic.dropped_events(), inorder.dropped_events());
        prop_assert_eq!(chaotic.events_seen(), inorder.events_seen());
        prop_assert_eq!(heat_bits(&chaotic), heat_bits(&inorder));
        assert_matches_expected(&chaotic, &batches);
    }

    /// Fault-plan fuzz: for any seed, corrupting + tearing batches through
    /// a [`FaultPlan`] and delivering them with the plan's duplication and
    /// reordering leaves (a) heat bit-identical to a fault-free twin fed
    /// the plan's filtered stream and (b) the ledger equal to the intake
    /// reference over the delivered stream.
    #[test]
    fn fault_plans_agree_with_the_intake_reference(
        n_events in 0usize..300,
        plan_seed in proptest::arbitrary::any::<u64>(),
        stream_seed in proptest::arbitrary::any::<u64>(),
    ) {
        let plan = FaultPlan::new(plan_seed, FaultRates::heavy()).unwrap();
        let mut rng = SmallRng::seed_from_u64(stream_seed);
        // Valid volumes only: corruption comes from the plan.
        let mut columns = random_columns(&mut rng, n_events, 10);
        for v in &mut columns.volumes {
            if !v.is_finite() || *v < 0.0 {
                *v = 0.5;
            }
        }
        let batches = split_at(&columns, &[n_events / 3, 2 * n_events / 3]);

        let mut engine = build_engine(10, 2);
        let mut twin = build_engine(10, 2);
        let mut delivered = Vec::new();
        let mut sequenced = Vec::new();
        for (seq, batch) in batches.iter().enumerate() {
            let corrupted = plan.corrupt_batch(seq as u64, batch, HORIZON_DAYS);
            twin.ingest(&corrupted.clean);
            delivered.push(corrupted.delivered.clone());
            sequenced.push((seq as u64, corrupted.delivered));
        }
        for (seq, batch) in plan.deliver(0, &sequenced) {
            engine.ingest_sequenced(seq, &batch).unwrap();
        }

        prop_assert_eq!(heat_bits(&engine), heat_bits(&twin));
        assert_matches_expected(&engine, &delivered);
    }

    /// Crash replay: restore a mid-stream checkpoint, replay the
    /// surviving batches, and the final checkpoint is byte-identical to
    /// the never-crashed engine's.
    #[test]
    fn crash_restore_replay_lands_on_the_never_crashed_state(
        n_events in 1usize..300,
        cuts in proptest::collection::vec(0usize..300, 0..6),
        crash_after in 0usize..6,
        seed in proptest::arbitrary::any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let columns = random_columns(&mut rng, n_events, 10);
        let batches = split_at(&columns, &cuts);
        let crash_after = crash_after.min(batches.len());

        let mut durable = build_engine(10, 2);
        for batch in &batches[..crash_after] {
            durable.ingest(batch);
        }
        durable.advance(HORIZON_DAYS / 2);
        durable.reoptimize().unwrap();
        let snapshot = durable.checkpoint();
        for batch in &batches[crash_after..] {
            durable.ingest(batch);
        }
        durable.advance(HORIZON_DAYS);
        durable.reoptimize().unwrap();

        let mut restored = ServeEngine::restore(
            TierCatalog::azure_hot_cool_archive(),
            schemes(),
            &snapshot,
        ).unwrap();
        prop_assert_eq!(restored.checkpoint(), snapshot);
        for batch in &batches[crash_after..] {
            restored.ingest(batch);
        }
        restored.advance(HORIZON_DAYS);
        restored.reoptimize().unwrap();

        prop_assert_eq!(restored.checkpoint(), durable.checkpoint());
    }
}

#[test]
fn chaos_scenario_upholds_every_contract_end_to_end() {
    for (seed, rates) in [(3u64, FaultRates::light()), (17, FaultRates::heavy())] {
        let outcome = run_chaos(&ChaosOptions {
            workload: EnterpriseOptions {
                n_datasets: 40,
                history_months: 4,
                future_months: 4,
                seed: 5,
                ..Default::default()
            },
            seed,
            rates,
            ..Default::default()
        })
        .unwrap();
        assert!(outcome.recoveries_bit_identical, "seed {seed}");
        assert!(outcome.intake_matches_expected, "seed {seed}");
        for (i, e) in outcome.epochs.iter().enumerate() {
            assert!(e.heat_matches_twin, "seed {seed} epoch {i}");
            assert!(e.healthy_match_reference, "seed {seed} epoch {i}");
        }
    }
}

#[test]
fn degraded_shards_reconverge_once_faults_stop() {
    // Compute faults only (deterministic seeded schedule): some epoch must
    // degrade shards, and a later fault-free window must clear every stale
    // flag — the bounded backoff guarantees retries resume.
    let outcome = run_chaos(&ChaosOptions {
        workload: EnterpriseOptions {
            n_datasets: 40,
            history_months: 4,
            future_months: 6,
            seed: 5,
            ..Default::default()
        },
        seed: 23,
        rates: FaultRates {
            shard_failure: 0.3,
            deadline_overrun: 0.1,
            ..FaultRates::none()
        },
        ..Default::default()
    })
    .unwrap();
    let first_stale = outcome
        .epochs
        .iter()
        .position(|e| e.stale_accounts > 0)
        .expect("seeded schedule injects at least one shard fault");
    assert!(
        outcome.epochs[first_stale..]
            .iter()
            .any(|e| e.stale_accounts == 0),
        "stale shards never reconverged: {outcome:?}"
    );
}
