//! End-to-end test of the serving scenario: a generated enterprise
//! account's day log is replayed epoch by epoch through the incremental
//! serving engine, threading workload → serve → optassign → cloudsim →
//! core in one pass, with every epoch differentially checked against the
//! preserved batch full-resolve.

use scope_core::{run_serving, ServingOptions};
use scope_workload::EnterpriseOptions;

fn options() -> ServingOptions {
    ServingOptions {
        workload: EnterpriseOptions {
            n_datasets: 80,
            history_months: 8,
            future_months: 6,
            seed: 7,
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn serving_replay_stays_pinned_to_the_batch_reference() {
    let outcome = run_serving(&options()).unwrap();
    assert_eq!(outcome.objects, 80);
    assert_eq!(outcome.epochs.len(), 12);
    // Every epoch ran the cold reference solve and matched it bit-for-bit:
    // the incremental engine earns its speedup by skipping work, never by
    // approximating.
    for (i, e) in outcome.epochs.iter().enumerate() {
        assert!(e.verified && e.matches_reference, "epoch {i}: {e:?}");
        assert!(e.total_objective.is_finite() && e.total_objective > 0.0);
    }
    // The trace fits the horizon, and the engine moved placements as the
    // datasets cooled.
    assert_eq!(outcome.dropped_events, 0);
    assert!(outcome.total_retier_decisions > 0, "{outcome:?}");
    // Steady state is a delta path: warm epochs re-evaluate only
    // re-bucketed rows, strictly less than the batch-equivalent work.
    let warm_rows: usize = outcome.epochs[1..].iter().map(|e| e.rows_patched).sum();
    assert!(warm_rows < (outcome.epochs.len() - 1) * outcome.objects);
}

#[test]
fn serving_outcome_is_independent_of_the_thread_count() {
    let sequential = run_serving(&ServingOptions {
        threads: 1,
        ..options()
    })
    .unwrap();
    let parallel = run_serving(&ServingOptions {
        threads: 8,
        ..options()
    })
    .unwrap();
    assert_eq!(sequential.epochs.len(), parallel.epochs.len());
    for (a, b) in sequential.epochs.iter().zip(&parallel.epochs) {
        assert_eq!(a.day, b.day);
        assert_eq!(a.rows_patched, b.rows_patched);
        assert_eq!(a.retier_decisions, b.retier_decisions);
        assert_eq!(
            a.total_objective.to_bits(),
            b.total_objective.to_bits(),
            "objective bits diverged at day {}",
            a.day
        );
    }
    assert_eq!(
        sequential.final_total_objective.to_bits(),
        parallel.final_total_objective.to_bits()
    );
}

#[test]
fn epoch_cadence_changes_work_but_not_correctness() {
    // A coarser cadence does fewer, larger epochs; every epoch still
    // matches the reference.
    let coarse = run_serving(&ServingOptions {
        epoch_days: 45,
        ..options()
    })
    .unwrap();
    assert_eq!(coarse.epochs.len(), 4);
    for e in &coarse.epochs {
        assert!(e.verified && e.matches_reference, "{e:?}");
    }
}
