//! Acceptance tests for multi-provider, egress-aware placement: the same
//! cooling enterprise account placed single-provider vs cross-provider,
//! in both egress regimes.
//!
//! * At the shipped discounted-interconnect egress rates, crossing clouds
//!   strictly beats the best single-provider placement (latency-bounded
//!   cooling data reaches another provider's cheap millisecond-latency
//!   cold tiers, and the savings repay the egress).
//! * At public-internet egress prices (×10) the optimizer performs no
//!   cross-provider moves at all, and the merged-space plan collapses to
//!   exactly the home-provider plan — staying single-provider *is* the
//!   optimum.

use scope_cloudsim::ProviderCatalog;
use scope_core::{run_multicloud, MultiCloudOptions};
use scope_workload::EnterpriseOptions;

fn options() -> MultiCloudOptions {
    MultiCloudOptions {
        workload: EnterpriseOptions {
            n_datasets: 100,
            history_months: 6,
            future_months: 6,
            seed: 42,
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn interconnect_egress_makes_cross_provider_placement_win() {
    let outcome = run_multicloud(&options()).unwrap();
    assert_eq!(outcome.dropped_events, 0, "{outcome:?}");
    // The plan really crosses clouds and really pays egress for it…
    assert!(outcome.cross_provider_moves > 0, "{outcome:?}");
    assert!(outcome.cross_egress > 0.0, "{outcome:?}");
    // …and still strictly beats every single-provider placement,
    // including the home provider that pays no egress at all.
    for s in &outcome.single {
        assert!(
            outcome.cross_total < s.total,
            "cross {} should beat {} at {}",
            outcome.cross_total,
            s.provider,
            s.total
        );
    }
    assert!(
        outcome.savings_vs_best_single > 0.0,
        "egress-adjusted savings should be positive: {outcome:?}"
    );
    assert!(outcome.benefit_cross > outcome.benefit_best_single);
}

#[test]
fn internet_egress_makes_staying_single_provider_optimal() {
    let opts = MultiCloudOptions {
        providers: ProviderCatalog::azure_s3_gcs()
            .with_egress_scale(10.0)
            .unwrap(),
        ..options()
    };
    let outcome = run_multicloud(&opts).unwrap();
    // No cross-provider move survives internet egress pricing: the merged
    // search stays entirely inside the home provider…
    assert_eq!(outcome.cross_provider_moves, 0, "{outcome:?}");
    assert_eq!(outcome.cross_egress, 0.0, "{outcome:?}");
    // …and the best single provider is the home one (everyone else pays
    // the full migration egress on every byte).
    assert_eq!(outcome.best_single_provider, "azure", "{outcome:?}");
    let home = outcome
        .single
        .iter()
        .find(|s| s.provider == "azure")
        .unwrap();
    assert!(
        (outcome.cross_total - home.total).abs() <= 1e-9 * (1.0 + home.total.abs()),
        "cross plan {} should collapse to the home plan {}",
        outcome.cross_total,
        home.total
    );
    // Egress-aware re-tiering inside the home ladder still beats the
    // frozen all-home baseline.
    assert!(outcome.benefit_cross > 0.0, "{outcome:?}");
}
