//! Differential pins for the PR-7 word-level codec kernels: the production
//! block-streaming paths (word match extension, wild-copy decode, word-run
//! RLE, accumulator bit I/O, canonical-table Huffman decode) must produce
//! **byte-for-byte identical compressed streams and error values** — not
//! just round-trip success — against the preserved byte-at-a-time oracles
//! in `scope_compress::reference`, on adversarial inputs: long runs,
//! short-period repetition, incompressible noise, inputs shorter than one
//! machine word, and matches straddling block boundaries.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scope_compress::lz77::{detokenize, tokenize, MatcherParams};
use scope_compress::reference::{
    detokenize_reference, gzipish_compress_reference, gzipish_decompress_reference,
    lz4ish_compress_reference, lz4ish_decompress_reference, rle_compress_reference,
    rle_decompress_reference, tokenize_reference,
};
use scope_compress::{Codec, GzipishCodec, Lz4ishCodec, RleCodec, SnappyishCodec};

/// Inputs chosen to stress each kernel's edge: sub-word tails, run
/// boundaries at 255/256, periodicity equal to `MIN_MATCH`, block-boundary
/// straddles (literal runs ≥ 15 and ≥ 270 exercise the varlen escapes) and
/// pure noise (no matches at all).
fn adversarial_inputs() -> Vec<Vec<u8>> {
    let mut rng = SmallRng::seed_from_u64(0x7eed);
    let noise = |n: usize, rng: &mut SmallRng| -> Vec<u8> {
        (0..n).map(|_| rng.gen_range(0u32..256) as u8).collect()
    };
    let mut inputs = vec![
        vec![],
        b"a".to_vec(),
        b"abcdefg".to_vec(), // shorter than one word
        b"abcdefgh".to_vec(),
        vec![0u8; 7],
        vec![0u8; 8],
        vec![0xAB; 255],
        vec![0xAB; 256],
        vec![0xAB; 70_000],             // run longer than a 64 KiB window
        b"abcd".repeat(2000),           // 4-byte period == MIN_MATCH
        b"abc".repeat(2000),            // period below MIN_MATCH
        b"0123456789ABCDE".repeat(600), // 15-byte period, literal-run escapes
        noise(5000, &mut rng),          // incompressible
    ];
    // A match whose source starts just before a literal-run boundary and
    // extends across it: noise prefix, then a repeat of a slice that spans
    // the prefix/pattern seam.
    let mut straddle = noise(300, &mut rng);
    let seam = straddle[280..300].to_vec();
    straddle.extend_from_slice(&seam);
    straddle.extend_from_slice(&seam);
    straddle.extend(noise(40, &mut rng));
    inputs.push(straddle);
    // Long literal run (> 270, two varlen escape bytes) followed by a
    // highly compressible tail.
    let mut mixed = noise(600, &mut rng);
    mixed.extend(b"xyzw".repeat(500));
    inputs.push(mixed);
    inputs
}

fn all_params() -> [MatcherParams; 3] {
    [
        MatcherParams::thorough(),
        MatcherParams::fast(),
        MatcherParams::fastest(),
    ]
}

#[test]
fn tokenizer_is_bit_identical_to_reference_on_adversarial_inputs() {
    for data in adversarial_inputs() {
        for params in all_params() {
            let fast = tokenize(&data, &params);
            let slow = tokenize_reference(&data, &params);
            assert_eq!(fast, slow, "tokens diverge on {} bytes", data.len());
            assert_eq!(
                detokenize(&fast),
                detokenize_reference(&slow),
                "detokenize diverges on {} bytes",
                data.len()
            );
        }
    }
}

#[test]
fn codec_streams_are_byte_identical_to_reference_on_adversarial_inputs() {
    for data in adversarial_inputs() {
        // lz4ish under every matcher effort (fastest == the snappyish
        // configuration).
        for params in all_params() {
            let fast = Lz4ishCodec::with_params(params).compress(&data);
            let slow = lz4ish_compress_reference(&data, &params);
            assert_eq!(fast, slow, "lz4ish stream diverges on {} bytes", data.len());
            assert_eq!(lz4ish_decompress_reference(&fast).as_deref(), Ok(&data[..]));
            let gz_fast = GzipishCodec::with_params(params).compress(&data);
            let gz_slow = gzipish_compress_reference(&data, &params);
            assert_eq!(
                gz_fast,
                gz_slow,
                "gzipish stream diverges on {} bytes",
                data.len()
            );
            assert_eq!(
                gzipish_decompress_reference(&gz_fast).as_deref(),
                Ok(&data[..])
            );
        }
        // The default-profile codecs (snappyish shares the lz4ish stream).
        let sn = SnappyishCodec::default();
        assert_eq!(sn.decompress(&sn.compress(&data)).as_deref(), Ok(&data[..]));
        let rle_fast = RleCodec.compress(&data);
        let rle_slow = rle_compress_reference(&data);
        assert_eq!(
            rle_fast,
            rle_slow,
            "rle stream diverges on {} bytes",
            data.len()
        );
        assert_eq!(
            rle_decompress_reference(&rle_fast).as_deref(),
            Ok(&data[..])
        );
        assert_eq!(RleCodec.decompress(&rle_fast).as_deref(), Ok(&data[..]));
    }
}

/// Truncations and single-byte corruptions must fail (or succeed) with the
/// exact same `CompressError` values on the fast and reference decoders.
/// Gzipish corruption skips the 256 Huffman length bytes (offsets 12..268):
/// garbage code lengths abort in table construction on both paths alike,
/// which is shared — not differential — behavior.
#[test]
fn corrupted_streams_error_identically_on_fast_and_reference_paths() {
    let data = b"block boundary straddle straddle straddle 0123456789".repeat(40);
    let lz = Lz4ishCodec::default().compress(&data);
    for cut in [0, 3, 4, 11, 12, 13, lz.len() / 2, lz.len() - 1] {
        let t = &lz[..cut];
        assert_eq!(
            Lz4ishCodec::default().decompress(t),
            lz4ish_decompress_reference(t),
            "lz4ish truncation at {cut}"
        );
    }
    let mut rng = SmallRng::seed_from_u64(9);
    for _ in 0..40 {
        let mut bad = lz.clone();
        let i = rng.gen_range(0..bad.len());
        bad[i] ^= 1 << rng.gen_range(0u32..8);
        assert_eq!(
            Lz4ishCodec::default().decompress(&bad),
            lz4ish_decompress_reference(&bad),
            "lz4ish corruption at byte {i}"
        );
    }

    let gz = GzipishCodec::default().compress(&data);
    for cut in [0, 4, 11, 270, 276, gz.len() / 2, gz.len() - 1] {
        let t = &gz[..cut.min(gz.len())];
        assert_eq!(
            GzipishCodec::default().decompress(t),
            gzipish_decompress_reference(t),
            "gzipish truncation at {cut}"
        );
    }
    for _ in 0..40 {
        let mut bad = gz.clone();
        let i = loop {
            let i = rng.gen_range(0..bad.len());
            if !(12..268).contains(&i) {
                break i;
            }
        };
        bad[i] ^= 1 << rng.gen_range(0u32..8);
        assert_eq!(
            GzipishCodec::default().decompress(&bad),
            gzipish_decompress_reference(&bad),
            "gzipish corruption at byte {i}"
        );
    }

    let rle = RleCodec.compress(&[vec![5u8; 700], b"abc".to_vec()].concat());
    for cut in [0, 5, 12, 13, 14, rle.len() - 1] {
        let t = &rle[..cut];
        assert_eq!(
            RleCodec.decompress(t),
            rle_decompress_reference(t),
            "rle truncation at {cut}"
        );
    }
    for i in 0..rle.len() {
        let mut bad = rle.clone();
        bad[i] = 0;
        assert_eq!(
            RleCodec.decompress(&bad),
            rle_decompress_reference(&bad),
            "rle zeroed byte {i}"
        );
    }
}

/// Random byte soups drawn from alphabets of very different entropy: small
/// alphabets force long matches and runs, large ones force literal-heavy
/// streams. The fast and reference pipelines must agree byte for byte.
fn random_soup(len: usize, alphabet: u8, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..len)
        .map(|_| rng.gen_range(0u32..alphabet.max(1) as u32) as u8)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_inputs_compress_identically_on_fast_and_reference_paths(
        len in 0usize..3000,
        alphabet in 1u32..=255,
        seed in proptest::arbitrary::any::<u64>(),
    ) {
        let data = random_soup(len, alphabet as u8, seed);
        let params = MatcherParams::fast();
        prop_assert_eq!(tokenize(&data, &params), tokenize_reference(&data, &params));
        let lz = Lz4ishCodec::with_params(params).compress(&data);
        prop_assert_eq!(&lz, &lz4ish_compress_reference(&data, &params));
        let lz_ref = lz4ish_decompress_reference(&lz);
        prop_assert_eq!(lz_ref.as_deref(), Ok(&data[..]));
        let lz_fast = Lz4ishCodec::default().decompress(&lz);
        prop_assert_eq!(lz_fast.as_deref(), Ok(&data[..]));
        let gz = GzipishCodec::with_params(params).compress(&data);
        prop_assert_eq!(&gz, &gzipish_compress_reference(&data, &params));
        let gz_ref = gzipish_decompress_reference(&gz);
        prop_assert_eq!(gz_ref.as_deref(), Ok(&data[..]));
        let rle = RleCodec.compress(&data);
        prop_assert_eq!(&rle, &rle_compress_reference(&data));
        let rle_ref = rle_decompress_reference(&rle);
        prop_assert_eq!(rle_ref.as_deref(), Ok(&data[..]));
    }
}
