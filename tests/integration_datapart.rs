//! Integration and property-based tests of DATAPART (G-PART and the
//! ordered-case DP) against generated query workloads.

use proptest::prelude::*;
use scope_datapart::{
    gpart_merge, merge_all, metrics, no_merge, solve_ordered_bicriteria, solve_ordered_exact,
    FileCatalog, MergeConfig, OrderedPartition, Partition,
};
use scope_workload::{FileRef, QueryWorkload, QueryWorkloadOptions};
use std::collections::BTreeSet;

fn tpch_layout() -> Vec<(String, usize)> {
    vec![
        ("lineitem".to_string(), 30),
        ("orders".to_string(), 10),
        ("customer".to_string(), 4),
        ("part".to_string(), 4),
        ("supplier".to_string(), 2),
        ("partsupp".to_string(), 6),
        ("nation".to_string(), 1),
        ("region".to_string(), 1),
    ]
}

fn file_catalog() -> FileCatalog {
    let mut c = FileCatalog::new();
    for (table, files) in tpch_layout() {
        for i in 0..files {
            c.insert(FileRef::new(table.clone(), i), 1.0);
        }
    }
    c
}

#[test]
fn gpart_on_a_real_workload_sits_between_the_baselines() {
    let workload =
        QueryWorkload::generate_tpch(&tpch_layout(), &QueryWorkloadOptions::default()).unwrap();
    let initial = Partition::from_families(&workload.families);
    let catalog = file_catalog();
    let nm = metrics::evaluate(&no_merge(&initial), &catalog).unwrap();
    let gp = metrics::evaluate(
        &gpart_merge(&initial, &catalog, &MergeConfig::default()).unwrap(),
        &catalog,
    )
    .unwrap();
    let ma = metrics::evaluate(&merge_all(&initial), &catalog).unwrap();
    // Fig 7 ordering on a genuine TPC-H-style workload.
    assert!(nm.duplication >= gp.duplication && gp.duplication >= ma.duplication);
    assert!(nm.read_cost <= gp.read_cost && gp.read_cost <= ma.read_cost);
    assert!(nm.n_partitions >= gp.n_partitions && gp.n_partitions >= ma.n_partitions);
    // G-PART genuinely reduces duplication relative to not merging at all.
    assert!(gp.duplication < nm.duplication);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// G-PART never loses data: the union of files over its output equals
    /// the union over its input, for arbitrary random partitionings.
    #[test]
    fn gpart_preserves_file_coverage(
        seed in 0u64..1000,
        n_partitions in 1usize..20,
        n_files in 5usize..40,
    ) {
        let mut catalog = FileCatalog::new();
        for i in 0..n_files {
            catalog.insert(FileRef::new("t", i), 1.0);
        }
        // Deterministic pseudo-random partitions from the seed.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 33) as usize
        };
        let initial: Vec<Partition> = (0..n_partitions)
            .map(|id| {
                let len = 1 + next() % 6;
                let start = next() % n_files;
                let files: Vec<FileRef> = (0..len)
                    .map(|k| FileRef::new("t", (start + k) % n_files))
                    .collect();
                Partition::new(id, files, (next() % 10) as f64)
            })
            .collect();
        let merged = gpart_merge(&initial, &catalog, &MergeConfig::default()).unwrap();
        let before: BTreeSet<FileRef> = initial.iter().flat_map(|p| p.files.iter().cloned()).collect();
        let after: BTreeSet<FileRef> = merged.iter().flat_map(|p| p.files.iter().cloned()).collect();
        prop_assert_eq!(before, after);
        // Merging never increases the number of partitions.
        prop_assert!(merged.len() <= initial.len());
        // Total space never increases (merging only deduplicates).
        let space_before: f64 = initial.iter().map(|p| p.span(&catalog).unwrap()).sum();
        let space_after: f64 = merged.iter().map(|p| p.span(&catalog).unwrap()).sum();
        prop_assert!(space_after <= space_before + 1e-9);
    }

    /// The ordered-case DP always covers every partition with contiguous
    /// merges, stays within its cost budget, and never uses more space than
    /// the no-merge solution.
    #[test]
    fn ordered_dp_covers_within_budget(
        n in 2usize..12,
        span in 2.0f64..20.0,
        overlap_fraction in 0.1f64..0.9,
        budget_factor in 1.0f64..4.0,
    ) {
        let overlap = span * overlap_fraction;
        let partitions: Vec<OrderedPartition> = (0..n)
            .map(|i| {
                let start = i as f64 * (span - overlap);
                OrderedPartition::new(start, start + span, 1.0 + (i % 3) as f64)
            })
            .collect();
        let min_cost: f64 = partitions.iter().map(|p| p.span() * p.frequency).sum();
        let budget = min_cost * budget_factor;
        let solution = solve_ordered_exact(&partitions, budget, 4.0).unwrap();
        // Contiguous cover of 0..n.
        let mut next_expected = 0usize;
        for &(from, to) in &solution.merges {
            prop_assert_eq!(from, next_expected);
            prop_assert!(to >= from && to < n);
            next_expected = to + 1;
        }
        prop_assert_eq!(next_expected, n);
        // Budget respected and space no worse than keeping everything apart.
        prop_assert!(solution.total_cost <= budget + 1e-6);
        let separate_space: f64 = partitions.iter().map(|p| p.span()).sum();
        prop_assert!(solution.total_space <= separate_space + 1e-9);
    }

    /// The bi-criteria approximation never needs more space than the exact
    /// DP at the same threshold and never exceeds the relaxed budget.
    #[test]
    fn bicriteria_bounds_hold(
        n in 2usize..10,
        budget_factor in 1.2f64..3.0,
        epsilon in 0.01f64..0.2,
    ) {
        let partitions: Vec<OrderedPartition> = (0..n)
            .map(|i| OrderedPartition::new(i as f64 * 4.0, i as f64 * 4.0 + 6.0, 1.0))
            .collect();
        let min_cost: f64 = partitions.iter().map(|p| p.span() * p.frequency).sum();
        let threshold = min_cost * budget_factor;
        let exact = solve_ordered_exact(&partitions, threshold, 8.0).unwrap();
        let approx = solve_ordered_bicriteria(&partitions, threshold, epsilon).unwrap();
        prop_assert!(approx.total_space <= exact.total_space + 1e-9);
        prop_assert!(approx.total_cost <= threshold * (1.0 + n as f64 * epsilon) + 1e-6);
    }
}
