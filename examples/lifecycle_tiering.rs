//! Lifecycle tiering example: day-granular billing with per-billing-period
//! re-tiering.
//!
//! Generates an enterprise storage account whose datasets cool over time,
//! plans a cost-optimal tier schedule per dataset with the residency-aware
//! dynamic program (transition costs and day-exact early-deletion penalties
//! priced per period), replays the actual day-stamped accesses through the
//! day-granular billing engine, and compares against the all-hot platform
//! default and the best *frozen* OPTASSIGN placement. A granularity sweep
//! shows what per-billing-period tier changes are worth compared to
//! quarterly or never re-tiering.
//!
//! ```bash
//! cargo run --release --example lifecycle_tiering
//! ```

use scope_core::{lifecycle_tradeoff, run_lifecycle, LifecycleOptions};
use scope_workload::EnterpriseOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = LifecycleOptions {
        workload: EnterpriseOptions {
            n_datasets: 200,
            history_months: 10,
            future_months: 6,
            seed: 11,
            ..Default::default()
        },
        ..Default::default()
    };

    let outcome = run_lifecycle(&options)?;
    println!("Lifecycle tiering over a 6-month day-granular horizon (Hot/Cool/Archive):");
    println!(
        "  {:<38} {:>14} {:>11}",
        "placement", "total (cents)", "benefit %"
    );
    println!(
        "  {:<38} {:>14.1} {:>11.2}",
        "all hot (platform default)", outcome.all_hot_total, 0.0
    );
    println!(
        "  {:<38} {:>14.1} {:>11.2}",
        "OptAssign, frozen for the horizon", outcome.static_total, outcome.benefit_static
    );
    println!(
        "  {:<38} {:>14.1} {:>11.2}",
        "per-period schedules (lifecycle)", outcome.scheduled_total, outcome.benefit_scheduled
    );
    println!(
        "  {} mid-horizon tier transitions scheduled, {} events dropped",
        outcome.transitions, outcome.dropped_events
    );

    println!("\nRe-tiering granularity sweep (periods between allowed moves):");
    println!(
        "  {:>11} {:>14} {:>11} {:>12}",
        "granularity", "total (cents)", "benefit %", "transitions"
    );
    for (g, o) in lifecycle_tradeoff(&options, &[1, 2, 3, 6])? {
        println!(
            "  {:>11} {:>14.1} {:>11.2} {:>12}",
            g, o.scheduled_total, o.benefit_scheduled, o.transitions
        );
    }
    Ok(())
}
