//! Enterprise tiering example: the Enterprise Data I workflow of the paper.
//!
//! Generates a synthetic enterprise storage account (hundreds of datasets,
//! Zipf-skewed and recency-decaying accesses), trains the Random-Forest tier
//! predictor on the account's history, and reports:
//!
//! * the predicted-vs-ideal confusion matrix (paper Table III),
//! * the % cost benefit of OPTASSIGN against the caching/recency baselines
//!   (paper Table IV),
//! * the projected benefit per customer account (paper Table II).
//!
//! ```bash
//! cargo run --release --example enterprise_tiering
//! ```

use scope_core::{customer_benefit_table, predictor_confusion, tiering_baseline_comparison};
use scope_learn::{f1_score, precision, recall};
use scope_workload::EnterpriseOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let account = EnterpriseOptions {
        n_datasets: 300,
        history_months: 12,
        future_months: 6,
        seed: 11,
        ..Default::default()
    };

    // Table III: predicted vs ideal tier.
    let cm = predictor_confusion(&account, 2)?;
    println!("Tier predictor confusion matrix (2-month horizon), rows = ideal, cols = predicted:");
    println!("             Hot   Cool");
    println!("  Hot   {:>6} {:>6}", cm.counts[0][0], cm.counts[0][1]);
    println!("  Cool  {:>6} {:>6}", cm.counts[1][0], cm.counts[1][1]);
    println!(
        "  accuracy {:.3}, hot F1 {:.3} (precision {:.3}, recall {:.3}), cool F1 {:.3}",
        cm.accuracy(),
        f1_score(&cm, 0),
        precision(&cm, 0),
        recall(&cm, 0),
        f1_score(&cm, 1),
    );

    // Table IV: OPTASSIGN vs intuitive baselines.
    println!("\nTiering policies vs the all-hot platform baseline:");
    println!(
        "{:<42} {:>10} {:>9} {:>10}",
        "Model", "Access", "Months", "Benefit %"
    );
    for row in tiering_baseline_comparison(&account)? {
        println!(
            "{:<42} {:>10} {:>9} {:>10.2}",
            row.model, row.access_information, row.duration_months, row.benefit_percent
        );
    }

    // Table II: several customer accounts.
    let accounts = vec![
        (
            "Customer A".to_string(),
            EnterpriseOptions {
                n_datasets: 250,
                seed: 1,
                ..account.clone()
            },
        ),
        (
            "Customer B".to_string(),
            EnterpriseOptions {
                n_datasets: 180,
                seed: 2,
                ..account.clone()
            },
        ),
        (
            "Customer C".to_string(),
            EnterpriseOptions {
                n_datasets: 120,
                seed: 3,
                ..account.clone()
            },
        ),
        (
            "Customer D".to_string(),
            EnterpriseOptions {
                n_datasets: 150,
                seed: 4,
                ..account
            },
        ),
    ];
    println!("\nProjected % cost benefit per customer account (paper Table II):");
    println!(
        "{:<12} {:>14} {:>10} {:>10}",
        "Customer", "Size (PB)", "2 months", "6 months"
    );
    for row in customer_benefit_table(&accounts)? {
        println!(
            "{:<12} {:>14.4} {:>10.2} {:>10.2}",
            row.customer, row.total_size_pb, row.benefit_2_months, row.benefit_6_months
        );
    }
    Ok(())
}
