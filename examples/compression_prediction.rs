//! COMPREDICT example: train compression-performance predictors on
//! query-derived samples of TPC-H-like data and compare model families —
//! a miniature version of the paper's Tables V and VI.
//!
//! ```bash
//! cargo run --release --example compression_prediction
//! ```

use scope_compredict::{
    predictor::build_examples, query_samples, random_samples, CompressionPredictor,
    FeatureExtractor, FeatureSet, ModelKind, PredictionTask,
};
use scope_compress::CompressionScheme;
use scope_table::{DataLayout, TpchGenerator, TpchOptions, TpchTable};
use scope_workload::{QueryWorkload, QueryWorkloadOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gen = TpchGenerator::new(TpchOptions {
        scale_factor: 0.2,
        ..Default::default()
    })?;
    let lineitem = gen.generate(TpchTable::Lineitem);
    let orders = gen.generate(TpchTable::Orders);

    // Query-based samples: the rows actually touched by the query workload.
    let li_files = lineitem.split_into_files(120)?;
    let or_files = orders.split_into_files(60)?;
    let workload = QueryWorkload::generate_tpch(
        &[
            ("lineitem".to_string(), li_files.len()),
            ("orders".to_string(), or_files.len()),
        ],
        &QueryWorkloadOptions {
            queries_per_template: 6,
            ..Default::default()
        },
    )?;
    let mut samples = query_samples(&lineitem, &li_files, &workload.families)?;
    samples.extend(query_samples(&orders, &or_files, &workload.families)?);
    // Plus some random samples so the comparison of Table V can be made.
    let random = {
        let mut r = random_samples(&lineitem, 20, 200, 7)?;
        r.extend(random_samples(&orders, 20, 120, 8)?);
        r
    };

    let extractor = FeatureExtractor::new(FeatureSet::WeightedEntropy);
    println!("Building ground truth by compressing {} query samples and {} random samples (gzip, csv layout)...",
        samples.len(), random.len());
    let query_examples = build_examples(
        &samples,
        CompressionScheme::Gzip,
        DataLayout::Csv,
        &extractor,
    );
    let random_examples = build_examples(
        &random,
        CompressionScheme::Gzip,
        DataLayout::Csv,
        &extractor,
    );

    // Table V flavour: query-based vs random samples, Random Forest.
    let split = query_examples.len() * 3 / 4;
    let (train_q, test_q) = query_examples.split_at(split.max(4));
    let rf_query = CompressionPredictor::train(
        train_q,
        PredictionTask::CompressionRatio,
        ModelKind::RandomForest,
        extractor,
        1,
    )?;
    let rf_random = CompressionPredictor::train(
        &random_examples,
        PredictionTask::CompressionRatio,
        ModelKind::RandomForest,
        extractor,
        1,
    )?;
    println!("\nCompression-ratio prediction on held-out query samples (paper Table V):");
    let q_eval = rf_query.evaluate(test_q);
    let r_eval = rf_random.evaluate(test_q);
    println!(
        "  trained on query samples : MAE {:.3}  MAPE {:.2}%  R2 {:.3}",
        q_eval.mae, q_eval.mape, q_eval.r2
    );
    println!(
        "  trained on random samples: MAE {:.3}  MAPE {:.2}%  R2 {:.3}",
        r_eval.mae, r_eval.mape, r_eval.r2
    );

    // Table VI flavour: model family sweep on query samples.
    println!("\nModel family comparison (paper Table VI, gzip / csv):");
    println!("  {:<15} {:>8} {:>9} {:>8}", "model", "MAE", "MAPE %", "R2");
    for kind in ModelKind::all() {
        let model = CompressionPredictor::train(
            train_q,
            PredictionTask::CompressionRatio,
            kind,
            extractor,
            2,
        )?;
        let eval = model.evaluate(test_q);
        println!(
            "  {:<15} {:>8.3} {:>9.2} {:>8.3}",
            kind.name(),
            eval.mae,
            eval.mape,
            eval.r2
        );
    }
    Ok(())
}
