//! Quickstart: run the full SCOPe pipeline on a small TPC-H-like scenario
//! and print one cost/latency row per storage policy — a miniature version
//! of the paper's Table X.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use scope_cloudsim::TierCatalog;
use scope_core::{run_all_policies, tpch_scenario, ScenarioOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Azure ADLS Gen2 tier catalog of Table I / Table XII.
    let catalog = TierCatalog::azure_adls_gen2();
    println!("Storage tiers (paper Table I / XII):");
    for (_, tier) in catalog.iter() {
        println!(
            "  {:8} storage {:>7.3} c/GB/mo   read {:>8.5} c/GB   TTFB {:>9.4} s",
            tier.name,
            tier.storage_cost_cents_per_gb_month,
            tier.read_cost_cents_per_gb,
            tier.ttfb_seconds
        );
    }

    // A small TPC-H-like scenario: generated tables, measured compression,
    // a query workload, and a nominal volume of 100 GB.
    let inputs = tpch_scenario(&ScenarioOptions {
        nominal_total_gb: 100.0,
        generator_scale: 0.1,
        queries_per_template: 6,
        total_files: 60,
        ..Default::default()
    })?;
    println!(
        "\nScenario: {} tables, {:.0} GB nominal, {} query families over {:.1} months",
        inputs.tables.len(),
        inputs.total_size_gb(),
        inputs.families.len(),
        inputs.horizon_months
    );

    // Run every policy row of the paper's Tables IX-XI.
    println!(
        "\n{:<42} {:>10} {:>9} {:>9} {:>10} {:>8}  Tiering",
        "Policy", "Storage", "Read", "Decomp", "Total", "TTFB(s)"
    );
    for outcome in run_all_policies(&inputs)? {
        println!(
            "{:<42} {:>10.1} {:>9.1} {:>9.1} {:>10.1} {:>8.3}  {:?}",
            outcome.policy,
            outcome.storage_cost,
            outcome.read_cost,
            outcome.decompression_cost,
            outcome.total_cost,
            outcome.read_latency_ttfb,
            outcome.tiering_scheme
        );
    }
    println!("\nCosts are cents over the projection horizon; lower is better.");
    Ok(())
}
