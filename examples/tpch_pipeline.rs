//! TPC-H pipeline example: reproduce the structure of the paper's Table X
//! (TPC-H 100 GB-class) and Table XI (1 TB-class) with the full SCOPe
//! pipeline, plus the G-PART space/cost trade-off of Fig 7.
//!
//! ```bash
//! cargo run --release --example tpch_pipeline
//! ```

use scope_core::{run_all_policies, tpch_scenario, PipelineInputs, ScenarioOptions};
use scope_datapart::{gpart_merge, merge_all, metrics, no_merge, MergeConfig, Partition};

fn print_table(label: &str, inputs: &PipelineInputs) -> Result<(), Box<dyn std::error::Error>> {
    println!("\n=== {label} ===");
    println!(
        "{:<42} {:>10} {:>9} {:>9} {:>10}  Tiering [P,H,C]",
        "Policy", "Storage", "Read", "Decomp", "Total"
    );
    for o in run_all_policies(inputs)? {
        println!(
            "{:<42} {:>10.1} {:>9.1} {:>9.1} {:>10.1}  {:?}",
            o.policy,
            o.storage_cost,
            o.read_cost,
            o.decompression_cost,
            o.total_cost,
            o.tiering_scheme
        );
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 100 GB-class scenario.
    let tpch100 = tpch_scenario(&ScenarioOptions {
        nominal_total_gb: 100.0,
        generator_scale: 0.15,
        queries_per_template: 10,
        total_files: 80,
        ..Default::default()
    })?;
    print_table("TPC-H 100 GB-class (paper Table X)", &tpch100)?;

    // 1 TB-class scenario: same workload shape, 10x the volume.
    let tpch1tb = tpch_scenario(&ScenarioOptions {
        nominal_total_gb: 1000.0,
        generator_scale: 0.15,
        queries_per_template: 10,
        total_files: 120,
        ..Default::default()
    })?;
    print_table("TPC-H 1 TB-class (paper Table XI)", &tpch1tb)?;

    // Fig 7: space/cost trade-off of G-PART vs the no-merge / merge-all
    // baselines on the 100 GB-class workload.
    println!("\n=== Partitioning trade-off (paper Fig 7) ===");
    let initial = Partition::from_families(&tpch100.families);
    let file_catalog = tpch100.file_catalog();
    println!(
        "{:<12} {:>12} {:>14} {:>14} {:>12}",
        "variant", "#partitions", "duplication", "read cost", "space (GB)"
    );
    for (name, parts) in [
        ("no-merge", no_merge(&initial)),
        (
            "G-PART",
            gpart_merge(&initial, &file_catalog, &MergeConfig::default())?,
        ),
        ("merge-all", merge_all(&initial)),
    ] {
        let m = metrics::evaluate(&parts, &file_catalog)?;
        println!(
            "{:<12} {:>12} {:>14.3} {:>14.1} {:>12.1}",
            name, m.n_partitions, m.duplication, m.read_cost, m.total_space
        );
    }
    Ok(())
}
